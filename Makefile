export PYTHONPATH := src

PYTHON ?= python

.PHONY: test lint gradcheck bench bench-save check

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.analysis.selfcheck src/

gradcheck:
	$(PYTHON) -m pytest -x -q -m gradcheck

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-save:
	$(PYTHON) benchmarks/bench_save.py

check: lint test gradcheck
