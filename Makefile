export PYTHONPATH := src

PYTHON ?= python

.PHONY: test lint bench check

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.analysis.selfcheck src/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

check: lint test
