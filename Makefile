export PYTHONPATH := src

PYTHON ?= python

.PHONY: test lint lint-json gradcheck bench bench-save smoke-infer smoke-simhw smoke-dataset smoke-train check

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.analysis.lint src/ tests/ benchmarks/

lint-json:
	$(PYTHON) -m repro.analysis.lint --format json src/ tests/ benchmarks/

gradcheck:
	$(PYTHON) -m pytest -x -q -m gradcheck

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-save:
	$(PYTHON) benchmarks/bench_save.py
	$(PYTHON) benchmarks/bench_save_inference.py
	$(PYTHON) benchmarks/bench_save_simhw.py
	$(PYTHON) benchmarks/bench_save_absint.py
	$(PYTHON) benchmarks/bench_save_dataset.py
	$(PYTHON) benchmarks/bench_save_training.py

# ~2 s end-to-end serving smoke: propose -> verify -> featurize ->
# predict -> top-k, asserting predict bit-identical to the taped forward.
smoke-infer:
	$(PYTHON) -c "import repro.core.scoring as s; raise SystemExit(s.main())"

# Simulated-hardware smoke: measure a candidate batch on all 7 platforms,
# asserting bit-reproducibility and sane labels (also runnable directly
# as `python -m repro.simhw.measure`).
smoke-simhw:
	$(PYTHON) -c "import importlib; raise SystemExit(importlib.import_module('repro.simhw.measure').main([]))"

# Dataset-factory smoke: build the tiny 2-platform, multi-shard store
# twice, asserting bit-identical shards + manifest and a readable
# network-level split (also runnable as `python -m repro.dataset.pipeline`).
smoke-dataset:
	$(PYTHON) -c "import importlib; raise SystemExit(importlib.import_module('repro.dataset.pipeline').main([]))"

# Offline-trainer smoke (~15 s): build the tiny 5-network store, train the
# small TLP model twice from scratch, asserting a bit-identical run digest,
# decreasing loss, and held-out top-5 above the exact random baseline
# (also runnable as `python -m repro.core.trainer`).
smoke-train:
	$(PYTHON) -c "import importlib; raise SystemExit(importlib.import_module('repro.core.trainer').main())"

check: lint test gradcheck smoke-infer smoke-simhw smoke-dataset smoke-train
