"""Wall-clock instrumentation (DESIGN.md §3).

A tiny, dependency-free layer over ``time.perf_counter`` used by the
benchmark harness (``make bench-save``) and anywhere a subsystem wants a
structured timing without pulling in pytest-benchmark.
"""

from __future__ import annotations

import time
from typing import Callable


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as t:
    ...     do_work()
    >>> t.elapsed  # seconds, float
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float | None = None

    def __enter__(self) -> "Timer":
        self._elapsed = None
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._elapsed = time.perf_counter() - self._start

    @property
    def elapsed(self) -> float:
        """Seconds since entry — final once exited, running while inside."""
        if self._start is None:
            raise RuntimeError("Timer was never entered")
        if self._elapsed is None:
            return time.perf_counter() - self._start
        return self._elapsed


def best_of(fn: Callable[[], object], repeats: int = 5) -> float:
    """Minimum wall-clock seconds of ``fn()`` over ``repeats`` runs.

    The min — not the mean — estimates the true cost of the code path
    under scheduler noise; this is the measurement ``make bench-save``
    records in the ``BENCH_*.json`` perf trajectory.
    """
    if repeats < 1:
        raise ValueError("best_of needs repeats >= 1")
    best = float("inf")
    for _ in range(repeats):
        with Timer() as t:
            fn()
        best = min(best, t.elapsed)
    return best


def format_seconds(seconds: float) -> str:
    """Human-scale rendering: ``1.23s`` / ``4.56ms`` / ``789us``.

    Non-positive durations render as ``0us``: ``perf_counter`` deltas can
    come out marginally negative under clock skew, and a signed
    microsecond count is never what a timing report means.

    The unit is chosen *after* rounding, not before: 9.999e-4 s rounds to
    1000 us, which must promote to ``1.00ms`` (and 0.9999995 s to
    ``1.00s``) — picking the unit from the raw value first would emit
    ``1000us`` / ``1000.00ms``.
    """
    if seconds <= 0.0:
        return "0us"
    us = f"{seconds * 1e6:.0f}"
    if seconds < 1e-3 and float(us) < 1000.0:
        return f"{us}us"
    ms = f"{seconds * 1e3:.2f}"
    if seconds < 1.0 and float(ms) < 1000.0:
        return f"{ms}ms"
    return f"{seconds:.2f}s"


__all__ = ["Timer", "best_of", "format_seconds"]
