"""Named, hash-derived RNG streams.

Every source of randomness in the reproduction flows through here so that
any experiment is bit-for-bit reproducible given the root seed (DESIGN.md
§7).  A stream is addressed by a string name ("dataset.cpu.resnet50",
"sampler.sketch", ...); the seed is derived by hashing the name together
with the root seed, so adding a new stream never perturbs existing ones.

This module is the only place in ``src/`` allowed to touch ``np.random``
directly — ``repro.analysis.selfcheck`` enforces that with an AST lint.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Default root seed for the whole reproduction.  Experiments may override
#: it per-run; tests pin it implicitly by calling :func:`stream` with the
#: default.
ROOT_SEED: int = 0


def seed_for(name: str, root_seed: int = ROOT_SEED) -> int:
    """Derive a 64-bit seed for the named stream.

    The derivation is a SHA-256 hash of ``"{root_seed}:{name}"`` truncated
    to 8 bytes — stable across processes, platforms, and Python versions
    (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def stream(name: str, root_seed: int = ROOT_SEED) -> np.random.Generator:
    """Return a fresh ``np.random.Generator`` for the named stream.

    Two calls with the same ``(name, root_seed)`` return independent
    generators in identical states, so callers can re-derive a stream
    instead of threading generator objects through every layer.
    """
    return np.random.default_rng(seed_for(name, root_seed))


__all__ = ["ROOT_SEED", "seed_for", "stream"]
