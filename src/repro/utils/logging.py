"""Structured logging helpers.

A thin layer over stdlib ``logging``: one namespaced logger per subsystem,
a compact ``key=value`` suffix format for structured fields, and a single
idempotent handler installation so importing order does not duplicate
output lines.
"""

from __future__ import annotations

import logging
import sys
from typing import Any

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"
_ROOT_NAME = "repro"
_configured = False


def _configure() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        root.propagate = False
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return the logger for ``name`` under the ``repro`` namespace."""
    _configure()
    if not name.startswith(_ROOT_NAME):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def kv(message: str, **fields: Any) -> str:
    """Format a message with a structured ``key=value`` suffix.

    >>> kv("verified", sequences=128, errors=0)
    'verified | sequences=128 errors=0'
    """
    if not fields:
        return message
    suffix = " ".join(f"{k}={v}" for k, v in fields.items())
    return f"{message} | {suffix}"


__all__ = ["get_logger", "kv"]
