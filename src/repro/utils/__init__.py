"""Shared utilities: seeded RNG streams and structured logging."""

from __future__ import annotations

from repro.utils.logging import get_logger
from repro.utils.rng import ROOT_SEED, seed_for, stream

__all__ = ["ROOT_SEED", "get_logger", "seed_for", "stream"]
