"""Shared utilities: seeded RNG streams, logging, wall-clock timing."""

from __future__ import annotations

from repro.utils.logging import get_logger
from repro.utils.rng import ROOT_SEED, seed_for, stream
from repro.utils.timer import Timer, best_of, format_seconds

__all__ = [
    "ROOT_SEED",
    "Timer",
    "best_of",
    "format_seconds",
    "get_logger",
    "seed_for",
    "stream",
]
