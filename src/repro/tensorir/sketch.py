"""Sketch configuration and generation.

A *sketch* (Ansor terminology) is the structural skeleton of a schedule —
how many tile levels each axis gets, whether a write-cache stage is added,
which loops are annotated — with the free parameters (split factors,
unroll steps) filled in by random sampling.  :class:`SketchGenerator`
composes the two and runs the static verifier on every generated sequence
fail-closed: an invalid sequence is a bug, not a sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensorir.schedule import Schedule
from repro.tensorir.subgraph import Subgraph

TARGETS = ("cpu", "gpu")


@dataclass(frozen=True)
class SketchConfig:
    """Structural parameters of sketch generation for one target."""

    target: str = "cpu"
    #: Inner split factors are capped at this (Ansor's max_innermost_factor).
    max_innermost_factor: int = 64
    #: Probability that one sampled factor is bumped off a divisor, padding
    #: the axis (bounded by the verifier's allowance; DESIGN.md §6).
    padding_prob: float = 0.05
    #: Probability of adding a write-cache stage (CPU only).
    cache_write_prob: float = 0.2
    #: Probability of rfactoring a split reduction axis.
    rfactor_prob: float = 0.15
    #: Probability of emitting a compute-inline-only schedule for
    #: reduction-free subgraphs.
    inline_prob: float = 0.1
    #: Candidate values for the auto_unroll_max_step pragma.
    unroll_steps: tuple[int, ...] = (0, 16, 64, 512)

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise ValueError(f"unknown target {self.target!r}, expected one of {TARGETS}")


class SketchGenerator:
    """Generates verified random schedules for a subgraph."""

    def __init__(self, config: SketchConfig):
        self.config = config

    def generate(self, subgraph: Subgraph, rng: np.random.Generator) -> Schedule:
        """Sample one schedule; statically verified fail-closed.

        Raises ``repro.analysis.InvalidScheduleError`` if the sampler ever
        emits a sequence the verifier rejects — that is a bug in the
        sampler, and letting it through would poison every downstream
        dataset record (see ISSUE/DESIGN motivation).
        """
        return self.generate_many(subgraph, 1, rng)[0]

    def generate_many(
        self, subgraph: Subgraph, n: int, rng: np.random.Generator
    ) -> list[Schedule]:
        """Sample ``n`` schedules, verified fail-closed in one batch pass.

        The sampler constructs sequences that are valid by definition of
        its own bookkeeping, so verification is a guard against sampler
        bugs, not a filter: it runs once over the whole batch
        (``repro.analysis.assert_valid_many`` reuses a single verifier and
        early-exits each sequence) instead of constructing a fresh
        verifier per sample.  Equivalent to ``n`` :meth:`generate` calls
        on the same ``rng`` stream, just cheaper.
        """
        # Imported lazily: repro.analysis imports repro.tensorir submodules,
        # so a module-level import here would be circular during package init.
        from repro.analysis.verifier import assert_valid_many
        from repro.tensorir.sampler import ScheduleSampler

        sampler = ScheduleSampler(self.config)
        schedules = [sampler.sample(subgraph, rng) for _ in range(n)]
        assert_valid_many(schedules)
        return schedules


__all__ = ["SketchConfig", "SketchGenerator", "TARGETS"]
