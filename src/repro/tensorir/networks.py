"""Real-network subgraph pools — the dataset factory's task universe.

TenSet (and TLP's training corpus on top of it) is organized around
*networks*: each network contributes a pool of distinct subgraph tasks,
and evaluation holds out whole networks so a model is always scored on
programs from computation graphs it never saw (§5.1, "network-level"
splits).  This module provides that structure for the simulated stack:
stylized ResNet / MobileNet / BERT task pools built from the
``repro.tensorir.subgraph`` constructors, registered by name.

The shapes are stylized from the real architectures (stage-wise conv
geometries, pointwise/depthwise channel splits, transformer projection
and FFN matmuls) — what matters downstream is that pools are *disjoint
in character*: conv-heavy vs. pointwise-heavy vs. matmul-heavy, so a
network-level holdout actually shifts the program distribution the way
Figure 6 / Table 5 require.

``NETWORK_POOLS`` maps pool name -> :class:`NetworkPool`; pools are
frozen and task order inside a pool is part of the dataset plan, so
**append-only**: reordering or renaming entries silently changes every
``(manifest, seed)``-addressed dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tensorir.subgraph import (
    Subgraph,
    conv2d_subgraph,
    elementwise_subgraph,
    matmul_subgraph,
    reduce_subgraph,
)


@dataclass(frozen=True)
class NetworkPool:
    """One network's subgraph tasks, in canonical (plan) order."""

    name: str
    family: str  # "resnet" | "mobilenet" | "bert"
    subgraphs: tuple[Subgraph, ...]

    def __post_init__(self) -> None:
        if not self.subgraphs:
            raise ValueError(f"network pool {self.name!r} has no subgraphs")
        names = [sg.name for sg in self.subgraphs]
        if len(set(names)) != len(names):
            raise ValueError(f"network pool {self.name!r} repeats subgraph names: {names}")

    def __len__(self) -> int:
        return len(self.subgraphs)


def _resnet50_pool() -> NetworkPool:
    """Stage-wise 3x3/1x1 conv geometries + the classifier matmul."""
    return NetworkPool(
        name="resnet50",
        family="resnet",
        subgraphs=(
            conv2d_subgraph(56, 56, 64, 64, 3, 3),      # stage-1 3x3
            conv2d_subgraph(56, 56, 256, 64, 1, 1),     # stage-1 expand
            conv2d_subgraph(28, 28, 128, 128, 3, 3),    # stage-2 3x3
            conv2d_subgraph(14, 14, 256, 256, 3, 3),    # stage-3 3x3
            conv2d_subgraph(7, 7, 512, 512, 3, 3),      # stage-4 3x3
            conv2d_subgraph(7, 7, 2048, 512, 1, 1),     # stage-4 expand
            matmul_subgraph(1, 1000, 2048),             # classifier fc
        ),
    )


def _resnet18_pool() -> NetworkPool:
    """The thinner basic-block variant: fewer channels, no 1x1 expands."""
    return NetworkPool(
        name="resnet18",
        family="resnet",
        subgraphs=(
            conv2d_subgraph(56, 56, 64, 64, 3, 3),
            conv2d_subgraph(28, 28, 128, 64, 3, 3),     # stride-2 entry
            conv2d_subgraph(28, 28, 128, 128, 3, 3),
            conv2d_subgraph(14, 14, 256, 128, 3, 3),
            conv2d_subgraph(7, 7, 512, 256, 3, 3),
            matmul_subgraph(1, 1000, 512),
        ),
    )


def _mobilenet_v2_pool() -> NetworkPool:
    """Pointwise-dominated inverted residuals + cheap elementwise glue."""
    return NetworkPool(
        name="mobilenet_v2",
        family="mobilenet",
        subgraphs=(
            conv2d_subgraph(112, 112, 96, 16, 1, 1),    # expand 1x1
            conv2d_subgraph(56, 56, 24, 96, 1, 1),      # project 1x1
            conv2d_subgraph(28, 28, 32, 144, 1, 1),
            conv2d_subgraph(14, 14, 160, 576, 1, 1),
            conv2d_subgraph(14, 14, 96, 96, 3, 3),      # depthwise stand-in
            elementwise_subgraph(112 * 112 * 16),       # residual add / relu6
        ),
    )


def _bert_base_pool() -> NetworkPool:
    """Transformer block at hidden 768, sequence length 128."""
    return NetworkPool(
        name="bert_base",
        family="bert",
        subgraphs=(
            matmul_subgraph(128, 768, 768),             # q/k/v/out projection
            matmul_subgraph(128, 3072, 768),            # FFN up
            matmul_subgraph(128, 768, 3072),            # FFN down
            matmul_subgraph(128, 128, 64),              # per-head attention scores
            reduce_subgraph(128, 128),                  # softmax denominator
            elementwise_subgraph(128 * 768),            # gelu / residual add
        ),
    )


def _bert_tiny_pool() -> NetworkPool:
    """The 2-layer/hidden-128 distillation target — small, distinct shapes."""
    return NetworkPool(
        name="bert_tiny",
        family="bert",
        subgraphs=(
            matmul_subgraph(128, 128, 128),
            matmul_subgraph(128, 512, 128),             # FFN up
            matmul_subgraph(128, 128, 512),             # FFN down
            reduce_subgraph(128, 64),                   # per-head softmax
            elementwise_subgraph(128 * 128),
        ),
    )


#: Registry, in canonical order.  Append-only (see module docstring).
NETWORK_POOLS: dict[str, NetworkPool] = {
    pool.name: pool
    for pool in (
        _resnet50_pool(),
        _resnet18_pool(),
        _mobilenet_v2_pool(),
        _bert_base_pool(),
        _bert_tiny_pool(),
    )
}


def network_names() -> tuple[str, ...]:
    """All registered pool names, in canonical registry order."""
    return tuple(NETWORK_POOLS)


def network_pool(name: str) -> NetworkPool:
    """Look up one pool; raises ``KeyError`` with the known names."""
    try:
        return NETWORK_POOLS[name]
    except KeyError:
        raise KeyError(
            f"unknown network pool {name!r}; known pools: {', '.join(NETWORK_POOLS)}"
        ) from None


__all__ = ["NETWORK_POOLS", "NetworkPool", "network_names", "network_pool"]
