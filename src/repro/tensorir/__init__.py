"""Tensor-program IR: subgraphs, loop nests, schedule primitives, sampling.

The TVM/Ansor substitute (DESIGN.md §2): computational subgraphs expose an
iteration domain, schedule primitives transform it, the applier produces a
loop nest for the analytical hardware models, and the sketch
generator/sampler produce the random-but-valid schedules every downstream
subsystem consumes.  All generated sequences pass through the static
verifier in ``repro.analysis`` fail-closed.
"""

from __future__ import annotations

from repro.tensorir.loops import ANNOTATION_KINDS, Loop, LoopKind, LoopNest
from repro.tensorir.networks import (
    NETWORK_POOLS,
    NetworkPool,
    network_names,
    network_pool,
)
from repro.tensorir.primitives import (
    ANNOTATIONS,
    PRAGMAS,
    Primitive,
    PrimitiveKind,
)
from repro.tensorir.sampler import ScheduleSampler, divisors, sample_schedule
from repro.tensorir.schedule import PAD_ALLOWANCE, Schedule, ScheduleError, split_parts
from repro.tensorir.sketch import SketchConfig, SketchGenerator
from repro.tensorir.subgraph import (
    Axis,
    Subgraph,
    conv2d_subgraph,
    elementwise_subgraph,
    matmul_subgraph,
    reduce_subgraph,
    sample_subgraph_pool,
)

__all__ = [
    "ANNOTATIONS",
    "ANNOTATION_KINDS",
    "Axis",
    "NETWORK_POOLS",
    "NetworkPool",
    "PAD_ALLOWANCE",
    "Loop",
    "LoopKind",
    "LoopNest",
    "PRAGMAS",
    "Primitive",
    "PrimitiveKind",
    "Schedule",
    "ScheduleError",
    "ScheduleSampler",
    "SketchConfig",
    "SketchGenerator",
    "Subgraph",
    "conv2d_subgraph",
    "divisors",
    "elementwise_subgraph",
    "matmul_subgraph",
    "network_names",
    "network_pool",
    "reduce_subgraph",
    "sample_schedule",
    "sample_subgraph_pool",
    "split_parts",
]
