"""Schedule primitives — the tokens of TLP's "tensor language".

The 11 Ansor-style primitive kinds (DESIGN.md §3) with the same syntactic
shape as Ansor's measure records: a kind tag, character parameters (axis
names, annotation tokens) and numeric parameters (extents, split factors,
step references).  TLP featurizes exactly this triple, so everything the
cost model can ever know is carried here; the static verifier
(``repro.analysis``) checks the sequence without applying it.

Per DESIGN.md §6, SP primitives carry the extent of the axis they split —
without it the features are non-identifiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class PrimitiveKind(str, Enum):
    """The 11 schedule-primitive kinds."""

    SP = "SP"  # split: axis -> (outer, factor loops...)
    RE = "RE"  # reorder: complete permutation of the live loop order
    FU = "FU"  # fuse: merge >=2 adjacent axes
    AN = "AN"  # annotate: parallel / vectorize / unroll / GPU thread bind
    PR = "PR"  # pragma: auto_unroll_max_step etc.
    FSP = "FSP"  # follow split: reuse the factors of an earlier SP step
    CA = "CA"  # compute-at: attach the stage under an axis
    CHW = "CHW"  # cache write: add a write-cache stage
    RF = "RF"  # rfactor: factor a reduction axis out
    CI = "CI"  # compute inline
    CP = "CP"  # compute root


#: Loop-kind annotations (``AN`` attr values).  ``bind.*`` tokens are the
#: GPU thread binds; the verifier rejects them under a non-GPU target.
ANNOTATIONS: tuple[str, ...] = (
    "parallel",
    "vectorize",
    "unroll",
    "bind.blockIdx.x",
    "bind.blockIdx.y",
    "bind.threadIdx.x",
    "bind.threadIdx.y",
    "bind.vthread",
)

GPU_BIND_PREFIX = "bind."

#: Pragma tokens (``PR`` attr values).
PRAGMAS: tuple[str, ...] = ("auto_unroll_max_step", "unroll_explicit")

#: Separator used in fused-axis names, mirroring Ansor ("i.0@j.0").
FUSE_SEP = "@"

#: Structural arity per kind: (n_axes, min_ints, max_ints, needs_attr),
#: with ``None`` meaning unconstrained.  The table form of the field-use
#: matrix in :class:`Primitive`'s docstring — shared by the verifier's
#: E101 rule and the abstract interpreter so the two cannot drift.
ARITY: "dict[PrimitiveKind, tuple[int | None, int, int | None, bool]]" = {
    PrimitiveKind.SP: (1, 2, None, False),
    PrimitiveKind.RE: (None, 0, 0, False),
    PrimitiveKind.FU: (None, 0, 0, False),
    PrimitiveKind.AN: (1, 0, 0, True),
    PrimitiveKind.PR: (1, 1, 1, True),
    PrimitiveKind.FSP: (1, 2, 2, False),
    PrimitiveKind.CA: (1, 0, 0, False),
    PrimitiveKind.CHW: (0, 0, 0, False),
    PrimitiveKind.RF: (1, 0, 0, False),
    PrimitiveKind.CI: (0, 0, 0, False),
    PrimitiveKind.CP: (0, 0, 0, False),
}

#: ``PrimitiveKind`` is a str enum, so this resolves both enum members and
#: raw kind strings in one dict probe — no try/except per primitive.
KIND_BY_VALUE: "dict[str, PrimitiveKind]" = {k.value: k for k in PrimitiveKind}


@dataclass(frozen=True)
class Primitive:
    """One schedule transformation.

    ``axes`` are the character parameters (axis names), ``ints`` the
    numeric parameters, ``attr`` the annotation/pragma token.  Field use
    per kind:

    ===== ======================= ============================== ==========
    kind  axes                    ints                           attr
    ===== ======================= ============================== ==========
    SP    (axis,)                 (extent, factor, factor, ...)  —
    RE    full loop order         —                              —
    FU    >=2 adjacent axes       —                              —
    AN    (axis,)                 —                              annotation
    PR    (axis,)                 (value,)                       pragma
    FSP   (axis,)                 (extent, src_step_index)       —
    CA    (axis,)                 —                              —
    CHW   —                       —                              —
    RF    (axis,)                 —                              —
    CI    —                       —                              —
    CP    —                       —                              —
    ===== ======================= ============================== ==========
    """

    kind: PrimitiveKind
    axes: tuple[str, ...] = field(default=())
    ints: tuple[int, ...] = field(default=())
    attr: str = ""

    def __hash__(self) -> int:
        # Computed lazily and cached: primitives key the feature
        # extractor's row memo and sequence LRU (repro.core.extractor),
        # where re-hashing the field tuple on every probe dominated the
        # batch hot path.  Frozen dataclasses permit the setattr bypass.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.kind, self.axes, self.ints, self.attr))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __str__(self) -> str:
        parts = [self.kind.value]
        if self.axes:
            parts.append(",".join(self.axes))
        if self.ints:
            parts.append(",".join(str(i) for i in self.ints))
        if self.attr:
            parts.append(self.attr)
        return "(" + "; ".join(parts) + ")"


def split_names(axis: str, n_parts: int) -> tuple[str, ...]:
    """The axis names an SP/FSP with ``n_parts`` result loops defines."""
    return tuple(f"{axis}.{i}" for i in range(n_parts))


def fused_name(axes: tuple[str, ...] | list[str]) -> str:
    return FUSE_SEP.join(axes)


# -- convenience constructors -------------------------------------------------


def split(axis: str, extent: int, factors: tuple[int, ...]) -> Primitive:
    return Primitive(PrimitiveKind.SP, axes=(axis,), ints=(extent, *factors))


def reorder(order: tuple[str, ...] | list[str]) -> Primitive:
    return Primitive(PrimitiveKind.RE, axes=tuple(order))


def fuse(axes: tuple[str, ...] | list[str]) -> Primitive:
    return Primitive(PrimitiveKind.FU, axes=tuple(axes))


def annotate(axis: str, annotation: str) -> Primitive:
    return Primitive(PrimitiveKind.AN, axes=(axis,), attr=annotation)


def pragma(axis: str, name: str, value: int) -> Primitive:
    return Primitive(PrimitiveKind.PR, axes=(axis,), ints=(value,), attr=name)


def follow_split(axis: str, extent: int, src_step: int) -> Primitive:
    return Primitive(PrimitiveKind.FSP, axes=(axis,), ints=(extent, src_step))


def compute_at(axis: str) -> Primitive:
    return Primitive(PrimitiveKind.CA, axes=(axis,))


def cache_write() -> Primitive:
    return Primitive(PrimitiveKind.CHW)


def rfactor(axis: str) -> Primitive:
    return Primitive(PrimitiveKind.RF, axes=(axis,))


def compute_inline() -> Primitive:
    return Primitive(PrimitiveKind.CI)


def compute_root() -> Primitive:
    return Primitive(PrimitiveKind.CP)


__all__ = [
    "ANNOTATIONS",
    "ARITY",
    "FUSE_SEP",
    "GPU_BIND_PREFIX",
    "KIND_BY_VALUE",
    "PRAGMAS",
    "Primitive",
    "PrimitiveKind",
    "annotate",
    "cache_write",
    "compute_at",
    "compute_inline",
    "compute_root",
    "follow_split",
    "fuse",
    "fused_name",
    "pragma",
    "reorder",
    "rfactor",
    "split",
    "split_names",
]
