"""Loop-nest IR — the result of applying a schedule to a subgraph.

A :class:`LoopNest` is an ordered list of loops (outermost first) plus
stage-level flags (cache write, inline, compute-at).  The analytical
hardware models in ``repro.simhw`` read this structure; the TLP cost model
never does — that asymmetry is the paper's whole point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum


class LoopKind(str, Enum):
    SERIAL = "serial"
    PARALLEL = "parallel"
    VECTORIZED = "vectorized"
    UNROLLED = "unrolled"
    BOUND = "bound"  # bound to a GPU thread axis


#: Annotation token -> loop kind (``bind.*`` handled separately).
ANNOTATION_KINDS: dict[str, LoopKind] = {
    "parallel": LoopKind.PARALLEL,
    "vectorize": LoopKind.VECTORIZED,
    "unroll": LoopKind.UNROLLED,
}


@dataclass(frozen=True)
class Loop:
    """One loop of the nest."""

    name: str
    extent: int
    is_reduction: bool = False
    kind: LoopKind = LoopKind.SERIAL
    thread_tag: str = ""  # e.g. "blockIdx.x" when kind is BOUND
    pragmas: tuple[tuple[str, int], ...] = field(default=())
    rfactored: bool = False

    def with_kind(self, kind: LoopKind, thread_tag: str = "") -> "Loop":
        return replace(self, kind=kind, thread_tag=thread_tag)

    def with_pragma(self, name: str, value: int) -> "Loop":
        return replace(self, pragmas=(*self.pragmas, (name, value)))


@dataclass
class LoopNest:
    """An ordered loop nest (outermost first) with stage flags."""

    subgraph_name: str
    loops: list[Loop]
    cache_write: bool = False
    inlined: bool = False
    compute_at_axis: str = ""
    compute_root: bool = False

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def names(self) -> list[str]:
        return [l.name for l in self.loops]

    def loop(self, name: str) -> Loop:
        for l in self.loops:
            if l.name == name:
                return l
        raise KeyError(f"no loop {name!r} in nest of {self.subgraph_name!r}")

    @property
    def innermost(self) -> Loop:
        if not self.loops:
            raise ValueError(f"nest of {self.subgraph_name!r} has no loops")
        return self.loops[-1]

    def total_iterations(self) -> int:
        """Padded iteration count (product of loop extents)."""
        total = 1
        for l in self.loops:
            total *= l.extent
        return total

    def padding_ratio(self, domain_points: int) -> float:
        """Padded iterations over the subgraph's true domain size (>= 1)."""
        if domain_points <= 0:
            return math.inf
        return self.total_iterations() / domain_points

    def describe(self) -> str:
        """A readable one-loop-per-line dump, for logs and debugging."""
        lines = [f"nest {self.subgraph_name}"]
        for depth, l in enumerate(self.loops):
            tags = [l.kind.value]
            if l.thread_tag:
                tags.append(l.thread_tag)
            if l.is_reduction:
                tags.append("reduce")
            if l.rfactored:
                tags.append("rfactor")
            for name, value in l.pragmas:
                tags.append(f"{name}={value}")
            lines.append(f"{'  ' * (depth + 1)}for {l.name} in {l.extent}  [{', '.join(tags)}]")
        return "\n".join(lines)


__all__ = ["ANNOTATION_KINDS", "Loop", "LoopKind", "LoopNest"]
