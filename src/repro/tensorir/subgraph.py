"""Computational subgraphs — the unit of auto-tuning.

A :class:`Subgraph` is the minimal stand-in for an Ansor "task": a named
iteration domain (spatial + reduction axes with integer extents) plus a
per-point cost.  TLP never inspects the compute body — only the primitive
sequence applied to it — so the iteration domain is the only structure the
rest of the pipeline needs.  Richer compute DAGs (``compute.py``) plug in
later without changing this interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Axis:
    """One loop axis of a subgraph's iteration domain."""

    name: str
    extent: int
    is_reduction: bool = False

    def __post_init__(self) -> None:
        if self.extent < 1:
            raise ValueError(f"axis {self.name!r} has non-positive extent {self.extent}")
        if not self.name:
            raise ValueError("axis name must be non-empty")


@dataclass(frozen=True)
class Subgraph:
    """A named iteration domain: spatial axes, reduction axes, point cost."""

    name: str
    axes: tuple[Axis, ...]
    flops_per_point: int = 2
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        names = [a.name for a in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in subgraph {self.name!r}: {names}")

    @property
    def spatial_axes(self) -> tuple[Axis, ...]:
        return tuple(a for a in self.axes if not a.is_reduction)

    @property
    def reduction_axes(self) -> tuple[Axis, ...]:
        return tuple(a for a in self.axes if a.is_reduction)

    def axis(self, name: str) -> Axis:
        for a in self.axes:
            if a.name == name:
                return a
        raise KeyError(f"no axis {name!r} in subgraph {self.name!r}")

    @property
    def total_points(self) -> int:
        total = 1
        for a in self.axes:
            total *= a.extent
        return total


def matmul_subgraph(m: int = 128, n: int = 128, k: int = 128) -> Subgraph:
    """C[i, j] = sum_k A[i, k] * B[k, j]."""
    return Subgraph(
        name=f"matmul_{m}x{n}x{k}",
        axes=(Axis("i", m), Axis("j", n), Axis("k", k, is_reduction=True)),
        tags=("matmul",),
    )


def conv2d_subgraph(
    h: int = 56, w: int = 56, co: int = 64, ci: int = 64, kh: int = 3, kw: int = 3
) -> Subgraph:
    """A conv2d iteration domain (batch folded into spatial height)."""
    return Subgraph(
        name=f"conv2d_{h}x{w}x{co}_k{kh}x{kw}x{ci}",
        axes=(
            Axis("h", h),
            Axis("w", w),
            Axis("co", co),
            Axis("ci", ci, is_reduction=True),
            Axis("kh", kh, is_reduction=True),
            Axis("kw", kw, is_reduction=True),
        ),
        tags=("conv2d",),
    )


def elementwise_subgraph(n: int = 4096) -> Subgraph:
    """A pointwise op (relu/add/...): one spatial axis, no reduction."""
    return Subgraph(
        name=f"elementwise_{n}",
        axes=(Axis("i", n),),
        flops_per_point=1,
        tags=("elementwise",),
    )


def reduce_subgraph(n: int = 1024, r: int = 256) -> Subgraph:
    """A row-reduction: softmax-denominator / pooling shaped domain."""
    return Subgraph(
        name=f"reduce_{n}x{r}",
        axes=(Axis("i", n), Axis("r", r, is_reduction=True)),
        flops_per_point=1,
        tags=("reduce",),
    )


def sample_subgraph_pool() -> tuple[Subgraph, ...]:
    """A small pool of representative subgraphs for tests and sampling."""
    return (
        matmul_subgraph(128, 128, 128),
        matmul_subgraph(512, 64, 96),
        conv2d_subgraph(28, 28, 128, 64),
        conv2d_subgraph(14, 14, 256, 128, 1, 1),
        elementwise_subgraph(4096),
        reduce_subgraph(512, 384),
    )


__all__ = [
    "Axis",
    "Subgraph",
    "conv2d_subgraph",
    "elementwise_subgraph",
    "matmul_subgraph",
    "reduce_subgraph",
    "sample_subgraph_pool",
]
