"""Random schedule sampling.

Fills a sketch's free parameters with draws from a caller-supplied
``np.random.Generator`` (seeded via ``repro.utils.rng`` — this module
never touches global randomness).  The sampler mirrors the verifier's
axis-liveness bookkeeping so the sequences it emits are valid by
construction; :class:`repro.tensorir.sketch.SketchGenerator` still runs
the verifier on every sample, fail-closed.

CPU sketches follow Ansor's multi-level tiling: up to four spatial tile
levels and two reduction levels in S..S R S R S order, the outer spatial
tiles fused and parallelized, the innermost vectorized, plus optional
write-cache, rfactor, and unroll pragmas.  GPU sketches use three spatial
levels bound to blockIdx/threadIdx.
"""

from __future__ import annotations

import numpy as np

from repro.tensorir import primitives as P
from repro.tensorir.primitives import Primitive
from repro.tensorir.schedule import PAD_ALLOWANCE, Schedule, split_parts
from repro.tensorir.sketch import SketchConfig
from repro.tensorir.subgraph import Subgraph


def divisors(n: int) -> list[int]:
    """All positive divisors of ``n``, ascending."""
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def _choice(rng: np.random.Generator, items: list[int]) -> int:
    return int(items[int(rng.integers(0, len(items)))])


class ScheduleSampler:
    """Samples one primitive sequence per call; stateless across calls."""

    def __init__(self, config: SketchConfig):
        self.config = config

    # -- factor sampling ------------------------------------------------

    def _n_inner(self, extent: int) -> int:
        levels = 3 if self.config.target == "cpu" else 2
        if extent >= 32:
            return levels
        if extent >= 8:
            return min(2, levels)
        if extent >= 2:
            return 1
        return 0

    def _sample_factors(self, extent: int, n_inner: int, rng: np.random.Generator) -> tuple[int, ...]:
        """A chain of inner factors whose product divides ``extent``, with
        an occasional bounded-padding perturbation (DESIGN.md §6)."""
        factors: list[int] = []
        remaining = extent
        for _ in range(n_inner):
            options = [d for d in divisors(remaining) if d <= self.config.max_innermost_factor]
            f = _choice(rng, options)
            factors.append(f)
            remaining //= f
        if factors and rng.random() < self.config.padding_prob:
            bump = int(rng.integers(0, len(factors)))
            padded_factors = list(factors)
            padded_factors[bump] += 1
            padded = int(np.prod(split_parts(extent, tuple(padded_factors)), dtype=np.int64))
            if padded <= extent * (1.0 + PAD_ALLOWANCE):
                factors = padded_factors
        return tuple(factors)

    # -- sketch construction --------------------------------------------

    def sample(self, subgraph: Subgraph, rng: np.random.Generator) -> Schedule:
        cfg = self.config
        if not subgraph.reduction_axes and rng.random() < cfg.inline_prob:
            return Schedule(subgraph, (P.compute_inline(),), target=cfg.target)

        prims: list[Primitive] = []
        cache_write = cfg.target == "cpu" and rng.random() < cfg.cache_write_prob
        if cache_write:
            prims.append(P.cache_write())

        # Split every axis, tracking the resulting tile-part names.  A
        # spatial axis whose extent matches an earlier split is sometimes
        # split with FSP to exercise the follow-split dataflow.
        spatial_parts: list[list[str]] = []
        reduction_parts: list[list[str]] = []
        sp_steps: dict[int, int] = {}  # extent -> index of an SP step in prims
        for axis in subgraph.axes:
            n_inner = self._n_inner(axis.extent)
            if axis.is_reduction:
                n_inner = min(n_inner, 1)
            if n_inner == 0:
                parts = [axis.name]
            else:
                src_step = sp_steps.get(axis.extent)
                if (
                    not axis.is_reduction
                    and src_step is not None
                    and len(prims[src_step].ints) - 1 == n_inner
                    and rng.random() < 0.3
                ):
                    prims.append(P.follow_split(axis.name, axis.extent, src_step))
                    factors = tuple(prims[src_step].ints[1:])
                else:
                    factors = self._sample_factors(axis.extent, n_inner, rng)
                    prims.append(P.split(axis.name, axis.extent, factors))
                    if not axis.is_reduction:
                        sp_steps.setdefault(axis.extent, len(prims) - 1)
                parts = list(P.split_names(axis.name, len(factors) + 1))
            (reduction_parts if axis.is_reduction else spatial_parts).append(parts)

        order = self._tile_order(spatial_parts, reduction_parts)
        prims.append(P.reorder(order))

        if cfg.target == "gpu":
            self._emit_gpu_annotations(prims, order, spatial_parts, rng)
        else:
            self._emit_cpu_annotations(prims, order, spatial_parts, cache_write, rng)

        if reduction_parts and rng.random() < cfg.rfactor_prob:
            split_reductions = [p for p in reduction_parts if len(p) > 1]
            if split_reductions:
                prims.append(P.rfactor(split_reductions[0][0]))

        return Schedule(subgraph, tuple(prims), target=cfg.target)

    def _tile_order(
        self, spatial_parts: list[list[str]], reduction_parts: list[list[str]]
    ) -> list[str]:
        """Interleave spatial and reduction tile levels, outermost first:
        S0.. S1.. R0.. S2.. R1.. S3.. — every part exactly once."""

        def level(parts: list[list[str]], i: int) -> list[str]:
            return [p[i] for p in parts if len(p) > i]

        order = level(spatial_parts, 0) + level(spatial_parts, 1) + level(reduction_parts, 0)
        order += level(spatial_parts, 2) + level(reduction_parts, 1) + level(spatial_parts, 3)
        return order

    # -- annotation emission --------------------------------------------

    def _emit_cpu_annotations(
        self,
        prims: list[Primitive],
        order: list[str],
        spatial_parts: list[list[str]],
        cache_write: bool,
        rng: np.random.Generator,
    ) -> None:
        annotated: set[str] = set()
        outer = [p[0] for p in spatial_parts]
        if len(outer) >= 2 and rng.random() < 0.7:
            prims.append(P.fuse(outer))
            fused = P.fused_name(tuple(outer))
            order[: len(outer)] = [fused]
            outer_axis = fused
        else:
            outer_axis = order[0] if order else ""
        if outer_axis:
            prims.append(P.annotate(outer_axis, "parallel"))
            annotated.add(outer_axis)
        innermost = order[-1] if order else ""
        if innermost and innermost not in annotated and rng.random() < 0.7:
            prims.append(P.annotate(innermost, "vectorize"))
            annotated.add(innermost)
        if cache_write and len(order) > 1 and rng.random() < 0.5:
            prims.append(P.compute_at(order[1]))
        if outer_axis and rng.random() < 0.6:
            step = _choice(rng, list(self.config.unroll_steps))
            prims.append(P.pragma(outer_axis, "auto_unroll_max_step", step))

    def _emit_gpu_annotations(
        self,
        prims: list[Primitive],
        order: list[str],
        spatial_parts: list[list[str]],
        rng: np.random.Generator,
    ) -> None:
        annotated: set[str] = set()

        def bind_level(parts_index: int, tag: str, at: int) -> None:
            names = [p[parts_index] for p in spatial_parts if len(p) > parts_index]
            if not names:
                return
            if len(names) >= 2:
                prims.append(P.fuse(names))
                fused = P.fused_name(tuple(names))
                order[at : at + len(names)] = [fused]
                target = fused
            else:
                target = names[0]
            prims.append(P.annotate(target, f"bind.{tag}"))
            annotated.add(target)

        bind_level(0, "blockIdx.x", 0)
        # The block level always collapses to one slot (every spatial axis
        # has a level-0 part, and >=2 of them get fused), so the thread
        # level starts right after it.
        bind_level(1, "threadIdx.x", 1)
        innermost = order[-1] if order else ""
        if innermost and innermost not in annotated and rng.random() < 0.5:
            prims.append(P.annotate(innermost, "vectorize"))
        if order and rng.random() < 0.5:
            step = _choice(rng, list(self.config.unroll_steps))
            prims.append(P.pragma(order[0], "auto_unroll_max_step", step))


def sample_schedule(
    subgraph: Subgraph, target: str = "cpu", rng: np.random.Generator | None = None
) -> Schedule:
    """Convenience wrapper: one verified random schedule for ``subgraph``."""
    from repro.tensorir.sketch import SketchGenerator
    from repro.utils.rng import stream

    if rng is None:
        rng = stream(f"sampler.{subgraph.name}.{target}")
    return SketchGenerator(SketchConfig(target=target)).generate(subgraph, rng)


__all__ = ["ScheduleSampler", "divisors", "sample_schedule"]
