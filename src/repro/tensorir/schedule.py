"""Schedule = subgraph + primitive sequence, and the applier.

``Schedule.apply()`` rewrites the subgraph's initial loop nest primitive
by primitive, raising :class:`ScheduleError` on any structurally invalid
step.  The static verifier in ``repro.analysis`` checks the same rules
*without* building the nest; the contract (enforced by property tests) is
that any sequence the verifier passes clean applies without exception.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.tensorir.loops import ANNOTATION_KINDS, Loop, LoopKind, LoopNest
from repro.tensorir.primitives import (
    ANNOTATIONS,
    GPU_BIND_PREFIX,
    PRAGMAS,
    Primitive,
    PrimitiveKind,
    fused_name,
    split_names,
)
from repro.tensorir.subgraph import Subgraph


class ScheduleError(Exception):
    """A primitive could not be applied to the current loop nest."""


#: Max allowed ratio of padded iterations to the true extent for one split
#: (DESIGN.md §6: bounded padding keeps intra-task latency spreads sane).
#: Shared by the sampler's by-construction check and the verifier's E103
#: rule so the two can never drift apart.
PAD_ALLOWANCE: float = 0.25


def split_parts(extent: int, factors: tuple[int, ...]) -> tuple[int, ...]:
    """Extents of the loops produced by splitting ``extent`` by ``factors``.

    Factors are the inner-loop extents (innermost last); the outer loop
    absorbs the remainder with ceil-division, padding the domain when the
    factors do not divide the extent.
    """
    inner = 1
    for f in factors:
        inner *= f
    outer = max(1, math.ceil(extent / inner))
    return (outer, *factors)


@dataclass
class Schedule:
    """A primitive sequence attached to a subgraph and a target."""

    subgraph: Subgraph
    primitives: tuple[Primitive, ...]
    target: str = "cpu"

    def __post_init__(self) -> None:
        self.primitives = tuple(self.primitives)

    def apply(self) -> LoopNest:
        """Apply every primitive, returning the resulting loop nest."""
        return _Applier(self).run()

    def apply_trace(self) -> list[LoopNest]:
        """Apply step by step, returning the nest snapshot after each
        primitive (introspection hook for differential testing against
        ``repro.analysis.absint``).  The last snapshot equals ``apply()``.
        """
        return _Applier(self).run_trace()

    def __len__(self) -> int:
        return len(self.primitives)


@dataclass
class _Applier:
    schedule: Schedule
    nest: LoopNest = field(init=False)
    #: Index of the primitive currently being applied — FSP resolution
    #: must only see strictly earlier steps (Ansor traces are causal).
    _step: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        sg = self.schedule.subgraph
        self.nest = LoopNest(
            subgraph_name=sg.name,
            loops=[Loop(a.name, a.extent, is_reduction=a.is_reduction) for a in sg.axes],
        )

    def run(self) -> LoopNest:
        for index, prim in enumerate(self.schedule.primitives):
            self._step = index
            if self.nest.inlined:
                raise ScheduleError(f"step {index}: primitive after compute-inline")
            try:
                self._apply_one(prim)
            except ScheduleError:
                raise
            except (KeyError, ValueError, IndexError) as exc:
                raise ScheduleError(f"step {index}: {exc}") from exc
        return self.nest

    def run_trace(self) -> list[LoopNest]:
        """Like :meth:`run`, but snapshot the nest after every primitive.

        Loops are frozen dataclasses, so a shallow list copy per step is
        a faithful snapshot.
        """
        snapshots: list[LoopNest] = []
        for index, prim in enumerate(self.schedule.primitives):
            self._step = index
            if self.nest.inlined:
                raise ScheduleError(f"step {index}: primitive after compute-inline")
            try:
                self._apply_one(prim)
            except ScheduleError:
                raise
            except (KeyError, ValueError, IndexError) as exc:
                raise ScheduleError(f"step {index}: {exc}") from exc
            snapshots.append(
                LoopNest(
                    subgraph_name=self.nest.subgraph_name,
                    loops=list(self.nest.loops),
                    cache_write=self.nest.cache_write,
                    inlined=self.nest.inlined,
                    compute_at_axis=self.nest.compute_at_axis,
                    compute_root=self.nest.compute_root,
                )
            )
        return snapshots

    def _index(self, axis: str) -> int:
        for i, l in enumerate(self.nest.loops):
            if l.name == axis:
                return i
        raise ScheduleError(f"axis {axis!r} is not live in {self.nest.names}")

    def _apply_one(self, prim: Primitive) -> None:
        handler = getattr(self, f"_apply_{prim.kind.value.lower()}")
        handler(prim)

    # -- loop-structure primitives --------------------------------------

    def _split(self, axis: str, extent: int, factors: tuple[int, ...]) -> None:
        idx = self._index(axis)
        old = self.nest.loops[idx]
        if old.extent != extent:
            raise ScheduleError(
                f"split of {axis!r} carries extent {extent} but loop extent is {old.extent}"
            )
        if not factors or any((not isinstance(f, int)) or f < 1 for f in factors):
            raise ScheduleError(f"split of {axis!r} has invalid factors {factors}")
        parts = split_parts(extent, factors)
        names = split_names(axis, len(parts))
        self.nest.loops[idx : idx + 1] = [
            Loop(n, e, is_reduction=old.is_reduction) for n, e in zip(names, parts)
        ]

    def _apply_sp(self, prim: Primitive) -> None:
        (axis,) = prim.axes
        extent, *factors = prim.ints
        self._split(axis, extent, tuple(factors))

    def _apply_fsp(self, prim: Primitive) -> None:
        (axis,) = prim.axes
        extent, src_step = prim.ints
        if not 0 <= src_step < len(self.schedule.primitives):
            raise ScheduleError(f"follow-split of {axis!r} references missing step {src_step}")
        if src_step >= self._step:
            raise ScheduleError(
                f"follow-split of {axis!r} references step {src_step}, which is not "
                f"strictly earlier than step {self._step}"
            )
        src = self.schedule.primitives[src_step]
        if src.kind is not PrimitiveKind.SP:
            raise ScheduleError(f"follow-split of {axis!r} references non-SP step {src_step}")
        self._split(axis, extent, tuple(src.ints[1:]))

    def _apply_re(self, prim: Primitive) -> None:
        if sorted(prim.axes) != sorted(self.nest.names):
            raise ScheduleError(
                f"reorder {list(prim.axes)} is not a permutation of {self.nest.names}"
            )
        by_name = {l.name: l for l in self.nest.loops}
        self.nest.loops = [by_name[n] for n in prim.axes]

    def _apply_fu(self, prim: Primitive) -> None:
        if len(prim.axes) < 2:
            raise ScheduleError(f"fuse needs >=2 axes, got {list(prim.axes)}")
        indices = [self._index(a) for a in prim.axes]
        if indices != list(range(indices[0], indices[0] + len(indices))):
            raise ScheduleError(f"fuse axes {list(prim.axes)} are not adjacent in {self.nest.names}")
        merged = self.nest.loops[indices[0] : indices[-1] + 1]
        extent = 1
        for l in merged:
            extent *= l.extent
        fused = Loop(
            fused_name(prim.axes), extent, is_reduction=any(l.is_reduction for l in merged)
        )
        self.nest.loops[indices[0] : indices[-1] + 1] = [fused]

    # -- annotation primitives ------------------------------------------

    def _apply_an(self, prim: Primitive) -> None:
        (axis,) = prim.axes
        idx = self._index(axis)
        loop = self.nest.loops[idx]
        if prim.attr not in ANNOTATIONS:
            raise ScheduleError(f"unknown annotation {prim.attr!r} on {axis!r}")
        if loop.kind is not LoopKind.SERIAL:
            raise ScheduleError(f"axis {axis!r} already annotated as {loop.kind.value}")
        if prim.attr.startswith(GPU_BIND_PREFIX):
            if self.schedule.target != "gpu":
                raise ScheduleError(f"GPU bind {prim.attr!r} under target {self.schedule.target!r}")
            tag = prim.attr[len(GPU_BIND_PREFIX) :]
            if any(l.thread_tag == tag for l in self.nest.loops):
                raise ScheduleError(f"thread tag {tag!r} bound twice")
            self.nest.loops[idx] = loop.with_kind(LoopKind.BOUND, thread_tag=tag)
        else:
            self.nest.loops[idx] = loop.with_kind(ANNOTATION_KINDS[prim.attr])

    def _apply_pr(self, prim: Primitive) -> None:
        (axis,) = prim.axes
        idx = self._index(axis)
        if prim.attr not in PRAGMAS:
            raise ScheduleError(f"unknown pragma {prim.attr!r} on {axis!r}")
        (value,) = prim.ints
        self.nest.loops[idx] = self.nest.loops[idx].with_pragma(prim.attr, value)

    # -- stage primitives -----------------------------------------------

    def _apply_ca(self, prim: Primitive) -> None:
        (axis,) = prim.axes
        self._index(axis)
        self.nest.compute_at_axis = axis

    def _apply_chw(self, prim: Primitive) -> None:
        self.nest.cache_write = True

    def _apply_rf(self, prim: Primitive) -> None:
        (axis,) = prim.axes
        idx = self._index(axis)
        loop = self.nest.loops[idx]
        if not loop.is_reduction:
            raise ScheduleError(f"rfactor of non-reduction axis {axis!r}")
        self.nest.loops[idx] = Loop(
            loop.name,
            loop.extent,
            is_reduction=loop.is_reduction,
            kind=loop.kind,
            thread_tag=loop.thread_tag,
            pragmas=loop.pragmas,
            rfactored=True,
        )

    def _apply_ci(self, prim: Primitive) -> None:
        if self.nest.cache_write or self.nest.compute_at_axis or self.nest.compute_root:
            raise ScheduleError("compute-inline conflicts with CHW/CA/CP on the same stage")
        if any(l.rfactored for l in self.nest.loops):
            raise ScheduleError("compute-inline conflicts with rfactor")
        self.nest.inlined = True

    def _apply_cp(self, prim: Primitive) -> None:
        self.nest.compute_root = True


__all__ = ["PAD_ALLOWANCE", "Schedule", "ScheduleError", "split_parts"]
