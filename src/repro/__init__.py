"""TLP reproduction package.

Subsystems land incrementally (see DESIGN.md §3 for the full inventory).
Currently present:

* ``repro.utils``    — seeded RNG streams, structured logging, timers.
* ``repro.tensorir`` — subgraphs, loop-nest IR, the 11 Ansor-style schedule
  primitive kinds, a schedule applier, sketch rules and a random sampler.
* ``repro.analysis`` — static verification of primitive sequences
  (no schedule application, no latency simulation) plus a repo self-lint.
* ``repro.core``     — TLP feature extraction: batch-first featurizer over
  primitive sequences (Fig. 4/5) with Table 4 crop/pad, the Fig. 7
  attention cost model and its MTL multi-head variant, the offline
  lambda-rank trainer with exact checkpoint/resume, and the Table 6/7
  top-k evaluation metrics.
* ``repro.nn``       — from-scratch numpy autograd + NN substrate (layers,
  attention, losses, optimizers, gradient checking).
* ``repro.simhw``    — deterministic simulated-hardware latency substrate:
  7 analytical platform models (5 CPU, 2 GPU) standing in for the TenSet
  measurement farm.
* ``repro.dataset``  — TenSet-scale streaming dataset factory: network-pool
  specs to columnar memory-mapped shard stores with a resumable manifest,
  plus the ``ShardReader`` training view.
"""

from __future__ import annotations

__version__ = "0.1.0"

from repro.analysis import (
    Diagnostic,
    InvalidScheduleError,
    Severity,
    verify_many,
    verify_schedule,
    verify_sequence,
)
from repro.core import (
    MTLTLPModel,
    PostprocessConfig,
    TLPFeaturizer,
    TLPModel,
    TLPModelConfig,
    TrainConfig,
    Trainer,
)
from repro.dataset import DatasetSpec, Manifest, ShardReader, build_dataset
from repro.simhw import (
    ALL_PLATFORMS,
    LatencyRecord,
    Platform,
    get_platform,
    labels_from_latencies,
    measure,
    measure_many,
)
from repro.tensorir import (
    Axis,
    Loop,
    LoopKind,
    LoopNest,
    Primitive,
    PrimitiveKind,
    Schedule,
    ScheduleError,
    ScheduleSampler,
    SketchConfig,
    SketchGenerator,
    Subgraph,
    sample_schedule,
)

__all__ = [
    "__version__",
    "ALL_PLATFORMS",
    "Axis",
    "DatasetSpec",
    "Diagnostic",
    "InvalidScheduleError",
    "LatencyRecord",
    "Loop",
    "LoopKind",
    "LoopNest",
    "MTLTLPModel",
    "Manifest",
    "Platform",
    "PostprocessConfig",
    "Primitive",
    "PrimitiveKind",
    "Schedule",
    "ScheduleError",
    "ScheduleSampler",
    "Severity",
    "ShardReader",
    "SketchConfig",
    "SketchGenerator",
    "Subgraph",
    "TLPFeaturizer",
    "TLPModel",
    "TLPModelConfig",
    "TrainConfig",
    "Trainer",
    "build_dataset",
    "get_platform",
    "labels_from_latencies",
    "measure",
    "measure_many",
    "sample_schedule",
    "verify_many",
    "verify_schedule",
    "verify_sequence",
]
