"""The public simulated-measurement API (the hardware substitute).

``measure(subgraph, schedule, platform)`` plays the role real hardware
plays in the paper: it prices an applied schedule on one of the 7
simulated platforms and returns a :class:`LatencyRecord`.  The batched
``measure_many`` is the dataset/trainer hot path — nest features are
flattened once and every cost term is vectorized, so labelling ~10k
schedules takes seconds on one core (``benchmarks/bench_simhw.py``).

Determinism contract: a measurement is a **pure function of
(subgraph, primitive sequence, platform, root seed)**.  No wall clock
anywhere (``repro.analysis.selfcheck`` rule SC104 lints for it); the
only stochastic ingredient is the deterministic micro-architectural
"quirk" multiplier, drawn from named ``repro.utils.rng`` streams keyed
on (ISA family | platform, program-shape signature, root seed) — so
same-ISA platforms share the dominant quirk component and stay closer,
as Table 9 requires, while re-deriving the streams in a fresh process
reproduces every latency bit-for-bit.

``python -m repro.simhw.measure`` runs a self-checking smoke over all 7
platforms (wired into ``make check``); ``--digest`` prints only the
latency digest, which the two-process determinism test compares.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.simhw import cpu_model, gpu_model
from repro.simhw.cache import NestFeatures
from repro.simhw.platform import ALL_PLATFORMS, Platform, get_platform
from repro.tensorir.primitives import Primitive
from repro.tensorir.schedule import Schedule
from repro.tensorir.subgraph import Subgraph
from repro.utils.rng import ROOT_SEED, stream

ScheduleLike = "Schedule | Sequence[Primitive]"


@dataclass(frozen=True)
class LatencyRecord:
    """One simulated measurement, with its term breakdown."""

    subgraph: str
    platform: str
    latency: float           #: seconds
    compute_cycles: float
    memory_cycles: float
    overhead_cycles: float
    parallel_speedup: float
    conflict_factor: float
    quirk: float             #: the deterministic quirk multiplier applied


@lru_cache(maxsize=65536)
def _quirk_unit(stream_name: str, root_seed: int) -> float:
    """One uniform(-1, 1) draw from a named stream, memoized.

    Deterministic by construction (the stream is re-derived from its
    name + root seed), so caching only saves the SHA-256 + generator
    setup on repeated signatures.
    """
    return float(stream(stream_name, root_seed).uniform(-1.0, 1.0))


def quirk_multipliers(
    signatures: Sequence[str], platform: Platform, root_seed: int = ROOT_SEED
) -> np.ndarray:
    """Deterministic per-nest quirk multipliers for one platform.

    ``exp(isa_scale * u_isa + platform_scale * u_plat)`` where the two
    units are drawn from streams keyed on the ISA family and the
    platform respectively (each crossed with the program-shape
    signature).  Same-family platforms share ``u_isa`` — the dominant
    component — so their quirks co-move; cross-family quirks are
    independent.  Signatures are coarse (DESIGN.md §6), so near-top
    candidates of one task share a multiplier and intra-task rankings
    stay clean.
    """
    out = np.empty(len(signatures), dtype=np.float32)
    for i, sig in enumerate(signatures):
        u_isa = _quirk_unit(f"simhw.quirk.isa.{platform.isa}.{sig}", root_seed)
        u_plat = _quirk_unit(f"simhw.quirk.platform.{platform.name}.{sig}", root_seed)
        out[i] = math.exp(
            platform.quirk_isa_scale * u_isa + platform.quirk_platform_scale * u_plat
        )
    return out


def _coerce_schedule(
    subgraph: Subgraph, schedule: "Schedule | Sequence[Primitive]", platform: Platform
) -> Schedule:
    if isinstance(schedule, Schedule):
        if schedule.subgraph is not subgraph and schedule.subgraph != subgraph:
            raise ValueError(
                f"schedule was built for subgraph {schedule.subgraph.name!r}, "
                f"not {subgraph.name!r}"
            )
        if schedule.target != platform.target:
            raise ValueError(
                f"schedule targets {schedule.target!r} but platform "
                f"{platform.name!r} is {platform.target!r}"
            )
        return schedule
    return Schedule(subgraph, tuple(schedule), target=platform.target)


def extract_features(
    subgraph: Subgraph,
    schedules: Sequence["Schedule | Sequence[Primitive]"],
    platform: Platform,
) -> NestFeatures:
    """Apply every schedule and flatten the nests for vectorized costing."""
    nests = [_coerce_schedule(subgraph, s, platform).apply() for s in schedules]
    return NestFeatures.from_nests(subgraph, nests)


def _base_latencies(
    features: NestFeatures, platform: Platform
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    model = gpu_model if platform.target == "gpu" else cpu_model
    return model.latency_seconds(features, platform)


def measure_many(
    subgraph: Subgraph,
    schedules: Sequence["Schedule | Sequence[Primitive]"],
    platform: "Platform | str",
    *,
    root_seed: int = ROOT_SEED,
) -> np.ndarray:
    """Simulated latencies (float32 seconds, [N]) for a schedule batch.

    Bit-identical to a loop of :func:`measure`: the single-schedule path
    runs through this exact function with a batch of one, and every cost
    term is elementwise over the batch.
    """
    platform = get_platform(platform)
    features = extract_features(subgraph, schedules, platform)
    seconds, _ = _base_latencies(features, platform)
    quirk = quirk_multipliers(features.signatures, platform, root_seed)
    return (seconds * quirk).astype(np.float32)


def measure(
    subgraph: Subgraph,
    schedule: "Schedule | Sequence[Primitive]",
    platform: "Platform | str",
    *,
    root_seed: int = ROOT_SEED,
) -> LatencyRecord:
    """Simulate one measurement, returning the record with its breakdown."""
    platform = get_platform(platform)
    features = extract_features(subgraph, [schedule], platform)
    seconds, terms = _base_latencies(features, platform)
    quirk = quirk_multipliers(features.signatures, platform, root_seed)
    latency = np.float32(seconds[0] * quirk[0])
    return LatencyRecord(
        subgraph=subgraph.name,
        platform=platform.name,
        latency=float(latency),
        compute_cycles=float(terms["compute_cycles"][0]),
        memory_cycles=float(terms["memory_cycles"][0]),
        overhead_cycles=float(terms["overhead_cycles"][0]),
        parallel_speedup=float(terms["parallel_speedup"][0]),
        conflict_factor=float(terms["conflict_factor"][0]),
        quirk=float(quirk[0]),
    )


def labels_from_latencies(latencies: np.ndarray) -> np.ndarray:
    """TLP training labels: ``min_latency / latency`` in (0, 1].

    The paper's relative-performance target (§4.2): the task's best
    schedule scores 1.0, everything else a fraction of it.
    """
    lat = np.asarray(latencies, dtype=np.float32)
    if lat.size == 0:
        return lat.copy()
    if not np.all(lat > 0):
        raise ValueError("latencies must be strictly positive")
    return (lat.min() / lat).astype(np.float32)


def measure_labels(
    subgraph: Subgraph,
    schedules: Sequence["Schedule | Sequence[Primitive]"],
    platform: "Platform | str",
    *,
    root_seed: int = ROOT_SEED,
) -> tuple[np.ndarray, np.ndarray]:
    """(latencies, min-normalized labels) for one task on one platform."""
    latencies = measure_many(subgraph, schedules, platform, root_seed=root_seed)
    return latencies, labels_from_latencies(latencies)


# -- smoke ------------------------------------------------------------------


def _smoke(batch: int = 256) -> dict[str, object]:
    """Measure a candidate batch on all 7 platforms; assert determinism.

    Returns the latency digest (SHA-256 over the concatenated float32
    latencies in platform order) plus timing — ``make check`` runs this
    via ``python -m repro.simhw.measure``.
    """
    from repro.tensorir.sketch import SketchConfig, SketchGenerator
    from repro.tensorir.subgraph import matmul_subgraph
    from repro.utils.timer import Timer

    subgraph = matmul_subgraph(128, 128, 128)
    corpus = {
        target: SketchGenerator(SketchConfig(target)).generate_many(
            subgraph, batch, stream(f"simhw.smoke.{target}")
        )
        for target in ("cpu", "gpu")
    }

    digest = hashlib.sha256()
    per_platform: dict[str, float] = {}
    with Timer() as t:
        for platform in ALL_PLATFORMS:
            schedules = corpus[platform.target]
            latencies = measure_many(subgraph, schedules, platform)
            again = measure_many(subgraph, schedules, platform)
            if not np.array_equal(latencies, again):
                raise AssertionError(f"measure_many is not deterministic on {platform.name}")
            labels = labels_from_latencies(latencies)
            if not (labels.max() == np.float32(1.0) and np.all(labels > 0)):
                raise AssertionError(f"labels out of (0, 1] on {platform.name}")
            digest.update(latencies.tobytes())
            per_platform[platform.name] = float(np.median(latencies))
    return {
        "batch": batch,
        "platforms": len(ALL_PLATFORMS),
        "median_latency_s": per_platform,
        "seconds": t.elapsed,
        "digest": digest.hexdigest(),
    }


def main(argv: "list[str] | None" = None) -> int:
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    stats = _smoke()
    if "--digest" in args:
        print(stats["digest"])
        return 0
    print(
        f"simhw smoke OK: {stats['batch']} schedules x {stats['platforms']} platforms "
        f"in {stats['seconds']:.2f}s, deterministic (digest {str(stats['digest'])[:16]}...)"
    )
    for name, median in stats["median_latency_s"].items():  # type: ignore[union-attr]
        print(f"  {name:>14}: median {median * 1e3:8.3f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = [
    "LatencyRecord",
    "extract_features",
    "labels_from_latencies",
    "measure",
    "measure_labels",
    "measure_many",
    "quirk_multipliers",
]
