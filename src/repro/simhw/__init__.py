"""Deterministic simulated-hardware latency substrate (DESIGN.md §3).

Stands in for the TenSet measurement farm: ``measure`` prices an applied
schedule on one of 7 simulated platforms (5 CPU-like, 2 GPU-like) as a
pure function of (subgraph, primitive sequence, platform, root seed), so
dataset labels are bit-reproducible and free.  ``measure_many`` is the
vectorized batch path used to label training corpora.
"""

from repro.simhw.measure import (
    LatencyRecord,
    extract_features,
    labels_from_latencies,
    measure,
    measure_labels,
    measure_many,
    quirk_multipliers,
)
from repro.simhw.platform import (
    ALL_PLATFORMS,
    CPU_PLATFORMS,
    GPU_PLATFORMS,
    ISA_FAMILIES,
    PLATFORMS,
    Platform,
    get_platform,
)

__all__ = [
    "ALL_PLATFORMS",
    "CPU_PLATFORMS",
    "GPU_PLATFORMS",
    "ISA_FAMILIES",
    "LatencyRecord",
    "PLATFORMS",
    "Platform",
    "extract_features",
    "get_platform",
    "labels_from_latencies",
    "measure",
    "measure_labels",
    "measure_many",
    "quirk_multipliers",
]
