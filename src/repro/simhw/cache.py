"""Nest features and the tile-footprint / cache-hierarchy reuse model.

The analytical models never walk :class:`repro.tensorir.loops.LoopNest`
objects in their hot path — :class:`NestFeatures` flattens a batch of
applied nests into right-aligned ``[N, D]`` float32/int8 arrays once, and
every cost term in ``cpu_model``/``gpu_model`` is vectorized over the
batch.  That is what lets ``measure_many`` label ~10k schedules in
seconds on one core.

The cache model (:func:`memory_cycles`) is a classic tile-reuse
argument: for each cache level, find the deepest loop-suffix tile whose
working set fits the level, then charge the traffic that tile generates
against the next level's bandwidth.  Working-set size is approximated as
``bytes_per_point * points ** REUSE_EXPONENT`` — the sublinear exponent
stands in for inter-iteration reuse (a matmul tile of ``t`` points
touches ~``t**(2/3)`` data).  Good multi-level tiling lands suffix
products near the cache capacities and is rewarded with less traffic,
which is exactly the signal the TLP cost model has to learn from split
factors alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.simhw.platform import Platform
from repro.tensorir.loops import LoopKind, LoopNest
from repro.tensorir.subgraph import Subgraph

#: Loop-kind codes in the ``kinds`` feature plane (pad columns are SERIAL
#: with extent 1, which every cost term treats as a no-op loop).
K_SERIAL, K_PARALLEL, K_VECTORIZED, K_UNROLLED, K_BOUND = 0, 1, 2, 3, 4

_KIND_CODE = {
    LoopKind.SERIAL: K_SERIAL,
    LoopKind.PARALLEL: K_PARALLEL,
    LoopKind.VECTORIZED: K_VECTORIZED,
    LoopKind.UNROLLED: K_UNROLLED,
    LoopKind.BOUND: K_BOUND,
}

#: GPU thread-tag codes in the ``tags`` plane.
TAG_NONE, TAG_BLOCK, TAG_THREAD, TAG_VTHREAD = 0, 1, 2, 3

#: Bytes one iteration point keeps live (float32 accumulator proxy).
BYTES_PER_POINT: float = 4.0

#: Working set of a tile with ``t`` points is ``BYTES_PER_POINT * t**REUSE_EXPONENT``
#: — the sublinear exponent models inter-iteration data reuse.
REUSE_EXPONENT: float = 2.0 / 3.0

#: Middle-loop extents >= this that are powers of two alias cache sets /
#: shared-memory banks.  The single source of truth for this geometry
#: constant: the verifier's W301 default and the abstract interpreter
#: import it from here, so the static smells mark exactly what the
#: simulated hardware punishes.
POW2_CONFLICT_THRESHOLD: int = 64


def _tag_code(thread_tag: str) -> int:
    if not thread_tag:
        return TAG_NONE
    if thread_tag.startswith("blockIdx"):
        return TAG_BLOCK
    if thread_tag.startswith("threadIdx"):
        return TAG_THREAD
    return TAG_VTHREAD


@dataclass
class NestFeatures:
    """A batch of applied loop nests, flattened for vectorized costing.

    Loop planes (``extents``/``kinds``/``is_reduction``/``tags``) are
    right-aligned: column ``D-1`` is each nest's innermost loop and the
    left padding holds extent-1 serial loops, so suffix products and
    "distance from innermost" are uniform array expressions.
    """

    n: int
    depth: np.ndarray            # int32 [N]
    extents: np.ndarray          # float32 [N, D]
    kinds: np.ndarray            # int8 [N, D]
    is_reduction: np.ndarray     # bool [N, D]
    tags: np.ndarray             # int8 [N, D]
    padded_points: np.ndarray    # float32 [N] — product of loop extents
    domain_points: np.ndarray    # float32 [N] — subgraph's true domain size
    flops_per_point: np.ndarray  # float32 [N]
    unroll_step: np.ndarray      # float32 [N] — max auto_unroll_max_step pragma
    cache_write: np.ndarray      # bool [N]
    compute_at: np.ndarray       # bool [N]
    inlined: np.ndarray          # bool [N]
    rfactored: np.ndarray        # bool [N]
    signatures: tuple[str, ...]  # program-shape signature per nest (quirk key)

    @classmethod
    def from_nests(
        cls, subgraph: Subgraph, nests: Sequence[LoopNest]
    ) -> "NestFeatures":
        n = len(nests)
        depth_list = [nest.depth for nest in nests]
        d = max(depth_list, default=1)
        d = max(d, 1)

        extents = np.ones((n, d), dtype=np.float32)
        kinds = np.zeros((n, d), dtype=np.int8)
        is_red = np.zeros((n, d), dtype=bool)
        tags = np.zeros((n, d), dtype=np.int8)
        unroll = np.zeros(n, dtype=np.float32)
        cache_write = np.zeros(n, dtype=bool)
        compute_at = np.zeros(n, dtype=bool)
        inlined = np.zeros(n, dtype=bool)
        rfactored = np.zeros(n, dtype=bool)
        signatures: list[str] = []

        for i, nest in enumerate(nests):
            start = d - nest.depth  # right-align: innermost in column d-1
            sig_kinds: list[str] = []
            for j, loop in enumerate(nest.loops, start=start):
                extents[i, j] = loop.extent
                code = _KIND_CODE[loop.kind]
                kinds[i, j] = code
                is_red[i, j] = loop.is_reduction
                tags[i, j] = _tag_code(loop.thread_tag)
                sig_kinds.append(str(code))
                if loop.rfactored:
                    rfactored[i] = True
                for name, value in loop.pragmas:
                    if name == "auto_unroll_max_step":
                        unroll[i] = max(unroll[i], float(value))
            cache_write[i] = nest.cache_write
            compute_at[i] = bool(nest.compute_at_axis)
            inlined[i] = nest.inlined
            # Program-shape signature: coarse on purpose (DESIGN.md §6) —
            # near-top candidates of one subgraph usually share it, so the
            # quirk terms keyed on it cancel within a task and act across
            # platforms instead.
            signatures.append(
                f"{subgraph.name}/{nest.depth}/{''.join(sig_kinds)}"
                f"/cw{int(nest.cache_write)}rf{int(rfactored[i])}ci{int(nest.inlined)}"
            )

        domain = np.full(n, float(subgraph.total_points), dtype=np.float32)
        flops = np.full(n, float(subgraph.flops_per_point), dtype=np.float32)
        return cls(
            n=n,
            depth=np.asarray(depth_list, dtype=np.int32),
            extents=extents,
            kinds=kinds,
            is_reduction=is_red,
            tags=tags,
            padded_points=extents.prod(axis=1, dtype=np.float32),
            domain_points=domain,
            flops_per_point=flops,
            unroll_step=unroll,
            cache_write=cache_write,
            compute_at=compute_at,
            inlined=inlined,
            rfactored=rfactored,
            signatures=tuple(signatures),
        )

    def suffix_products(self) -> np.ndarray:
        """``sp[:, j] = prod(extents[:, j:])`` — the loop-suffix tile sizes."""
        return np.cumprod(self.extents[:, ::-1], axis=1, dtype=np.float32)[:, ::-1]


def tile_points(suffix_products: np.ndarray, capacity_points: float) -> np.ndarray:
    """Largest loop-suffix tile (in points) fitting ``capacity_points``.

    Suffix products shrink monotonically toward the innermost loop, so
    this is the deepest tile a cache of that capacity can hold; 1.0 when
    even the innermost loop overflows it (register-only reuse).
    """
    cap = np.float32(capacity_points)
    fits = suffix_products <= cap
    best = np.where(fits, suffix_products, np.float32(1.0)).max(axis=1)
    return np.maximum(best, np.float32(1.0))


def memory_cycles(features: NestFeatures, platform: Platform) -> np.ndarray:
    """Per-nest memory cycles from the multi-level tile-reuse walk.

    For each cache level: the resident tile of ``t`` points generates
    ``bytes(t) = BYTES_PER_POINT * t**REUSE_EXPONENT`` of traffic from
    the level below per traversal, and the nest traverses
    ``padded_points / t`` tiles — so total traffic is
    ``padded_points * BYTES_PER_POINT * t**(REUSE_EXPONENT-1)`` charged
    at that link's bytes/cycle.  Bigger resident tiles (better tiling)
    mean strictly less traffic.
    """
    sp = features.suffix_products()
    total = np.zeros(features.n, dtype=np.float32)
    for size_kb, bytes_per_cycle in zip(platform.cache_kb, platform.cache_bw):
        # Invert bytes(t) <= capacity to a point capacity for the tile walk.
        capacity_points = (size_kb * 1024.0 / BYTES_PER_POINT) ** (1.0 / REUSE_EXPONENT)
        t = tile_points(sp, capacity_points)
        traffic = features.padded_points * np.float32(BYTES_PER_POINT) * t ** np.float32(
            REUSE_EXPONENT - 1.0
        )
        total += traffic / np.float32(bytes_per_cycle)
    # A write-cache stage pays off when the producer is anchored under a
    # consumer loop (CHW + CA keeps the accumulator tile resident); a
    # floating write cache just adds a copy-out pass.
    cw_at = features.cache_write & features.compute_at
    cw_floating = features.cache_write & ~features.compute_at
    total = total * np.where(cw_at, np.float32(0.85), np.float32(1.0))
    total = total * np.where(cw_floating, np.float32(1.06), np.float32(1.0))
    return total


def conflict_counts(features: NestFeatures) -> np.ndarray:
    """Per-nest count of large power-of-two *middle* loop extents.

    The W301 analogue (DESIGN.md §6): extents >= POW2_CONFLICT_THRESHOLD
    that are exact powers of two on loops that are neither the outermost
    real loop nor the innermost alias cache sets (CPU) or shared-memory
    banks (GPU).  The per-platform penalty is applied by the models.
    """
    d = features.extents.shape[1]
    cols = np.arange(d)
    outer_col = (d - features.depth)[:, None]  # first real column per nest
    middle = (cols[None, :] > outer_col) & (cols[None, :] < d - 1)
    e_int = features.extents.astype(np.int64)
    pow2 = (
        (e_int >= POW2_CONFLICT_THRESHOLD)
        & ((e_int & (e_int - 1)) == 0)
        & (e_int.astype(np.float32) == features.extents)
    )
    return (middle & pow2).sum(axis=1).astype(np.float32)


__all__ = [
    "BYTES_PER_POINT",
    "K_BOUND",
    "K_PARALLEL",
    "K_SERIAL",
    "K_UNROLLED",
    "K_VECTORIZED",
    "NestFeatures",
    "POW2_CONFLICT_THRESHOLD",
    "REUSE_EXPONENT",
    "TAG_BLOCK",
    "TAG_NONE",
    "TAG_THREAD",
    "TAG_VTHREAD",
    "conflict_counts",
    "memory_cycles",
    "tile_points",
]
