"""The 7 simulated hardware platforms (DESIGN.md §2/§3).

Each :class:`Platform` is a frozen coefficient set for the analytical
latency models in ``cpu_model``/``gpu_model`` — clock, core count, SIMD
width, cache hierarchy, parallelization overheads, and the conflict /
unroll penalty knobs — mirroring the five CPUs and two GPUs of the
TenSet dataset the paper trains on (Table 5).

Two structural properties matter downstream:

* **ISA families** (``isa``): the four x86 CPUs share one family, the
  ARM Graviton2 and the two CUDA GPUs are their own.  Same-family
  platforms get correlated micro-architectural "quirk" terms (see
  ``measure.quirk_multipliers``) and similar coefficient sets, so
  rankings correlate within a family and drift across families — the
  domain-shift structure Table 9's MTL experiments require.
* **Determinism**: a platform is pure data.  Everything stochastic about
  the simulation flows through named ``repro.utils.rng`` streams keyed
  on (platform, program signature, root seed).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Platform:
    """Coefficients of one simulated device.

    CPU and GPU platforms share the dataclass; the GPU-only fields
    (``lanes_per_sm``, ``max_threads_per_sm``) are zero on CPUs and
    ``cores`` counts SMs on GPUs.  ``cache_kb``/``cache_bw`` describe
    the memory hierarchy small-to-large: for CPUs (L1, L2, L3) with the
    bytes-per-cycle feeding each tile level from the level below it
    (L2→L1, L3→L2, DRAM→L3); for GPUs (shared memory, L2) with
    (L2→shared, DRAM→L2).
    """

    name: str
    isa: str               # "x86" | "aarch64" | "cuda" — the Table 9 family
    vendor: str            # "intel" | "amd" | "arm" | "nvidia"
    target: str            # "cpu" | "gpu" — must match Schedule.target
    freq_ghz: float        # core clock
    cores: int             # physical cores (CPU) / SMs (GPU)
    vector_width: int      # float32 SIMD lanes per op
    flops_per_cycle: float  # scalar f32 FLOPs per core-cycle (FMA/ILP proxy)
    cache_kb: tuple[float, ...]   # capacities, small -> large
    cache_bw: tuple[float, ...]   # bytes/cycle from the next level down
    mem_parallel_scale: float     # how far cores can scale shared bandwidth
    parallel_task_cycles: float   # per-chunk scheduling overhead (CPU fork/join)
    conflict_penalty: float       # per pow2 middle-loop extent (W301 analogue)
    unroll_cap: int               # auto_unroll_max_step beyond this thrashes icache
    unroll_gain: float            # peak speedup fraction from unrolling
    icache_penalty: float         # multiplier slope past unroll_cap
    quirk_isa_scale: float        # shared-within-family quirk magnitude
    quirk_platform_scale: float   # platform-private quirk magnitude
    lanes_per_sm: int = 0         # CUDA cores per SM (GPU only)
    max_threads_per_sm: int = 0   # resident-thread ceiling (GPU only)

    def __post_init__(self) -> None:
        if self.target not in ("cpu", "gpu"):
            raise ValueError(f"platform {self.name!r} has unknown target {self.target!r}")
        if len(self.cache_kb) != len(self.cache_bw):
            raise ValueError(
                f"platform {self.name!r}: cache_kb and cache_bw lengths differ"
            )
        if self.target == "gpu" and (self.lanes_per_sm < 1 or self.max_threads_per_sm < 1):
            raise ValueError(f"GPU platform {self.name!r} needs lanes_per_sm/max_threads_per_sm")


# -- the seven TenSet-like platforms ----------------------------------------
#
# Shapes are stylized from the real parts' datasheets (clocks, core counts,
# SIMD widths, cache sizes); the penalty coefficients are calibrated so the
# paper-shaped properties hold (tests/test_simhw.py): good tiling /
# vectorization / parallelism lower latency, W301 conflicts raise it, and
# rankings correlate within an ISA family but not across (Table 9).

PLATINUM_8272 = Platform(
    name="platinum-8272", isa="x86", vendor="intel", target="cpu",
    freq_ghz=2.6, cores=26, vector_width=16, flops_per_cycle=4.0,
    cache_kb=(32.0, 1024.0, 36608.0), cache_bw=(64.0, 30.0, 12.0),
    mem_parallel_scale=8.0, parallel_task_cycles=2400.0,
    conflict_penalty=0.18, unroll_cap=512, unroll_gain=0.14, icache_penalty=0.20,
    quirk_isa_scale=0.6, quirk_platform_scale=0.045,
)

E5_2673 = Platform(
    name="e5-2673", isa="x86", vendor="intel", target="cpu",
    freq_ghz=2.3, cores=20, vector_width=8, flops_per_cycle=4.0,
    cache_kb=(32.0, 256.0, 51200.0), cache_bw=(48.0, 24.0, 10.0),
    mem_parallel_scale=7.0, parallel_task_cycles=2600.0,
    conflict_penalty=0.16, unroll_cap=512, unroll_gain=0.13, icache_penalty=0.22,
    quirk_isa_scale=0.6, quirk_platform_scale=0.045,
)

I7_10510U = Platform(
    name="i7-10510u", isa="x86", vendor="intel", target="cpu",
    freq_ghz=2.3, cores=4, vector_width=8, flops_per_cycle=4.0,
    cache_kb=(32.0, 256.0, 8192.0), cache_bw=(48.0, 24.0, 8.0),
    mem_parallel_scale=2.0, parallel_task_cycles=1800.0,
    conflict_penalty=0.15, unroll_cap=512, unroll_gain=0.13, icache_penalty=0.22,
    quirk_isa_scale=0.6, quirk_platform_scale=0.05,
)

EPYC_7452 = Platform(
    name="epyc-7452", isa="x86", vendor="amd", target="cpu",
    freq_ghz=2.35, cores=32, vector_width=8, flops_per_cycle=4.0,
    cache_kb=(32.0, 512.0, 131072.0), cache_bw=(48.0, 28.0, 12.0),
    mem_parallel_scale=8.0, parallel_task_cycles=2500.0,
    conflict_penalty=0.10, unroll_cap=512, unroll_gain=0.12, icache_penalty=0.18,
    quirk_isa_scale=0.6, quirk_platform_scale=0.06,
)

GRAVITON2 = Platform(
    name="graviton2", isa="aarch64", vendor="arm", target="cpu",
    freq_ghz=2.5, cores=64, vector_width=4, flops_per_cycle=2.0,
    cache_kb=(64.0, 1024.0, 32768.0), cache_bw=(32.0, 24.0, 10.0),
    mem_parallel_scale=10.0, parallel_task_cycles=2200.0,
    conflict_penalty=0.06, unroll_cap=256, unroll_gain=0.10, icache_penalty=0.30,
    quirk_isa_scale=0.6, quirk_platform_scale=0.05,
)

K80 = Platform(
    name="k80", isa="cuda", vendor="nvidia", target="gpu",
    freq_ghz=0.82, cores=13, vector_width=4, flops_per_cycle=2.0,
    cache_kb=(48.0, 1536.0), cache_bw=(32.0, 16.0),
    mem_parallel_scale=1.0, parallel_task_cycles=0.0,
    conflict_penalty=0.25, unroll_cap=64, unroll_gain=0.10, icache_penalty=0.25,
    quirk_isa_scale=0.6, quirk_platform_scale=0.05,
    lanes_per_sm=192, max_threads_per_sm=2048,
)

T4 = Platform(
    name="t4", isa="cuda", vendor="nvidia", target="gpu",
    freq_ghz=1.59, cores=40, vector_width=4, flops_per_cycle=2.0,
    cache_kb=(64.0, 4096.0), cache_bw=(64.0, 24.0),
    mem_parallel_scale=1.0, parallel_task_cycles=0.0,
    conflict_penalty=0.15, unroll_cap=128, unroll_gain=0.12, icache_penalty=0.20,
    quirk_isa_scale=0.6, quirk_platform_scale=0.05,
    lanes_per_sm=64, max_threads_per_sm=1024,
)

#: All platforms, CPU first — the order Tables 5–9 list them in.
ALL_PLATFORMS: tuple[Platform, ...] = (
    PLATINUM_8272, E5_2673, I7_10510U, EPYC_7452, GRAVITON2, K80, T4,
)
CPU_PLATFORMS: tuple[Platform, ...] = tuple(p for p in ALL_PLATFORMS if p.target == "cpu")
GPU_PLATFORMS: tuple[Platform, ...] = tuple(p for p in ALL_PLATFORMS if p.target == "gpu")

PLATFORMS: dict[str, Platform] = {p.name: p for p in ALL_PLATFORMS}

#: ISA family -> member platform names (the Table 9 grouping).
ISA_FAMILIES: dict[str, tuple[str, ...]] = {}
for _p in ALL_PLATFORMS:
    ISA_FAMILIES[_p.isa] = (*ISA_FAMILIES.get(_p.isa, ()), _p.name)
del _p


def get_platform(platform: "Platform | str") -> Platform:
    """Resolve a platform name (or pass a :class:`Platform` through)."""
    if isinstance(platform, Platform):
        return platform
    resolved = PLATFORMS.get(platform)
    if resolved is None:
        raise KeyError(
            f"unknown platform {platform!r}; available: {sorted(PLATFORMS)}"
        )
    return resolved


__all__ = [
    "ALL_PLATFORMS",
    "CPU_PLATFORMS",
    "E5_2673",
    "EPYC_7452",
    "GPU_PLATFORMS",
    "GRAVITON2",
    "I7_10510U",
    "ISA_FAMILIES",
    "K80",
    "PLATFORMS",
    "PLATINUM_8272",
    "Platform",
    "T4",
    "get_platform",
]
