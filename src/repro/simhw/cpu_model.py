"""Analytical CPU latency: vectorization, parallelization, conflicts.

Consumes :class:`repro.simhw.cache.NestFeatures` built from
``Schedule.apply`` output and a :class:`repro.simhw.platform.Platform`,
and returns per-nest seconds (before the deterministic quirk term that
``repro.simhw.measure`` applies).  Every term is vectorized over the
batch; nothing here walks Python loop objects.

The model is deliberately simple but *schedule-sensitive* in exactly the
ways the paper needs (DESIGN.md §2): latency improves with an innermost
vectorized loop near the SIMD width, an outermost parallel loop whose
extent divides the core count, multi-level tiles that fit the cache
hierarchy, and moderate unrolling — and degrades with power-of-two
middle-loop extents (the W301 conflict smell), over-unrolling past the
platform's icache cap, padding, and misplaced annotations.
"""

from __future__ import annotations

import numpy as np

from repro.simhw.cache import (
    K_PARALLEL,
    K_UNROLLED,
    K_VECTORIZED,
    NestFeatures,
    memory_cycles,
)
from repro.simhw.cache import conflict_counts as _conflict_counts
from repro.simhw.platform import Platform

#: Efficiency of vector ops narrower than the machine width (masked lanes).
SHORT_VEC_EFF: float = 0.85
#: Fraction of the vector speedup retained per loop level separating the
#: vectorized loop from the innermost position (strided access decay).
VEC_POS_DECAY: float = 0.35
#: Fraction of the parallel speedup retained per level separating the
#: parallel loop from the outermost position.
PAR_POS_DECAY: float = 0.5
#: Vectorized reductions keep this fraction of the speedup (horizontal adds).
RED_VEC_EFF: float = 0.6
#: Per-``unroll`` annotation compute discount.
UNROLL_ANNOTATION_GAIN: float = 0.04
#: Compute+memory multiplier for compute-inlined (fused-away) stages.
INLINE_DISCOUNT: float = 0.35
#: rfactor turns a serial reduction tail into a parallel one.
RFACTOR_GAIN: float = 0.96


def _innermost_of(features: NestFeatures, code: int) -> tuple[np.ndarray, np.ndarray]:
    """(column, present) of the innermost loop with the given kind code."""
    d = features.kinds.shape[1]
    cols = np.arange(d)
    mask = features.kinds == code
    j = np.where(mask, cols[None, :], -1).max(axis=1)
    return j, j >= 0


def vector_speedup(features: NestFeatures, platform: Platform) -> np.ndarray:
    """Effective SIMD speedup per nest, >= 1."""
    j, present = _innermost_of(features, K_VECTORIZED)
    rows = np.arange(features.n)
    j_safe = np.maximum(j, 0)
    v = features.extents[rows, j_safe]
    is_red = features.is_reduction[rows, j_safe]
    w = np.float32(platform.vector_width)
    # v/ceil(v/w): w-lane ops with tail underutilization; short vectors run
    # masked at SHORT_VEC_EFF of their own width.
    s = v / np.ceil(v / w)
    s = np.where(v < w, v * np.float32(SHORT_VEC_EFF), s)
    s = np.where(is_red, np.float32(1.0) + (s - np.float32(1.0)) * np.float32(RED_VEC_EFF), s)
    # Vectorizing anything but the innermost loop strides memory: decay the
    # benefit per level separating it from the innermost position.
    d = features.kinds.shape[1]
    dist = (d - 1 - j_safe).astype(np.float32)
    s = np.float32(1.0) + (s - np.float32(1.0)) * np.float32(VEC_POS_DECAY) ** dist
    return np.where(present, np.maximum(s, np.float32(1.0)), np.float32(1.0))


def parallel_speedup(
    features: NestFeatures, platform: Platform
) -> tuple[np.ndarray, np.ndarray]:
    """(effective parallel speedup >= 1, scheduling-overhead cycles)."""
    d = features.kinds.shape[1]
    cols = np.arange(d)
    mask = features.kinds == K_PARALLEL
    present = mask.any(axis=1)
    p = np.where(mask, features.extents, np.float32(1.0)).prod(axis=1, dtype=np.float32)
    # Round-robin imbalance: p chunks over c cores take ceil(p/c) waves.
    c = np.float32(platform.cores)
    waves = np.ceil(p / c)
    s = p / waves
    # The parallel loop should be outermost; decay per level it sits inside.
    j_par = np.where(mask, cols[None, :], d).min(axis=1)
    outer_col = d - features.depth
    dist = np.maximum(j_par - outer_col, 0).astype(np.float32)
    s = np.float32(1.0) + (s - np.float32(1.0)) * np.float32(PAR_POS_DECAY) ** dist
    s = np.where(present, np.maximum(s, np.float32(1.0)), np.float32(1.0))
    overhead = np.where(
        present, p * np.float32(platform.parallel_task_cycles), np.float32(0.0)
    )
    return s, overhead


def unroll_multiplier(features: NestFeatures, platform: Platform) -> np.ndarray:
    """Compute-cycle multiplier from unroll pragmas/annotations (<= or > 1)."""
    u = features.unroll_step
    gain = np.float32(platform.unroll_gain) * u / (u + np.float32(32.0))
    mult = np.float32(1.0) - gain
    over = u > np.float32(platform.unroll_cap)
    icache = np.float32(1.0) + np.float32(platform.icache_penalty) * np.log2(
        np.maximum(u, np.float32(1.0)) / np.float32(platform.unroll_cap) + np.float32(1.0)
    )
    mult = mult * np.where(over, icache, np.float32(1.0))
    n_unroll_ann = (features.kinds == K_UNROLLED).sum(axis=1).astype(np.float32)
    mult = mult * (np.float32(1.0) - np.float32(UNROLL_ANNOTATION_GAIN)) ** n_unroll_ann
    return mult


def _conflict_factor(features: NestFeatures, platform: Platform) -> np.ndarray:
    """Latency multiplier from power-of-two middle-loop extents.

    The DESIGN.md §6 tile-extent conflict term: each large pow2 middle
    extent aliases cache sets, multiplying latency by
    ``1 + conflict_penalty``.  A fixed feature summary cannot see
    per-loop extents; the primitive sequence can — the paper's premise.
    """
    n_conf = _conflict_counts(features)
    return (np.float32(1.0) + np.float32(platform.conflict_penalty)) ** n_conf


def latency_seconds(
    features: NestFeatures, platform: Platform
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Per-nest latency in seconds plus the term breakdown.

    ``latency = (compute/vec/unroll + memory) / parallel + overhead``,
    scaled by the conflict factor and the platform clock.  Memory
    parallelism saturates at ``mem_parallel_scale`` (shared bandwidth).
    """
    if platform.target != "cpu":
        raise ValueError(f"cpu_model got non-CPU platform {platform.name!r}")
    work = features.padded_points * features.flops_per_point
    compute = work / np.float32(platform.flops_per_cycle)
    compute = compute / vector_speedup(features, platform)
    compute = compute * unroll_multiplier(features, platform)

    mem = memory_cycles(features, platform)
    par, overhead = parallel_speedup(features, platform)
    mem_par = np.minimum(par, np.float32(platform.mem_parallel_scale))

    conflict = _conflict_factor(features, platform)
    cycles = compute / par + mem / mem_par + overhead
    cycles = cycles * conflict
    cycles = cycles * np.where(features.rfactored, np.float32(RFACTOR_GAIN), np.float32(1.0))
    cycles = cycles * np.where(features.inlined, np.float32(INLINE_DISCOUNT), np.float32(1.0))

    seconds = cycles / np.float32(platform.freq_ghz * 1e9)
    breakdown = {
        "compute_cycles": compute,
        "memory_cycles": mem,
        "overhead_cycles": overhead,
        "parallel_speedup": par,
        "conflict_factor": conflict,
    }
    return seconds.astype(np.float32), breakdown


__all__ = [
    "INLINE_DISCOUNT",
    "PAR_POS_DECAY",
    "RED_VEC_EFF",
    "RFACTOR_GAIN",
    "SHORT_VEC_EFF",
    "UNROLL_ANNOTATION_GAIN",
    "VEC_POS_DECAY",
    "latency_seconds",
    "parallel_speedup",
    "unroll_multiplier",
    "vector_speedup",
]
