"""Analytical GPU latency: occupancy, warp efficiency, bank conflicts.

The GPU counterpart of ``cpu_model``: consumes the same
:class:`repro.simhw.cache.NestFeatures` batch and a CUDA
:class:`~repro.simhw.platform.Platform`, returning per-nest seconds
before the quirk term.  Thread geometry comes from the ``bind.*``
annotations the schedule applied: ``blockIdx.*`` extents form the grid,
``threadIdx.*``/``vthread`` extents the block.

Schedule sensitivity mirrors real CUDA folklore: warp-aligned block
sizes (multiples of 32) beat ragged ones, occupancy saturates the SMs,
power-of-two middle-loop extents hit shared-memory bank conflicts (the
same W301 smell the CPU model punishes as cache-set aliasing), and an
innermost vectorized loop stands in for coalesced/vector loads.
"""

from __future__ import annotations

import numpy as np

from repro.simhw.cache import (
    K_VECTORIZED,
    TAG_BLOCK,
    TAG_THREAD,
    TAG_VTHREAD,
    NestFeatures,
    memory_cycles,
)
from repro.simhw.cache import conflict_counts as _conflict_counts
from repro.simhw.platform import Platform

#: Warp width of every simulated CUDA platform.
WARP: float = 32.0
#: Occupancy at which latency hiding reaches half effectiveness.
OCCUPANCY_HALF: float = 0.25
#: Per-block scheduling overhead (cycles).
BLOCK_OVERHEAD_CYCLES: float = 600.0
#: Kernel-launch floor (cycles).
LAUNCH_CYCLES: float = 4000.0
#: Max speedup from an innermost vectorized loop (ld.global.v4 proxy).
VEC_LOAD_GAIN: float = 0.45


def thread_geometry(features: NestFeatures) -> tuple[np.ndarray, np.ndarray]:
    """(grid blocks, threads per block) from the bound-loop extents."""
    block_mask = features.tags == TAG_BLOCK
    thread_mask = (features.tags == TAG_THREAD) | (features.tags == TAG_VTHREAD)
    grid = np.where(block_mask, features.extents, np.float32(1.0)).prod(
        axis=1, dtype=np.float32
    )
    tpb = np.where(thread_mask, features.extents, np.float32(1.0)).prod(
        axis=1, dtype=np.float32
    )
    return grid, tpb


def occupancy_efficiency(
    grid: np.ndarray, tpb: np.ndarray, platform: Platform
) -> tuple[np.ndarray, np.ndarray]:
    """(warp utilization, occupancy-saturation efficiency), each in (0, 1]."""
    warp_util = tpb / (np.ceil(tpb / np.float32(WARP)) * np.float32(WARP))
    device_threads = np.float32(platform.cores * platform.max_threads_per_sm)
    concurrent = np.minimum(grid * tpb, device_threads)
    util = concurrent / device_threads
    occ_half = np.float32(OCCUPANCY_HALF)
    occ_eff = util * (np.float32(1.0) + occ_half) / (util + occ_half)
    return warp_util.astype(np.float32), occ_eff.astype(np.float32)


def _vector_load_speedup(features: NestFeatures) -> np.ndarray:
    """Innermost vectorized loop as a coalesced/vector-load proxy."""
    d = features.kinds.shape[1]
    innermost_vec = features.kinds[:, d - 1] == K_VECTORIZED
    v = np.minimum(features.extents[:, d - 1], np.float32(4.0))
    gain = np.float32(1.0) + np.float32(VEC_LOAD_GAIN) * (v - np.float32(1.0)) / np.float32(3.0)
    return np.where(innermost_vec, gain, np.float32(1.0))


def bank_conflict_factor(features: NestFeatures, platform: Platform) -> np.ndarray:
    """Shared-memory bank-conflict analogue of the CPU cache-set term."""
    n_conf = _conflict_counts(features)
    return (np.float32(1.0) + np.float32(platform.conflict_penalty)) ** n_conf


def latency_seconds(
    features: NestFeatures, platform: Platform
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Per-nest latency in seconds plus the term breakdown."""
    if platform.target != "gpu":
        raise ValueError(f"gpu_model got non-GPU platform {platform.name!r}")
    grid, tpb = thread_geometry(features)
    warp_util, occ_eff = occupancy_efficiency(grid, tpb, platform)

    work = features.padded_points * features.flops_per_point
    lanes = np.float32(platform.cores * platform.lanes_per_sm)
    throughput = np.maximum(
        lanes * warp_util * occ_eff * _vector_load_speedup(features), np.float32(1.0)
    )
    compute = work / np.float32(platform.flops_per_cycle) / throughput

    # Device-wide bandwidth: cache_bw is already whole-chip bytes/cycle, so
    # memory cycles shrink only through occupancy (more in-flight requests).
    mem = memory_cycles(features, platform) / np.maximum(occ_eff, np.float32(1e-3))
    overhead = np.float32(LAUNCH_CYCLES) + grid * np.float32(BLOCK_OVERHEAD_CYCLES) / np.maximum(
        np.float32(platform.cores), np.float32(1.0)
    )

    conflict = bank_conflict_factor(features, platform)
    cycles = (compute + mem + overhead) * conflict
    cycles = cycles * np.where(features.inlined, np.float32(0.35), np.float32(1.0))

    seconds = cycles / np.float32(platform.freq_ghz * 1e9)
    breakdown = {
        "compute_cycles": compute,
        "memory_cycles": mem,
        "overhead_cycles": overhead,
        "parallel_speedup": grid * tpb,
        "conflict_factor": conflict,
    }
    return seconds.astype(np.float32), breakdown


__all__ = [
    "BLOCK_OVERHEAD_CYCLES",
    "LAUNCH_CYCLES",
    "OCCUPANCY_HALF",
    "VEC_LOAD_GAIN",
    "WARP",
    "bank_conflict_factor",
    "latency_seconds",
    "occupancy_efficiency",
    "thread_geometry",
]
