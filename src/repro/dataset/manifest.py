"""The dataset manifest — the store's single source of truth.

``manifest.json`` makes a shard store self-describing and restartable:
it records the full :class:`~repro.dataset.spec.DatasetSpec`, the record
geometry, the fitted featurizer vocabulary (so a resume can prove it
re-derived the identical featurizer), the task table, per-batch
sequence-length statistics (the Fig. 6 shape), and one
``(name, n_records, digest)`` entry per completed shard.

Two invariants the tests pin:

* **Pure function of (spec, progress).**  No wall-clock timestamps, no
  hostnames, sorted JSON keys — an interrupted-then-resumed build ends
  with a manifest *byte-identical* to an uninterrupted one.
* **Completed shards form a prefix.**  Shards are journaled in row
  order, one save per completed shard (atomic tmp+rename), so after a
  crash the manifest's shard list is exactly the durable prefix and the
  resume point is ``sum(n_records)``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.dataset.shards import ShardSchema, shard_name
from repro.dataset.spec import DatasetSpec

MANIFEST_VERSION = 1
MANIFEST_FILENAME = "manifest.json"

STATUS_BUILDING = "building"
STATUS_COMPLETE = "complete"


@dataclass(frozen=True)
class ShardRecord:
    """One completed shard: name, row count, content digest."""

    index: int
    n_records: int
    digest: str

    @property
    def name(self) -> str:
        return shard_name(self.index)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "index": self.index,
            "n_records": self.n_records,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ShardRecord":
        return cls(index=int(d["index"]), n_records=int(d["n_records"]), digest=d["digest"])


def vocab_digest(vocab: dict[str, int]) -> str:
    """Stable digest of a fitted featurizer vocabulary."""
    payload = json.dumps(sorted(vocab.items()), separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class Manifest:
    """Everything needed to reproduce, resume, and read one store."""

    spec: DatasetSpec
    schema: ShardSchema
    vocab: dict[str, int]
    tasks: list[dict]            # [{"task_id", "network", "subgraph", "split"}]
    total_records: int
    shards: list[ShardRecord] = field(default_factory=list)
    #: Per-batch sequence-length stats keyed by ``BatchPlan.key``
    #: ("task0003.cpu"): {"n", "min_len", "max_len", "mean_len", "hist"}.
    batch_stats: dict[str, dict] = field(default_factory=dict)
    status: str = STATUS_BUILDING
    #: Fig. 6-style aggregate, filled in when the build completes.
    stats: "dict | None" = None
    version: int = MANIFEST_VERSION

    # -- progress --------------------------------------------------------

    def records_done(self) -> int:
        return sum(s.n_records for s in self.shards)

    @property
    def complete(self) -> bool:
        return self.status == STATUS_COMPLETE

    def store_digest(self) -> str:
        """Digest of the whole store: the shard digests, in order."""
        digest = hashlib.sha256()
        for s in self.shards:
            digest.update(f"{s.name}:{s.n_records}:{s.digest}\n".encode("utf-8"))
        return digest.hexdigest()

    def network_of_task(self, task_id: int) -> str:
        return self.tasks[task_id]["network"]

    def split_of_task(self, task_id: int) -> str:
        return self.tasks[task_id]["split"]

    # -- aggregate statistics -------------------------------------------

    def finalize_stats(self) -> None:
        """Fold the per-batch stats into the Fig. 6 aggregate and mark
        the store complete."""
        hist: dict[int, int] = {}
        per_network: dict[str, dict[str, float]] = {}
        for key in sorted(self.batch_stats):
            entry = self.batch_stats[key]
            task_id = int(key.split(".")[0][len("task"):])
            net = self.network_of_task(task_id)
            agg = per_network.setdefault(net, {"sequences": 0, "length_sum": 0})
            agg["sequences"] += entry["n"]
            for length_str, count in entry["hist"].items():
                hist[int(length_str)] = hist.get(int(length_str), 0) + count
                agg["length_sum"] += int(length_str) * count
        total = sum(hist.values())
        mode = max(sorted(hist), key=lambda k: hist[k]) if hist else 0
        self.stats = {
            "sequences": total,
            "length_hist": {str(k): hist[k] for k in sorted(hist)},
            "min_len": min(hist) if hist else 0,
            "max_len": max(hist) if hist else 0,
            "mean_len": round(
                sum(k * v for k, v in hist.items()) / total, 6
            ) if total else 0.0,
            "mode_len": mode,
            "per_network": {
                net: {
                    "sequences": agg["sequences"],
                    "mean_len": round(agg["length_sum"] / agg["sequences"], 6)
                    if agg["sequences"] else 0.0,
                }
                for net, agg in sorted(per_network.items())
            },
            "records": {
                "total": self.total_records,
                "train": sum(
                    self.batch_rows(key)
                    for key in self.batch_stats
                    if self.split_of_task(int(key.split(".")[0][len("task"):])) == "train"
                ),
                "holdout": sum(
                    self.batch_rows(key)
                    for key in self.batch_stats
                    if self.split_of_task(int(key.split(".")[0][len("task"):])) == "holdout"
                ),
            },
        }
        self.status = STATUS_COMPLETE

    def batch_rows(self, key: str) -> int:
        """Record rows one batch contributed (candidates x its platforms)."""
        target = key.split(".")[1]
        return self.batch_stats[key]["n"] * len(self.spec.platform_ids_for_target(target))

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "status": self.status,
            "spec": self.spec.to_dict(),
            "schema": self.schema.to_dict(),
            "vocab": self.vocab,
            "vocab_digest": vocab_digest(self.vocab),
            "tasks": self.tasks,
            "total_records": self.total_records,
            "shards": [s.to_dict() for s in self.shards],
            "batch_stats": self.batch_stats,
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Manifest":
        if d.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {d.get('version')!r} != supported {MANIFEST_VERSION}"
            )
        recorded = d.get("vocab_digest")
        actual = vocab_digest(d["vocab"])
        if recorded != actual:
            raise ValueError(
                f"manifest vocab digest mismatch: recorded {recorded!r}, actual {actual!r}"
            )
        return cls(
            spec=DatasetSpec.from_dict(d["spec"]),
            schema=ShardSchema.from_dict(d["schema"]),
            vocab=dict(d["vocab"]),
            tasks=list(d["tasks"]),
            total_records=int(d["total_records"]),
            shards=[ShardRecord.from_dict(s) for s in d["shards"]],
            batch_stats=dict(d["batch_stats"]),
            status=d["status"],
            stats=d.get("stats"),
            version=int(d["version"]),
        )

    def save(self, store_dir: Path) -> Path:
        """Atomically (tmp + rename) write ``manifest.json``.

        Serialization is canonical — sorted keys, fixed separators — so
        equal manifests are equal bytes.
        """
        path = Path(store_dir) / MANIFEST_FILENAME
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, store_dir: Path) -> "Manifest":
        path = Path(store_dir) / MANIFEST_FILENAME
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_VERSION",
    "Manifest",
    "STATUS_BUILDING",
    "STATUS_COMPLETE",
    "ShardRecord",
    "vocab_digest",
]
