"""TenSet-scale streaming dataset factory (ROADMAP item 1).

Turns ``(network-pool spec, platforms, root seed)`` into a columnar,
memory-mapped, bit-reproducible shard store of TLP training records —
featurized ``[N, seq_len, emb]`` planes, absint static-profile planes,
simulated latencies, per-task ``min_latency/latency`` labels, and
``(task_id, platform_id, candidate, seed)`` provenance — plus a JSON
manifest that makes the store resumable from ``(manifest, root seed)``
after a crash mid-shard.

* ``spec``     — :class:`DatasetSpec` and the deterministic row plan.
* ``pipeline`` — :func:`build_dataset`, the single-pass generation hot
  path (``make smoke-dataset`` runs its 2-platform smoke).
* ``shards``   — fixed-size columnar ``.npy`` shard format + writer.
* ``manifest`` — the journaled store description.
* ``reader``   — :class:`ShardReader`, the ``BatchLoader``-compatible
  zero-copy training view.
"""

from repro.dataset.manifest import Manifest, ShardRecord
from repro.dataset.pipeline import DatasetError, build_dataset, fit_featurizer, smoke_spec
from repro.dataset.reader import ShardReader, Subset
from repro.dataset.shards import COLUMN_NAMES, ShardSchema, ShardWriter
from repro.dataset.spec import (
    BatchPlan,
    DatasetSpec,
    Task,
    enumerate_tasks,
    plan_batches,
    total_records,
)

__all__ = [
    "BatchPlan",
    "COLUMN_NAMES",
    "DatasetError",
    "DatasetSpec",
    "Manifest",
    "ShardReader",
    "ShardRecord",
    "ShardSchema",
    "ShardWriter",
    "Subset",
    "Task",
    "build_dataset",
    "enumerate_tasks",
    "fit_featurizer",
    "plan_batches",
    "smoke_spec",
    "total_records",
]
