"""Zero-copy reading of a shard store for training.

:class:`ShardReader` memory-maps shard columns on first touch and
implements the ``repro.nn.data.RecordSource`` protocol — ``__len__``
plus batched ``__getitem__(indices) -> (X, mask, label)`` — so
``BatchLoader(ShardReader(store))`` iterates a multi-gigabyte store one
minibatch at a time without ever materializing an epoch.  Gathers copy
exactly the requested rows out of the maps (training mutates nothing in
the store), and round-trip exactness is pinned by test:
``reader[i]``'s planes are bit-identical to the ``transform`` output
the pipeline wrote.

Network-level holdout comes from the manifest: every record carries its
``task_id``, tasks carry their network, and the spec names the held-out
networks, so :meth:`split_indices` / :meth:`subset` give
loader-compatible train/holdout views without touching the wide columns.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.dataset.manifest import Manifest
from repro.dataset.shards import COLUMN_NAMES, load_shard_column

#: What a default gather returns, in order — the loader-facing triple.
DEFAULT_COLUMNS: tuple[str, ...] = ("X", "mask", "label")


class Subset:
    """A record-source view of a reader restricted to fixed global rows."""

    def __init__(self, reader: "ShardReader", indices: np.ndarray):
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        n = len(reader)
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise IndexError(f"subset indices out of range for {n} records")
        self.reader = reader
        self.indices = indices

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    def __getitem__(self, indices) -> tuple[np.ndarray, ...]:
        return self.reader[self.indices[np.asarray(indices)]]


class ShardReader:
    """Lazily memory-mapped, batch-indexable view of one shard store."""

    def __init__(self, store_dir: "Path | str", *, columns: Sequence[str] = DEFAULT_COLUMNS):
        self.store_dir = Path(store_dir)
        self.manifest = Manifest.load(self.store_dir)
        unknown = [c for c in columns if c not in COLUMN_NAMES]
        if unknown:
            raise ValueError(f"unknown columns {unknown}; available: {COLUMN_NAMES}")
        self.columns = tuple(columns)
        counts = [s.n_records for s in self.manifest.shards]
        #: Global row offset where each shard starts (+ total at the end).
        self.offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        ) if counts else np.zeros(1, dtype=np.int64)
        self._maps: dict[tuple[int, str], np.ndarray] = {}
        #: Concatenated narrow provenance columns, built once on demand —
        #: repeated split_indices()/task_ids() calls stay O(1) in I/O.
        self._narrow: dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return int(self.offsets[-1])

    @property
    def n_shards(self) -> int:
        return len(self.manifest.shards)

    def _column(self, shard: int, name: str) -> np.ndarray:
        key = (shard, name)
        arr = self._maps.get(key)
        if arr is None:
            arr = load_shard_column(self.store_dir, shard, name)
            self._maps[key] = arr
        return arr

    # -- gathering -------------------------------------------------------

    def gather(
        self,
        indices,
        columns: "Sequence[str] | None" = None,
        *,
        out: "Sequence[np.ndarray] | None" = None,
    ) -> tuple[np.ndarray, ...]:
        """Copy the requested rows for each column, preserving order.

        Rows are grouped per shard so each memory map is touched once
        per call; the output order is exactly ``indices`` order, which
        is what keeps ``BatchLoader`` epochs bit-reproducible no matter
        how records landed in shards.

        ``out`` supplies one preallocated destination per column (exact
        shape and dtype required) so a hot training loop can gather into
        ``ScratchArena``-pooled buffers instead of allocating per batch;
        the filled buffers are returned.
        """
        names = self.columns if columns is None else tuple(columns)
        indices = np.asarray(indices)
        if indices.ndim == 0:
            indices = indices.reshape(1)
        indices = indices.astype(np.int64, copy=False)
        n = len(self)
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise IndexError(f"record index out of range for {n} records")
        shard_of = np.searchsorted(self.offsets, indices, side="right") - 1
        schema_cols = self.manifest.schema.columns()
        out_list: list[np.ndarray] = []
        if out is not None and len(out) != len(names):
            raise ValueError(f"out has {len(out)} buffers for {len(names)} columns")
        for col, name in enumerate(names):
            dtype, trailing = schema_cols[name]
            shape = (indices.shape[0], *trailing)
            if out is None:
                out_list.append(np.empty(shape, dtype=dtype))
            else:
                buf = out[col]
                if buf.shape != shape or buf.dtype != np.dtype(dtype):
                    raise ValueError(
                        f"out buffer for {name!r}: got {buf.dtype}{buf.shape}, "
                        f"need {np.dtype(dtype)}{shape}"
                    )
                out_list.append(buf)
        out = out_list
        for shard in np.unique(shard_of):
            where = np.nonzero(shard_of == shard)[0]
            local = indices[where] - self.offsets[shard]
            for col, name in enumerate(names):
                out[col][where] = self._column(int(shard), name)[local]
        return tuple(out)

    def __getitem__(self, indices) -> tuple[np.ndarray, ...]:
        """Batch gather of the reader's default columns (RecordSource)."""
        return self.gather(indices)

    def record(self, index: int) -> dict[str, np.ndarray]:
        """One full record, every column, as a dict (debug/provenance)."""
        values = self.gather(np.asarray([index]), columns=COLUMN_NAMES)
        return {name: value[0] for name, value in zip(COLUMN_NAMES, values)}

    # -- splits ----------------------------------------------------------

    def _narrow_column(self, name: str) -> np.ndarray:
        """Memoized concatenation of one narrow per-record column.

        Built once per reader (one load per shard) and cached; splits,
        grouping and filtering all index into the same array, so
        repeated ``split_indices`` calls are O(1) in shard I/O.
        """
        cached = self._narrow.get(name)
        if cached is None:
            dtype, trailing = self.manifest.schema.columns()[name]
            if trailing:
                raise ValueError(f"{name!r} is not a narrow per-record column")
            if not self.n_shards:
                cached = np.empty(0, dtype=dtype)
            else:
                cached = np.concatenate(
                    [np.asarray(self._column(s, name)) for s in range(self.n_shards)]
                )
            self._narrow[name] = cached
        return cached

    def task_ids(self) -> np.ndarray:
        """Per-record task id (int32 [N]) — memoized; do not mutate."""
        return self._narrow_column("task_id")

    def platform_ids(self) -> np.ndarray:
        """Per-record platform index (int16 [N]) — memoized; do not mutate."""
        return self._narrow_column("platform_id")

    def split_indices(self, split: str) -> np.ndarray:
        """Global record indices of one side of the network-level split."""
        if split not in ("train", "holdout"):
            raise ValueError(f"unknown split {split!r}, expected 'train' or 'holdout'")
        task_split = np.asarray(
            [t["split"] == split for t in self.manifest.tasks], dtype=bool
        )
        return np.nonzero(task_split[self.task_ids()])[0].astype(np.int64)

    def subset(self, indices) -> Subset:
        """A loader-compatible view restricted to the given global rows."""
        return Subset(self, indices)


__all__ = ["DEFAULT_COLUMNS", "ShardReader", "Subset"]
