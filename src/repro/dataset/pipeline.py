"""The streaming dataset factory: (spec, root seed) -> columnar shard store.

One single pass per (task, target) batch does all the work the TenSet
pipeline spreads over a measurement farm:

1. **Generate** — ``SketchGenerator.generate_many`` samples the task's
   candidate schedules from a batch-private named rng stream
   (``spec.candidate_stream``), verified fail-closed in one pass.
2. **Profile** — ``repro.analysis.absint.profile`` abstractly interprets
   each sequence *once*, yielding both the static feature plane and the
   concrete loop nest (``StaticProfile.to_nest()``), so schedules are
   never applied a second time for measurement.
3. **Featurize** — ``TLPFeaturizer.transform_into`` writes the
   ``[C, seq_len, emb]`` TLP planes straight into one preallocated batch
   buffer (zero steady-state tensor allocations; the featurizer's memo
   is cleared between batches so memory stays flat).
4. **Measure** — the nests are flattened once (``NestFeatures``) and
   priced on *every* spec platform of the batch's target with the
   vectorized ``simhw`` cost models + deterministic quirk streams —
   bit-identical to ``measure_many``, but the generation/profiling/
   featurization cost is amortized across all same-target platforms.
5. **Label + stream out** — per-(task, platform) ``min_latency/latency``
   labels, then rows stream into the :class:`ShardWriter`, which
   journals every completed shard into the manifest.

Peak memory is one candidate batch plus one shard, independent of the
dataset size; throughput on one core is >= 5K records/s end-to-end
(``BENCH_dataset.json``).  The whole store — shard bytes *and* manifest
bytes — is a pure function of ``(spec, root seed)``, resumable from the
manifest after a crash mid-shard.

``python -m repro.dataset.pipeline`` runs the 2-platform smoke wired
into ``make check`` (``make smoke-dataset``).
"""

from __future__ import annotations

import shutil
from pathlib import Path

import numpy as np

from repro.analysis.absint import STATIC_FEATURE_NAMES, profile
from repro.core.extractor import TLPFeaturizer
from repro.core.postprocess import PostprocessConfig
from repro.dataset.manifest import (
    MANIFEST_FILENAME,
    Manifest,
    ShardRecord,
    vocab_digest,
)
from repro.dataset.shards import (
    SHARD_PREFIX,
    ShardSchema,
    ShardWriter,
    TMP_SUFFIX,
    clean_tmp_dirs,
    verify_shard,
)
from repro.dataset.spec import (
    BatchPlan,
    DatasetSpec,
    Task,
    candidate_stream,
    enumerate_tasks,
    fit_stream,
    plan_batches,
    total_records,
)
from repro.simhw import cpu_model, gpu_model
from repro.simhw.cache import NestFeatures
from repro.simhw.measure import labels_from_latencies, quirk_multipliers
from repro.simhw.platform import get_platform
from repro.tensorir.sketch import SketchConfig, SketchGenerator, TARGETS
from repro.utils.rng import seed_for, stream

#: Calibration sequences per (task, target) for the featurizer fit.
FIT_SAMPLE_PER_TASK = 16


class DatasetError(RuntimeError):
    """A store is inconsistent with its spec/manifest, or misused."""


class _BuildStopped(Exception):
    """Internal: ``stop_after_shards`` reached (crash-simulation hook)."""


def _generators(spec: DatasetSpec) -> dict[str, SketchGenerator]:
    return {
        target: SketchGenerator(SketchConfig(target))
        for target in TARGETS
        if spec.platform_ids_for_target(target)
    }


def fit_featurizer(spec: DatasetSpec) -> TLPFeaturizer:
    """The store's featurizer: fitted on a deterministic calibration
    sample (``FIT_SAMPLE_PER_TASK`` sequences per task x target, from
    dedicated rng streams), so a resume re-derives it exactly —
    ``manifest.vocab_digest`` pins that."""
    generators = _generators(spec)
    corpus = []
    for task in enumerate_tasks(spec):
        for target in sorted(generators):
            corpus.extend(
                generators[target].generate_many(
                    task.subgraph,
                    FIT_SAMPLE_PER_TASK,
                    stream(fit_stream(spec, task, target), spec.root_seed),
                )
            )
    featurizer = TLPFeaturizer(cache_size=0)
    featurizer.fit(corpus)
    return featurizer


def _task_table(spec: DatasetSpec) -> list[dict]:
    return [
        {
            "task_id": t.task_id,
            "network": t.network,
            "subgraph": t.subgraph.name,
            "split": spec.split_of(t.network),
        }
        for t in enumerate_tasks(spec)
    ]


def _length_stats(tasks_lengths: list[int]) -> dict:
    hist: dict[int, int] = {}
    for length in tasks_lengths:
        hist[length] = hist.get(length, 0) + 1
    return {
        "n": len(tasks_lengths),
        "min_len": min(tasks_lengths),
        "max_len": max(tasks_lengths),
        "mean_len": round(sum(tasks_lengths) / len(tasks_lengths), 6),
        "hist": {str(k): hist[k] for k in sorted(hist)},
    }


def _validate_resume(
    spec: DatasetSpec,
    store_dir: Path,
    schema: ShardSchema,
    vocab: dict[str, int],
    verify: str,
) -> tuple[list[ShardRecord], dict[str, dict]]:
    """Load the old manifest, keep the longest intact shard prefix, and
    delete everything after it (including unjournaled/partial shards)."""
    old = Manifest.load(store_dir)
    if old.spec.to_dict() != spec.to_dict():
        raise DatasetError(
            f"resume spec mismatch: store at {store_dir} was built from a different spec"
        )
    if old.schema != schema:
        raise DatasetError("resume geometry mismatch: record schema changed")
    if vocab_digest(old.vocab) != vocab_digest(vocab):
        raise DatasetError(
            "resume vocab mismatch: refit featurizer disagrees with the manifest "
            "(network pools or sampler changed under the store)"
        )
    kept: list[ShardRecord] = []
    for i, rec in enumerate(old.shards):
        if rec.index != i:
            raise DatasetError(f"manifest shard list is not a prefix at index {i}")
        if not verify_shard(
            store_dir, rec.index, rec.n_records, rec.digest, schema, level=verify
        ):
            break
        kept.append(rec)
    # Everything past the intact prefix is recomputed, so stale shard
    # directories there (journaled-but-corrupt, or completed-but-never-
    # journaled) must go; the writer would otherwise rename over them
    # anyway, but a clean floor makes the invariant visible.
    for path in sorted(store_dir.glob(f"{SHARD_PREFIX}*")):
        if not path.is_dir() or path.name.endswith(TMP_SUFFIX):
            continue
        index = int(path.name[len(SHARD_PREFIX):])
        if index >= len(kept):
            shutil.rmtree(path)
    return kept, dict(old.batch_stats)


def build_dataset(
    spec: DatasetSpec,
    store_dir: "Path | str",
    *,
    resume: bool = False,
    verify: str = "shape",
    stop_after_shards: "int | None" = None,
) -> Manifest:
    """Build (or resume) the shard store for ``spec`` under ``store_dir``.

    Returns the manifest — ``status == "complete"`` unless
    ``stop_after_shards`` stopped the build early (the crash-simulation
    hook the resume tests use; real crashes behave identically because
    every completed shard + manifest save is atomic and ordered).

    ``verify`` controls how hard a resume checks the shards it keeps:
    ``"shape"`` (headers only, default) or ``"digest"`` (full re-hash).
    """
    store_dir = Path(store_dir)
    store_dir.mkdir(parents=True, exist_ok=True)
    manifest_exists = (store_dir / MANIFEST_FILENAME).exists()
    if manifest_exists and not resume:
        raise DatasetError(
            f"{store_dir} already holds a store; pass resume=True to continue it"
        )

    cfg = PostprocessConfig()
    schema = ShardSchema(
        seq_len=cfg.seq_len, emb=cfg.emb, static_width=len(STATIC_FEATURE_NAMES)
    )
    featurizer = fit_featurizer(spec)
    vocab = dict(featurizer.vocab_)

    clean_tmp_dirs(store_dir)
    if resume and manifest_exists:
        kept, batch_stats = _validate_resume(spec, store_dir, schema, vocab, verify)
    else:
        kept, batch_stats = [], {}

    total = total_records(spec)
    manifest = Manifest(
        spec=spec,
        schema=schema,
        vocab=vocab,
        tasks=_task_table(spec),
        total_records=total,
        shards=kept,
        batch_stats=batch_stats,
        status="building",
    )
    manifest.save(store_dir)
    resume_row = manifest.records_done()

    def on_shard(index: int, n: int, digest: str) -> None:
        manifest.shards.append(ShardRecord(index=index, n_records=n, digest=digest))
        manifest.save(store_dir)
        if stop_after_shards is not None and len(manifest.shards) >= stop_after_shards:
            raise _BuildStopped

    writer = ShardWriter(
        store_dir,
        schema,
        spec.shard_size,
        start_index=len(kept),
        on_shard=on_shard,
    )
    try:
        _run_plans(spec, featurizer, writer, manifest, resume_row)
        writer.finalize()
    except _BuildStopped:
        return manifest  # journaled up to a shard boundary; resumable

    if manifest.records_done() != total:
        raise DatasetError(
            f"store row count {manifest.records_done()} != planned {total}"
        )
    manifest.finalize_stats()
    manifest.save(store_dir)
    return manifest


def _run_plans(
    spec: DatasetSpec,
    featurizer: TLPFeaturizer,
    writer: ShardWriter,
    manifest: Manifest,
    resume_row: int,
) -> None:
    """Iterate the row plan, recomputing only batches past the resume row."""
    generators = _generators(spec)
    schema = manifest.schema
    C = spec.candidates_per_task

    # The per-batch buffers, allocated once: steady state rewrites these.
    X_buf = np.zeros((C, schema.seq_len, schema.emb), dtype=np.float32)
    mask_buf = np.zeros((C, schema.seq_len), dtype=np.float32)
    static_buf = np.empty((C, schema.static_width), dtype=np.float32)
    task_buf = np.empty(C, dtype=np.int32)
    platform_buf = np.empty(C, dtype=np.int16)
    seed_buf = np.empty(C, dtype=np.uint64)
    candidate_col = np.arange(C, dtype=np.int32)

    for plan in plan_batches(spec):
        if plan.row_end <= resume_row:
            continue  # fully inside the intact shard prefix
        _emit_batch(
            spec, plan, generators[plan.target], featurizer, writer, manifest,
            resume_row,
            X_buf, mask_buf, static_buf, task_buf, platform_buf, seed_buf,
            candidate_col,
        )
        # Keep long runs flat: the featurizer's per-primitive row memo is
        # unbounded by design (hot for re-queries, cold across tasks).
        featurizer.cache_clear()


def _emit_batch(
    spec: DatasetSpec,
    plan: BatchPlan,
    generator: SketchGenerator,
    featurizer: TLPFeaturizer,
    writer: ShardWriter,
    manifest: Manifest,
    resume_row: int,
    X_buf: np.ndarray,
    mask_buf: np.ndarray,
    static_buf: np.ndarray,
    task_buf: np.ndarray,
    platform_buf: np.ndarray,
    seed_buf: np.ndarray,
    candidate_col: np.ndarray,
) -> None:
    task: Task = plan.task
    C = plan.n_candidates
    stream_name = candidate_stream(spec, task, plan.target)

    schedules = generator.generate_many(
        task.subgraph, C, stream(stream_name, spec.root_seed)
    )

    # One abstract interpretation per candidate yields the static plane
    # AND the concrete nest — the schedule is never applied again.
    nests = []
    for i, schedule in enumerate(schedules):
        prof = profile(task.subgraph, schedule, plan.target)
        static_buf[i] = prof.features()
        nests.append(prof.to_nest())
    feats = NestFeatures.from_nests(task.subgraph, nests)

    featurizer.transform_into(schedules, X_buf, mask_buf)

    stats = _length_stats([len(s.primitives) for s in schedules])
    previous = manifest.batch_stats.get(plan.key)
    if previous is not None and previous != stats:
        raise DatasetError(
            f"non-deterministic recompute of batch {plan.key}: {previous} != {stats}"
        )
    manifest.batch_stats[plan.key] = stats

    task_buf[:] = task.task_id
    seed_buf[:] = seed_for(stream_name, spec.root_seed)
    model = gpu_model if plan.target == "gpu" else cpu_model

    for pi, platform_idx in enumerate(plan.platform_ids):
        slice_start = plan.row_start + pi * C
        skip = resume_row - slice_start
        if skip >= C:
            continue  # this platform's rows are already durable
        skip = max(skip, 0)
        platform = get_platform(spec.platforms[platform_idx])
        seconds, _ = model.latency_seconds(feats, platform)
        quirk = quirk_multipliers(feats.signatures, platform, spec.root_seed)
        latency = (seconds * quirk).astype(np.float32)
        label = labels_from_latencies(latency)  # per-(task, platform) min
        platform_buf[:] = platform_idx
        writer.append(
            {
                "X": X_buf[skip:C],
                "mask": mask_buf[skip:C],
                "static": static_buf[skip:C],
                "latency": latency[skip:],
                "label": label[skip:],
                "task_id": task_buf[skip:C],
                "platform_id": platform_buf[skip:C],
                "candidate": candidate_col[skip:C],
                "seed": seed_buf[skip:C],
            }
        )


# -- smoke --------------------------------------------------------------


def smoke_spec() -> DatasetSpec:
    """The tiny 2-platform, multi-shard spec the smoke + tests reuse."""
    return DatasetSpec(
        name="smoke",
        networks=("bert_tiny", "mobilenet_v2"),
        platforms=("platinum-8272", "t4"),
        candidates_per_task=64,
        shard_size=256,
        holdout_networks=("mobilenet_v2",),
    )


def _smoke() -> dict[str, object]:
    """Build the smoke store twice; assert bit-identical + readable."""
    import tempfile

    from repro.dataset.reader import ShardReader
    from repro.utils.timer import Timer

    spec = smoke_spec()
    with tempfile.TemporaryDirectory(prefix="repro-dataset-smoke-") as tmp:
        root = Path(tmp)
        with Timer() as t:
            first = build_dataset(spec, root / "a")
        again = build_dataset(spec, root / "b")
        if first.store_digest() != again.store_digest():
            raise AssertionError("dataset store is not bit-reproducible across builds")
        if first.to_dict() != again.to_dict():
            raise AssertionError("dataset manifest is not reproducible across builds")

        reader = ShardReader(root / "a")
        if len(reader) != first.total_records:
            raise AssertionError(
                f"reader sees {len(reader)} records, manifest says {first.total_records}"
            )
        X, mask, label = reader[np.arange(min(128, len(reader)))]
        if not (np.isfinite(X).all() and label.max() <= 1.0 and label.min() > 0.0):
            raise AssertionError("smoke store records out of range")
        holdout = reader.split_indices("holdout")
        train = reader.split_indices("train")
        if len(holdout) + len(train) != len(reader) or not len(holdout):
            raise AssertionError("network-level split does not partition the store")
        return {
            "records": first.total_records,
            "shards": len(first.shards),
            "records_per_sec": first.total_records / t.elapsed,
            "seconds": t.elapsed,
            "digest": first.store_digest(),
        }


def main(argv: "list[str] | None" = None) -> int:
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    stats = _smoke()
    if "--digest" in args:
        print(stats["digest"])
        return 0
    print(
        f"dataset smoke OK: {stats['records']} records in {stats['shards']} shards, "
        f"built twice bit-identically in {stats['seconds']:.2f}s each "
        f"({stats['records_per_sec']:.0f} records/s; digest {str(stats['digest'])[:16]}...)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = [
    "DatasetError",
    "FIT_SAMPLE_PER_TASK",
    "build_dataset",
    "fit_featurizer",
    "smoke_spec",
]
