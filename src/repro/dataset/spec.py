"""Dataset specifications and the deterministic row plan.

A :class:`DatasetSpec` is the *complete* description of a dataset store:
which network pools contribute tasks, which simulated platforms label
them, how many candidate schedules each task gets, the shard size, the
network-level holdout, and the root seed.  Everything downstream — the
candidate batches, the shard bytes, the manifest — is a pure function of
the spec, so two builds of the same spec are bit-identical and a crashed
build resumes by replanning from the spec alone.

The **row plan** is the contract that makes that work: record rows are
laid out in one canonical order (tasks in spec order; per task, the CPU
candidate batch then the GPU candidate batch; per batch, the target's
platforms in spec order; per platform, candidates in sampling order) and
chunked into fixed-size shards.  :func:`plan_batches` computes the full
(task, target) -> row-range mapping without doing any generation work,
so a resume can locate the first missing row and recompute only the
batches that overlap it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.simhw.platform import PLATFORMS, get_platform
from repro.tensorir.networks import network_pool
from repro.tensorir.sketch import TARGETS
from repro.tensorir.subgraph import Subgraph
from repro.utils.rng import ROOT_SEED

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")


@dataclass(frozen=True)
class DatasetSpec:
    """Everything that determines a dataset store, and nothing else."""

    name: str
    networks: tuple[str, ...]
    platforms: tuple[str, ...]
    candidates_per_task: int = 512
    shard_size: int = 8192
    holdout_networks: tuple[str, ...] = field(default=())
    root_seed: int = ROOT_SEED

    def __post_init__(self) -> None:
        object.__setattr__(self, "networks", tuple(self.networks))
        object.__setattr__(self, "platforms", tuple(self.platforms))
        object.__setattr__(self, "holdout_networks", tuple(self.holdout_networks))
        if not _NAME_RE.match(self.name or ""):
            raise ValueError(
                f"spec name {self.name!r} must match {_NAME_RE.pattern} "
                "(it names rng streams and store files)"
            )
        if not self.networks:
            raise ValueError("spec needs at least one network pool")
        if len(set(self.networks)) != len(self.networks):
            raise ValueError(f"duplicate networks in spec: {self.networks}")
        for net in self.networks:
            network_pool(net)  # raises KeyError with the known names
        if not self.platforms:
            raise ValueError("spec needs at least one platform")
        if len(set(self.platforms)) != len(self.platforms):
            raise ValueError(f"duplicate platforms in spec: {self.platforms}")
        for plat in self.platforms:
            if plat not in PLATFORMS:
                raise ValueError(
                    f"unknown platform {plat!r}; known: {', '.join(PLATFORMS)}"
                )
        extra = [n for n in self.holdout_networks if n not in self.networks]
        if extra:
            raise ValueError(f"holdout networks not in the spec's networks: {extra}")
        if self.candidates_per_task < 1:
            raise ValueError(f"candidates_per_task must be >= 1, got {self.candidates_per_task}")
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "networks": list(self.networks),
            "platforms": list(self.platforms),
            "candidates_per_task": self.candidates_per_task,
            "shard_size": self.shard_size,
            "holdout_networks": list(self.holdout_networks),
            "root_seed": self.root_seed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DatasetSpec":
        return cls(
            name=d["name"],
            networks=tuple(d["networks"]),
            platforms=tuple(d["platforms"]),
            candidates_per_task=int(d["candidates_per_task"]),
            shard_size=int(d["shard_size"]),
            holdout_networks=tuple(d["holdout_networks"]),
            root_seed=int(d["root_seed"]),
        )

    # -- derived structure -----------------------------------------------

    def platform_ids_for_target(self, target: str) -> tuple[int, ...]:
        """Indices into ``self.platforms`` whose device matches ``target``."""
        return tuple(
            i for i, name in enumerate(self.platforms)
            if get_platform(name).target == target
        )

    def split_of(self, network: str) -> str:
        """``"holdout"`` for held-out networks, ``"train"`` otherwise."""
        if network not in self.networks:
            raise ValueError(f"network {network!r} is not part of this spec")
        return "holdout" if network in self.holdout_networks else "train"


@dataclass(frozen=True)
class Task:
    """One (network, subgraph) tuning task with its stable id."""

    task_id: int
    network: str
    subgraph: Subgraph


@dataclass(frozen=True)
class BatchPlan:
    """One generation unit: a task's candidate batch for one target.

    The batch's ``candidates_per_task`` schedules are measured on every
    spec platform of ``target``, contributing ``n_rows`` consecutive
    record rows starting at ``row_start`` in the canonical stream.
    """

    task: Task
    target: str
    platform_ids: tuple[int, ...]
    row_start: int
    n_candidates: int

    @property
    def n_rows(self) -> int:
        return self.n_candidates * len(self.platform_ids)

    @property
    def row_end(self) -> int:
        return self.row_start + self.n_rows

    @property
    def key(self) -> str:
        """The stable manifest key for this batch's stats."""
        return f"task{self.task.task_id:04d}.{self.target}"


def enumerate_tasks(spec: DatasetSpec) -> tuple[Task, ...]:
    """All tasks in canonical order: networks in spec order, then each
    pool's subgraphs in registry order."""
    tasks: list[Task] = []
    for net in spec.networks:
        for sg in network_pool(net).subgraphs:
            tasks.append(Task(task_id=len(tasks), network=net, subgraph=sg))
    return tuple(tasks)


def plan_batches(spec: DatasetSpec) -> tuple[BatchPlan, ...]:
    """The full deterministic row plan — no generation work performed."""
    per_target = {t: spec.platform_ids_for_target(t) for t in TARGETS}
    plans: list[BatchPlan] = []
    row = 0
    for task in enumerate_tasks(spec):
        for target in TARGETS:
            platform_ids = per_target[target]
            if not platform_ids:
                continue
            plan = BatchPlan(
                task=task,
                target=target,
                platform_ids=platform_ids,
                row_start=row,
                n_candidates=spec.candidates_per_task,
            )
            plans.append(plan)
            row += plan.n_rows
    return tuple(plans)


def total_records(spec: DatasetSpec) -> int:
    """Record count of the finished store (last plan's row_end)."""
    plans = plan_batches(spec)
    return plans[-1].row_end if plans else 0


def candidate_stream(spec: DatasetSpec, task: Task, target: str) -> str:
    """The rng stream naming one batch's candidate sampling.

    Keyed on (spec name, task id, target) only — independent of every
    other batch, which is what lets a resume regenerate any batch
    without replaying the ones before it.
    """
    return f"dataset.{spec.name}.task{task.task_id:04d}.{target}"


def fit_stream(spec: DatasetSpec, task: Task, target: str) -> str:
    """The rng stream naming one task's featurizer-calibration sample."""
    return f"dataset.{spec.name}.fit.task{task.task_id:04d}.{target}"


__all__ = [
    "BatchPlan",
    "DatasetSpec",
    "Task",
    "candidate_stream",
    "enumerate_tasks",
    "fit_stream",
    "plan_batches",
    "total_records",
]
