"""Columnar, memory-mappable shard storage for dataset records.

A *shard* is one directory of plain ``.npy`` files — one per column, all
with the same leading record count — so a reader can ``np.load(...,
mmap_mode="r")`` any column without copying (``.npz`` zip archives
cannot be memory-mapped, which is why shards are directories).  Shards
are fixed-size (``DatasetSpec.shard_size``) except the final remainder,
and named ``shard-00000``, ``shard-00001``, ... in row order.

Crash discipline: a shard is staged in a ``*.tmp`` directory and
``os.replace``-renamed into place only when every column is fully
written, so a shard directory either exists completely or not at all;
any ``*.tmp`` litter is a crashed write and is safe to delete.  Each
shard's SHA-256 digest (column bytes, in :data:`COLUMN_NAMES` order)
goes into the manifest, making "is this store exactly what (spec, seed)
says" a cheap question.

The writer is the single-pass hot path: per-column buffers are allocated
once at ``shard_size`` and rewritten for every shard, so peak memory is
one shard regardless of dataset size.
"""

from __future__ import annotations

import hashlib
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

SHARD_PREFIX = "shard-"
TMP_SUFFIX = ".tmp"

#: Column order is part of the on-disk format: digests hash column bytes
#: in this order, so reordering breaks every recorded digest.
COLUMN_NAMES: tuple[str, ...] = (
    "X",            # float32 [n, seq_len, emb]   — TLPFeaturizer planes
    "mask",         # float32 [n, seq_len]        — sequence-length mask
    "static",       # float32 [n, static_width]   — absint StaticProfile plane
    "latency",      # float32 [n]                 — simulated seconds
    "label",        # float32 [n]                 — min_latency/latency per task
    "task_id",      # int32   [n]                 — index into manifest tasks
    "platform_id",  # int16   [n]                 — index into spec platforms
    "candidate",    # int32   [n]                 — position in the task batch
    "seed",         # uint64  [n]                 — candidate-stream seed (provenance)
)


@dataclass(frozen=True)
class ShardSchema:
    """Record geometry: fixes every column's dtype and trailing shape."""

    seq_len: int
    emb: int
    static_width: int

    def columns(self) -> dict[str, tuple[np.dtype, tuple[int, ...]]]:
        return {
            "X": (np.dtype(np.float32), (self.seq_len, self.emb)),
            "mask": (np.dtype(np.float32), (self.seq_len,)),
            "static": (np.dtype(np.float32), (self.static_width,)),
            "latency": (np.dtype(np.float32), ()),
            "label": (np.dtype(np.float32), ()),
            "task_id": (np.dtype(np.int32), ()),
            "platform_id": (np.dtype(np.int16), ()),
            "candidate": (np.dtype(np.int32), ()),
            "seed": (np.dtype(np.uint64), ()),
        }

    def to_dict(self) -> dict:
        return {"seq_len": self.seq_len, "emb": self.emb, "static_width": self.static_width}

    @classmethod
    def from_dict(cls, d: dict) -> "ShardSchema":
        return cls(int(d["seq_len"]), int(d["emb"]), int(d["static_width"]))


def shard_name(index: int) -> str:
    return f"{SHARD_PREFIX}{index:05d}"


def shard_dir(store_dir: Path, index: int) -> Path:
    return Path(store_dir) / shard_name(index)


def clean_tmp_dirs(store_dir: Path) -> int:
    """Delete crashed staging directories; returns how many were removed."""
    removed = 0
    for path in sorted(Path(store_dir).glob(f"{SHARD_PREFIX}*{TMP_SUFFIX}")):
        shutil.rmtree(path)
        removed += 1
    return removed


def _column_digest(columns: Mapping[str, np.ndarray], n: int) -> str:
    digest = hashlib.sha256()
    for name in COLUMN_NAMES:
        digest.update(np.ascontiguousarray(columns[name][:n]).tobytes())
    return digest.hexdigest()


def load_shard_column(
    store_dir: Path, index: int, name: str, *, mmap: bool = True
) -> np.ndarray:
    """One shard column, memory-mapped read-only by default."""
    path = shard_dir(store_dir, index) / f"{name}.npy"
    return np.load(path, mmap_mode="r" if mmap else None)


def verify_shard(
    store_dir: Path,
    index: int,
    n_records: int,
    expected_digest: str,
    schema: ShardSchema,
    *,
    level: str = "shape",
) -> bool:
    """Is a completed shard actually on disk and intact?

    ``level="shape"`` reads only the ``.npy`` headers (shape + dtype per
    column) — constant-time, the resume default.  ``level="digest"``
    re-hashes every byte against the manifest digest — what the
    crash-resume tests use.
    """
    if level not in ("shape", "digest"):
        raise ValueError(f"unknown verify level {level!r}, expected 'shape' or 'digest'")
    path = shard_dir(store_dir, index)
    if not path.is_dir():
        return False
    spec_cols = schema.columns()
    loaded: dict[str, np.ndarray] = {}
    for name in COLUMN_NAMES:
        dtype, trailing = spec_cols[name]
        try:
            arr = np.load(path / f"{name}.npy", mmap_mode="r")
        except (OSError, ValueError):
            return False
        if arr.dtype != dtype or arr.shape != (n_records, *trailing):
            return False
        loaded[name] = arr
    if level == "digest":
        return _column_digest(loaded, n_records) == expected_digest
    return True


class ShardWriter:
    """Streams record rows into fixed-size shards with flat peak memory.

    ``append`` copies rows into preallocated per-column buffers and
    flushes a shard every time they fill; ``finalize`` flushes the
    remainder.  After each completed shard the ``on_shard`` callback
    receives ``(index, n_records, digest)`` — the pipeline uses it to
    journal progress into the manifest, and may raise to stop the build
    at a shard boundary (the shard itself is already durable).
    """

    def __init__(
        self,
        store_dir: Path,
        schema: ShardSchema,
        shard_size: int,
        *,
        start_index: int = 0,
        on_shard: "Callable[[int, int, str], None] | None" = None,
    ):
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self.store_dir = Path(store_dir)
        self.schema = schema
        self.shard_size = int(shard_size)
        self.next_index = int(start_index)
        self.on_shard = on_shard
        self._fill = 0
        self._finalized = False
        self._buffers: dict[str, np.ndarray] = {
            name: np.empty((shard_size, *trailing), dtype=dtype)
            for name, (dtype, trailing) in schema.columns().items()
        }

    @property
    def fill(self) -> int:
        return self._fill

    def append(self, columns: Mapping[str, np.ndarray]) -> None:
        """Append a block of rows (dict of equal-length column arrays)."""
        if self._finalized:
            raise RuntimeError("ShardWriter.append after finalize()")
        missing = [c for c in COLUMN_NAMES if c not in columns]
        if missing:
            raise ValueError(f"append missing columns: {missing}")
        n = len(columns["X"])
        for name in COLUMN_NAMES:
            if len(columns[name]) != n:
                raise ValueError(
                    f"column {name!r} has {len(columns[name])} rows, expected {n}"
                )
        offset = 0
        while offset < n:
            take = min(self.shard_size - self._fill, n - offset)
            lo, hi = self._fill, self._fill + take
            for name in COLUMN_NAMES:
                self._buffers[name][lo:hi] = columns[name][offset : offset + take]
            self._fill += take
            offset += take
            if self._fill == self.shard_size:
                self._flush()

    def finalize(self) -> None:
        """Flush any partial final shard and close the writer."""
        if self._finalized:
            return
        if self._fill:
            self._flush()
        self._finalized = True

    def _flush(self) -> None:
        n, index = self._fill, self.next_index
        final = shard_dir(self.store_dir, index)
        staging = final.with_name(final.name + TMP_SUFFIX)
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        for name in COLUMN_NAMES:
            np.save(staging / f"{name}.npy", self._buffers[name][:n])
        digest = _column_digest(self._buffers, n)
        if final.exists():
            shutil.rmtree(final)  # stale leftover from an unjournaled crash
        os.replace(staging, final)
        self._fill = 0
        self.next_index = index + 1
        if self.on_shard is not None:
            self.on_shard(index, n, digest)


__all__ = [
    "COLUMN_NAMES",
    "ShardSchema",
    "ShardWriter",
    "clean_tmp_dirs",
    "load_shard_column",
    "shard_dir",
    "shard_name",
    "verify_shard",
]
