"""Abstract interpretation of schedule primitive sequences.

The verifier (``repro.analysis.verifier``) proves a sequence *valid*
without applying it; this module goes one step further and derives *what
the schedule does* — loop extents, tile footprints, parallel/vector
structure, GPU grid geometry — still without ever calling
``Schedule.apply``.  That static profile is exactly the pre-screen a
Pruner-style draft-then-verify search loop needs (PAPERS.md: a cheap
static draft score in front of the learned model), and a second,
independent implementation to cross-check the applier and ``repro.simhw``
against.

The abstract domain is an ordered list of loops whose trip counts are
:class:`Interval` values.  On concrete schedules every interval's upper
bound is the padded extent the applier would produce (the differential
property in ``tests/test_absint.py`` pins this exactly), while the lower
bound tracks the minimum number of *useful* iterations once split padding
is accounted for — a padded split leaves its first inner level with a
ragged final tile, so that loop's interval widens while every trip count
stays exact.

Rejection semantics are the union of the applier's and the verifier's:
:func:`profile` raises :class:`AbsIntError` on any sequence the verifier
would flag with an error diagnostic (the property tests assert both
directions: verifier-clean ⇒ absint succeeds, verifier-rejected ⇒ absint
raises).

Three consumers:

* :func:`profile_many` — fixed-width float32 static-feature plane
  (``STATIC_FEATURE_NAMES`` columns) for screening models.
* :func:`draft_scores` — Pruner-style draft score: the static profile is
  costed on the target's *reference* ``simhw`` platform, no TLP model
  involved.  ``CandidateScorer.propose_topk(draft_keep=...)`` uses it to
  run ``TLPModel.predict`` on the top slice only.
* :func:`smell_diagnostics` — the W304–W306 facts the verifier emits
  (footprint vs last-level cache, under-parallelization, unroll bodies
  past the icache budget).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.simhw.cache import (
    BYTES_PER_POINT,
    NestFeatures,
    POW2_CONFLICT_THRESHOLD,
    REUSE_EXPONENT,
)
from repro.simhw.platform import ALL_PLATFORMS, Platform
from repro.tensorir.loops import ANNOTATION_KINDS, Loop, LoopKind, LoopNest
from repro.tensorir.primitives import (
    ANNOTATIONS,
    ARITY,
    GPU_BIND_PREFIX,
    KIND_BY_VALUE,
    PRAGMAS,
    Primitive,
    PrimitiveKind,
    fused_name,
    split_names,
)
from repro.tensorir.schedule import PAD_ALLOWANCE, split_parts
from repro.tensorir.subgraph import Subgraph


class AbsIntError(Exception):
    """A primitive sequence is invalid under abstract interpretation.

    Raised for exactly the sequences the verifier would reject with an
    error diagnostic (the absint/verifier agreement property); ``step``
    is the index of the offending primitive.
    """

    def __init__(self, step: int, message: str):
        super().__init__(f"step {step}: {message}")
        self.step = step


@dataclass(frozen=True)
class Interval:
    """An integer interval ``[lo, hi]`` of useful-iteration counts.

    ``hi`` is the loop's (padded) trip count — exact, since padded splits
    run all iterations and mask the padding.  ``lo`` is the minimum
    number of useful iterations any instance of the loop performs; the
    two coincide unless some enclosing split padded the axis.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 1 <= self.lo <= self.hi:
            raise ValueError(f"bad interval [{self.lo}, {self.hi}]")

    @property
    def exact(self) -> bool:
        return self.lo == self.hi

    def __mul__(self, other: "Interval") -> "Interval":
        return Interval(self.lo * other.lo, self.hi * other.hi)

    def __str__(self) -> str:
        return str(self.hi) if self.exact else f"[{self.lo}, {self.hi}]"


@dataclass(frozen=True)
class AbstractLoop:
    """One loop of the abstract nest (outermost-first order)."""

    name: str
    trip: Interval
    is_reduction: bool = False
    kind: LoopKind = LoopKind.SERIAL
    thread_tag: str = ""
    pragmas: tuple[tuple[str, int], ...] = ()
    rfactored: bool = False

    @property
    def extent(self) -> int:
        """The concrete (padded) trip count — what the applier produces."""
        return self.trip.hi


#: Columns of the :func:`profile_many` static-feature plane, in order.
STATIC_FEATURE_NAMES: tuple[str, ...] = (
    "depth",
    "log2_padded_points",
    "log2_domain_points",
    "padding_ratio",
    "useful_fraction",        # prod(trip.lo) / prod(trip.hi) — interval mass
    "flops_per_point",
    "n_steps",
    "parallel_extent",
    "parallel_depth",         # outermost parallel loop's level (depth if none)
    "vector_extent",
    "vector_at_innermost",
    "unrolled_extent",
    "unroll_step",            # max auto_unroll_max_step pragma
    "grid_blocks",
    "threads_per_block",
    "pow2_conflicts",
    "log2_outer_tile_bytes",  # working set of one outermost-loop iteration
    "log2_tile_points_l0",    # deepest suffix tile per reference cache level
    "log2_tile_points_l1",
    "log2_tile_points_l2",
    "cache_write",
    "compute_at",
    "compute_root",
    "inlined",
    "rfactored",
)


def reference_platform(target: str) -> Platform:
    """The canonical ``simhw`` platform for a target (first of its kind)."""
    for p in ALL_PLATFORMS:
        if p.target == target:
            return p
    raise ValueError(f"no simhw platform with target {target!r}")


def reference_llc_kb(target: str) -> float:
    """Smallest last-level cache among the target's platforms (W304 bar)."""
    return min(p.cache_kb[-1] for p in ALL_PLATFORMS if p.target == target)


def reference_min_cores(target: str) -> int:
    """Smallest core/SM count among the target's platforms (W305 bar)."""
    return min(p.cores for p in ALL_PLATFORMS if p.target == target)


def reference_unroll_budget(target: str) -> int:
    """Smallest icache unroll cap among the target's platforms (W306 bar)."""
    return min(p.unroll_cap for p in ALL_PLATFORMS if p.target == target)


def working_set_bytes(points: float) -> float:
    """Bytes a tile of ``points`` keeps resident — the ``simhw.cache``
    reuse model (``BYTES_PER_POINT * points ** REUSE_EXPONENT``)."""
    return BYTES_PER_POINT * float(points) ** REUSE_EXPONENT


@dataclass(frozen=True)
class StaticProfile:
    """Everything :func:`profile` derives from a sequence without applying it."""

    subgraph_name: str
    target: str
    n_steps: int
    loops: tuple[AbstractLoop, ...]
    cache_write: bool
    inlined: bool
    compute_at_axis: str
    compute_root: bool
    domain_points: int
    flops_per_point: float
    #: (step index, axis name, abstract extent) per ``parallel`` annotation.
    parallel_facts: tuple[tuple[int, str, int], ...]
    #: (step index, axis name) per ``unroll`` annotation.
    unroll_facts: tuple[tuple[int, str], ...]
    #: Per-step nest snapshots ((name, extent), ...) when profiled with
    #: ``trace=True`` — the differential hook against ``apply_trace``.
    trace: tuple[tuple[tuple[str, int], ...], ...] | None = None

    @property
    def depth(self) -> int:
        return len(self.loops)

    def extents(self) -> tuple[int, ...]:
        return tuple(l.extent for l in self.loops)

    def padded_points(self) -> int:
        return math.prod(l.extent for l in self.loops)

    def useful_points(self) -> int:
        """Lower bound on useful iterations (product of interval floors)."""
        return math.prod(l.trip.lo for l in self.loops)

    def padding_ratio(self) -> float:
        if self.domain_points <= 0:
            return math.inf
        return self.padded_points() / self.domain_points

    def to_nest(self) -> LoopNest:
        """Concretize the abstract nest — must equal ``Schedule.apply()``
        output on any verifier-clean sequence (the differential property)."""
        return LoopNest(
            subgraph_name=self.subgraph_name,
            loops=[
                Loop(
                    l.name,
                    l.extent,
                    is_reduction=l.is_reduction,
                    kind=l.kind,
                    thread_tag=l.thread_tag,
                    pragmas=l.pragmas,
                    rfactored=l.rfactored,
                )
                for l in self.loops
            ],
            cache_write=self.cache_write,
            inlined=self.inlined,
            compute_at_axis=self.compute_at_axis,
            compute_root=self.compute_root,
        )

    # -- derived geometry -------------------------------------------------

    def grid_geometry(self) -> tuple[int, int]:
        """(grid blocks, threads per block) from the ``bind.*`` tags."""
        grid = threads = 1
        for l in self.loops:
            if not l.thread_tag:
                continue
            if l.thread_tag.startswith("blockIdx"):
                grid *= l.extent
            else:  # threadIdx.* and vthread both occupy the block
                threads *= l.extent
        return grid, threads

    def pow2_conflicts(self) -> int:
        """Large power-of-two *middle* loop extents (the W301/simhw smell)."""
        count = 0
        for l in self.loops[1:-1]:
            e = l.extent
            if e >= POW2_CONFLICT_THRESHOLD and (e & (e - 1)) == 0:
                count += 1
        return count

    def outer_tile_points(self) -> int:
        """Points one iteration of the outermost loop touches."""
        if not self.loops:
            return 1
        return math.prod(l.extent for l in self.loops[1:])

    def tile_points_per_level(self, cache_kb: Sequence[float]) -> tuple[float, ...]:
        """Deepest loop-suffix tile (points) fitting each cache level,
        the suffix-product walk of ``simhw.cache.tile_points``."""
        suffix: list[float] = []
        acc = 1.0
        for l in reversed(self.loops):
            acc *= l.extent
            suffix.append(acc)
        out: list[float] = []
        for kb in cache_kb:
            capacity_points = (kb * 1024.0 / BYTES_PER_POINT) ** (1.0 / REUSE_EXPONENT)
            best = 1.0
            for t in suffix:  # ascending toward the outermost suffix
                if t <= capacity_points:
                    best = t
                else:
                    break
            out.append(max(best, 1.0))
        return tuple(out)

    def unroll_step(self) -> int:
        step = 0
        for l in self.loops:
            for name, value in l.pragmas:
                if name == "auto_unroll_max_step":
                    step = max(step, int(value))
        return step

    def features(self) -> np.ndarray:
        """The fixed-width float32 feature row (``STATIC_FEATURE_NAMES``)."""
        padded = float(self.padded_points())
        parallel_extent = 1.0
        parallel_depth = float(self.depth)
        vector_extent = 1.0
        unrolled_extent = 1.0
        for level, l in enumerate(self.loops):
            if l.kind is LoopKind.PARALLEL:
                parallel_extent *= l.extent
                parallel_depth = min(parallel_depth, float(level))
            elif l.kind is LoopKind.VECTORIZED:
                vector_extent *= l.extent
            elif l.kind is LoopKind.UNROLLED:
                unrolled_extent *= l.extent
        grid, threads = self.grid_geometry()
        ref = reference_platform(self.target)
        tiles = self.tile_points_per_level(ref.cache_kb)
        tile_cols = [math.log2(tiles[i]) if i < len(tiles) else 0.0 for i in range(3)]
        row = (
            float(self.depth),
            math.log2(max(padded, 1.0)),
            math.log2(max(float(self.domain_points), 1.0)),
            self.padding_ratio(),
            self.useful_points() / max(padded, 1.0),
            self.flops_per_point,
            float(self.n_steps),
            parallel_extent,
            parallel_depth,
            vector_extent,
            1.0 if self.loops and self.loops[-1].kind is LoopKind.VECTORIZED else 0.0,
            unrolled_extent,
            float(self.unroll_step()),
            float(grid),
            float(threads),
            float(self.pow2_conflicts()),
            math.log2(max(working_set_bytes(self.outer_tile_points()), 1.0)),
            *tile_cols,
            1.0 if self.cache_write else 0.0,
            1.0 if self.compute_at_axis else 0.0,
            1.0 if self.compute_root else 0.0,
            1.0 if self.inlined else 0.0,
            1.0 if any(l.rfactored for l in self.loops) else 0.0,
        )
        return np.asarray(row, dtype=np.float32)


@dataclass
class _MutableLoop:
    name: str
    trip: Interval
    is_reduction: bool
    kind: LoopKind = LoopKind.SERIAL
    thread_tag: str = ""
    pragmas: tuple[tuple[str, int], ...] = ()
    rfactored: bool = False

    def freeze(self) -> AbstractLoop:
        return AbstractLoop(
            self.name,
            self.trip,
            self.is_reduction,
            self.kind,
            self.thread_tag,
            self.pragmas,
            self.rfactored,
        )


@dataclass
class _Interpreter:
    """One abstract execution of a sequence over the loop-interval domain.

    Bookkeeping intentionally mirrors *both* reference implementations:
    loop structure follows the applier (fuse drops annotations, split
    drops pragmas), while rejection follows the stricter verifier (bound
    thread tags and axis-name history persist across fuse/split, the
    padding allowance is enforced) — so absint rejects exactly the
    sequences the verifier errors on and concretizes to exactly the nest
    the applier builds on the rest.
    """

    subgraph: Subgraph
    target: str
    primitives: tuple[Primitive, ...]
    pad_allowance: float = PAD_ALLOWANCE

    loops: list[_MutableLoop] = field(init=False)
    seen_names: set[str] = field(init=False)
    bound_tags: set[str] = field(init=False)

    def __post_init__(self) -> None:
        self.loops = [
            _MutableLoop(a.name, Interval(a.extent, a.extent), a.is_reduction)
            for a in self.subgraph.axes
        ]
        self.seen_names = {a.name for a in self.subgraph.axes}
        self.bound_tags = set()
        self.cache_write = False
        self.inlined = False
        self.compute_at_axis = ""
        self.compute_root = False
        self.rfactor_seen = False
        self.parallel_facts: list[tuple[int, str, int]] = []
        self.unroll_facts: list[tuple[int, str]] = []
        self._step = 0

    # -- plumbing ---------------------------------------------------------

    def _fail(self, message: str):
        raise AbsIntError(self._step, message)

    def _index(self, axis: str) -> int:
        for i, l in enumerate(self.loops):
            if l.name == axis:
                return i
        if axis in self.seen_names:
            self._fail(f"axis {axis!r} was already consumed")
        self._fail(f"axis {axis!r} was never defined")

    def _check_arity(self, kind: PrimitiveKind, prim: Primitive) -> None:
        n_axes, min_ints, max_ints, needs_attr = ARITY[kind]
        if n_axes is not None and len(prim.axes) != n_axes:
            self._fail(f"{kind.value} expects {n_axes} axis, got {len(prim.axes)}")
        if len(prim.ints) < min_ints or (max_ints is not None and len(prim.ints) > max_ints):
            self._fail(f"{kind.value} has bad numeric arity {list(prim.ints)}")
        if needs_attr and not prim.attr:
            self._fail(f"{kind.value} requires an attr token")

    # -- the run ----------------------------------------------------------

    def run(self, trace: bool = False) -> StaticProfile:
        snapshots: list[tuple[tuple[str, int], ...]] = []
        for index, prim in enumerate(self.primitives):
            self._step = index
            kind = KIND_BY_VALUE.get(prim.kind)
            if kind is None:
                self._fail(f"unknown primitive kind {prim.kind!r}")
            if self.inlined:
                self._fail(f"{kind.value} after compute-inline")
            self._check_arity(kind, prim)
            getattr(self, f"_visit_{kind.value.lower()}")(prim)
            if trace:
                snapshots.append(tuple((l.name, l.trip.hi) for l in self.loops))
        return StaticProfile(
            subgraph_name=self.subgraph.name,
            target=self.target,
            n_steps=len(self.primitives),
            loops=tuple(l.freeze() for l in self.loops),
            cache_write=self.cache_write,
            inlined=self.inlined,
            compute_at_axis=self.compute_at_axis,
            compute_root=self.compute_root,
            domain_points=self.subgraph.total_points,
            flops_per_point=float(self.subgraph.flops_per_point),
            parallel_facts=tuple(self.parallel_facts),
            unroll_facts=tuple(self.unroll_facts),
            trace=tuple(snapshots) if trace else None,
        )

    # -- split family -----------------------------------------------------

    def _split(self, axis: str, carried_extent: int, factors: tuple[int, ...]) -> None:
        bad = [f for f in factors if not isinstance(f, int) or f < 1]
        if bad:
            self._fail(f"split of {axis!r} has non-positive factors {bad}")
        idx = self._index(axis)
        old = self.loops[idx]
        extent = old.trip.hi
        if carried_extent != extent:
            self._fail(
                f"split of {axis!r} carries extent {carried_extent}, "
                f"abstract extent is {extent}"
            )
        parts = split_parts(extent, factors)
        padded = math.prod(parts)
        if padded > extent * (1.0 + self.pad_allowance):
            self._fail(
                f"split of {axis!r} pads {extent} to {padded}, beyond the "
                f"{self.pad_allowance:.0%} allowance"
            )
        names = split_names(axis, len(parts))
        for name in names:
            if name in self.seen_names:
                self._fail(f"axis {name!r} defined twice")
        trips = _split_intervals(old.trip, parts, padded)
        self.loops[idx : idx + 1] = [
            _MutableLoop(name, trip, old.is_reduction)
            for name, trip in zip(names, trips)
        ]
        self.seen_names.update(names)

    def _visit_sp(self, prim: Primitive) -> None:
        self._split(prim.axes[0], prim.ints[0], tuple(prim.ints[1:]))

    def _visit_fsp(self, prim: Primitive) -> None:
        (axis,) = prim.axes
        src_step = prim.ints[1]
        if not 0 <= src_step < len(self.primitives):
            self._fail(f"follow-split references missing step {src_step}")
        if src_step >= self._step:
            self._fail(
                f"follow-split references step {src_step}, which is not strictly "
                f"earlier than step {self._step}"
            )
        src = self.primitives[src_step]
        if KIND_BY_VALUE.get(src.kind) is not PrimitiveKind.SP or len(src.ints) < 2:
            self._fail(f"follow-split references step {src_step} which is not a split")
        self._split(axis, prim.ints[0], tuple(src.ints[1:]))

    # -- order primitives -------------------------------------------------

    def _visit_re(self, prim: Primitive) -> None:
        named = list(prim.axes)
        for axis in dict.fromkeys(named):  # order-preserving dedup
            self._index(axis)
        live = [l.name for l in self.loops]
        if sorted(named) != sorted(live):
            self._fail(f"reorder {named} is not a permutation of the live order {live}")
        by_name = {l.name: l for l in self.loops}
        self.loops = [by_name[n] for n in named]

    def _visit_fu(self, prim: Primitive) -> None:
        named = list(prim.axes)
        if len(named) < 2 or len(set(named)) != len(named):
            self._fail(f"fuse needs >=2 distinct axes, got {named}")
        indices = [self._index(a) for a in named]
        if indices != list(range(indices[0], indices[0] + len(indices))):
            self._fail(f"fuse axes {named} are not adjacent")
        merged = self.loops[indices[0] : indices[-1] + 1]
        name = fused_name(tuple(named))
        if name in self.seen_names:
            self._fail(f"axis {name!r} defined twice")
        trip = merged[0].trip
        for l in merged[1:]:
            trip = trip * l.trip
        fused = _MutableLoop(name, trip, any(l.is_reduction for l in merged))
        self.loops[indices[0] : indices[-1] + 1] = [fused]
        self.seen_names.add(name)

    # -- annotation primitives --------------------------------------------

    def _visit_an(self, prim: Primitive) -> None:
        (axis,) = prim.axes
        if prim.attr not in ANNOTATIONS:
            self._fail(f"unknown annotation {prim.attr!r}")
        is_bind = prim.attr.startswith(GPU_BIND_PREFIX)
        if is_bind and self.target != "gpu":
            self._fail(f"GPU bind {prim.attr!r} under target {self.target!r}")
        loop = self.loops[self._index(axis)]
        if loop.kind is not LoopKind.SERIAL:
            self._fail(f"axis {axis!r} already annotated as {loop.kind.value}")
        if is_bind:
            tag = prim.attr[len(GPU_BIND_PREFIX) :]
            if tag in self.bound_tags:
                self._fail(f"thread tag {tag!r} bound twice")
            self.bound_tags.add(tag)
            loop.kind = LoopKind.BOUND
            loop.thread_tag = tag
        else:
            loop.kind = ANNOTATION_KINDS[prim.attr]
            if prim.attr == "parallel":
                self.parallel_facts.append((self._step, axis, loop.trip.hi))
            elif prim.attr == "unroll":
                self.unroll_facts.append((self._step, axis))

    def _visit_pr(self, prim: Primitive) -> None:
        (axis,) = prim.axes
        if prim.attr not in PRAGMAS:
            self._fail(f"unknown pragma {prim.attr!r}")
        loop = self.loops[self._index(axis)]
        loop.pragmas = (*loop.pragmas, (prim.attr, prim.ints[0]))

    # -- stage primitives -------------------------------------------------

    def _visit_ca(self, prim: Primitive) -> None:
        self._index(prim.axes[0])
        self.compute_at_axis = prim.axes[0]

    def _visit_chw(self, prim: Primitive) -> None:
        self.cache_write = True

    def _visit_rf(self, prim: Primitive) -> None:
        loop = self.loops[self._index(prim.axes[0])]
        if not loop.is_reduction:
            self._fail(f"rfactor of non-reduction axis {prim.axes[0]!r}")
        loop.rfactored = True
        self.rfactor_seen = True

    def _visit_ci(self, prim: Primitive) -> None:
        conflicts = [
            name
            for name, flag in (
                ("CHW", self.cache_write),
                ("CA", bool(self.compute_at_axis)),
                ("CP", self.compute_root),
                ("RF", self.rfactor_seen),
            )
            if flag
        ]
        if conflicts:
            self._fail(f"compute-inline conflicts with {'/'.join(conflicts)}")
        self.inlined = True

    def _visit_cp(self, prim: Primitive) -> None:
        self.compute_root = True


def _split_intervals(
    trip: Interval, parts: tuple[int, ...], padded: int
) -> tuple[Interval, ...]:
    """Trip intervals of the loops a split produces.

    Trip counts are exact (``hi == part``).  When the factors do not
    divide the extent, the last outer iteration covers only the remainder,
    so the first inner level's useful count drops — the remainder is
    attributed there and deeper levels stay exact.  Splitting an already
    widened interval keeps only the outermost bound tight (sound, coarse).
    """
    outer, *inner = parts
    if not trip.exact:
        # Splitting an already widened interval: trip counts stay exact,
        # the useful floors collapse to 1 (sound but coarse).
        return tuple(Interval(1, p) for p in parts)
    if padded == trip.hi or not inner:
        return tuple(Interval(p, p) for p in parts)
    inner_points = math.prod(inner)
    deeper = math.prod(inner[1:])  # 1 when the split has a single factor
    remainder = trip.hi - (outer - 1) * inner_points
    first_lo = min(inner[0], max(1, math.ceil(remainder / deeper)))
    return (
        Interval(outer, outer),
        Interval(first_lo, inner[0]),
        *(Interval(p, p) for p in inner[1:]),
    )


def _primitives_of(sequence: "Primitive | object") -> tuple[Primitive, ...]:
    prims = getattr(sequence, "primitives", sequence)
    return tuple(prims)


def profile(
    subgraph: Subgraph,
    sequence: "Sequence[Primitive] | object",
    target: str = "cpu",
    *,
    pad_allowance: float = PAD_ALLOWANCE,
    trace: bool = False,
) -> StaticProfile:
    """Abstractly interpret one sequence (a ``Schedule`` or primitive
    tuple), raising :class:`AbsIntError` on any invalid step."""
    interp = _Interpreter(
        subgraph, target, _primitives_of(sequence), pad_allowance=pad_allowance
    )
    return interp.run(trace=trace)


def profile_many(
    subgraph: Subgraph,
    sequences: Sequence["Sequence[Primitive] | object"],
    target: str = "cpu",
) -> np.ndarray:
    """Static-feature plane (float32 ``[N, len(STATIC_FEATURE_NAMES)]``)
    for a batch of already-valid sequences against one subgraph."""
    n = len(sequences)
    plane = np.empty((n, len(STATIC_FEATURE_NAMES)), dtype=np.float32)
    for i, seq in enumerate(sequences):
        plane[i] = profile(subgraph, seq, target).features()
    return plane


def nest_features(
    subgraph: Subgraph, profiles: Sequence[StaticProfile]
) -> NestFeatures:
    """``simhw.cache.NestFeatures`` built from static profiles alone —
    bit-identical to ``NestFeatures.from_nests`` over the applied nests
    (the three-subsystem differential property)."""
    return NestFeatures.from_nests(subgraph, [p.to_nest() for p in profiles])


def draft_scores(
    subgraph: Subgraph,
    sequences: Sequence["Sequence[Primitive] | object"],
    target: str = "cpu",
) -> np.ndarray:
    """Pruner-style static draft scores, higher = better (float32 ``[N]``).

    Costs each static profile on the target's reference platform with the
    analytical ``simhw`` model — no quirk term, no learned model — and
    normalizes to ``min_latency / latency`` like the TLP training label.
    """
    from repro.simhw import cpu_model, gpu_model  # local: keep verifier import light

    if not sequences:
        return np.empty(0, dtype=np.float32)
    profiles = [profile(subgraph, seq, target) for seq in sequences]
    feats = nest_features(subgraph, profiles)
    model = gpu_model if target == "gpu" else cpu_model
    seconds, _ = model.latency_seconds(feats, reference_platform(target))
    floor = np.maximum(seconds, np.float32(1e-30))
    return (floor.min() / floor).astype(np.float32)


def smell_diagnostics(
    subgraph: Subgraph,
    primitives: tuple[Primitive, ...],
    target: str = "cpu",
    *,
    llc_kb: float | None = None,
    min_parallel_extent: int | None = None,
    unroll_body_budget: int | None = None,
) -> list:
    """W304–W306 diagnostics from absint facts (empty if absint rejects).

    Thresholds default to the *worst* platform of the target — the
    smallest last-level cache, core count, and unroll cap — so a warning
    means "smells on at least one simulated device".
    """
    from repro.analysis.diagnostics import Diagnostic, make  # local: avoid cycle

    try:
        prof = profile(subgraph, primitives, target)
    except AbsIntError:
        return []
    diags: list[Diagnostic] = []
    if llc_kb is None:
        llc_kb = reference_llc_kb(target)
    if min_parallel_extent is None:
        min_parallel_extent = reference_min_cores(target)
    if unroll_body_budget is None:
        unroll_body_budget = reference_unroll_budget(target)

    # W304: one outermost-loop iteration's working set overflows the LLC.
    if prof.loops and not prof.inlined:
        tile_bytes = working_set_bytes(prof.outer_tile_points())
        if tile_bytes > llc_kb * 1024.0:
            diags.append(
                make(
                    "W304",
                    -1,
                    f"static outer-tile working set {tile_bytes / 1024.0:.0f} KB "
                    f"exceeds the {llc_kb:.0f} KB last-level cache of the "
                    f"smallest {target} platform",
                )
            )

    # W305: parallel annotation on an axis too small to feed the cores.
    for step, axis, extent in prof.parallel_facts:
        if extent < min_parallel_extent:
            diags.append(
                make(
                    "W305",
                    step,
                    f"parallel annotation on {axis!r} with abstract extent "
                    f"{extent}, below the minimum core count "
                    f"{min_parallel_extent} of the {target} platforms",
                    axis,
                )
            )

    # W306: unroll directive whose statically-bounded body blows the icache.
    by_name = {l.name: i for i, l in enumerate(prof.loops)}
    for step, axis in prof.unroll_facts:
        at = by_name.get(axis)
        if at is None:
            continue  # annotated loop later fused away
        body_points = math.prod(l.extent for l in prof.loops[at:])
        body_instrs = body_points * max(prof.flops_per_point, 1.0)
        if body_instrs > unroll_body_budget:
            diags.append(
                make(
                    "W306",
                    step,
                    f"unroll of {axis!r} replicates a statically-bounded body of "
                    f"~{body_instrs:.0f} instructions, beyond the {target} "
                    f"icache budget {unroll_body_budget}",
                    axis,
                )
            )
    return diags


__all__ = [
    "AbsIntError",
    "AbstractLoop",
    "Interval",
    "STATIC_FEATURE_NAMES",
    "StaticProfile",
    "draft_scores",
    "nest_features",
    "profile",
    "profile_many",
    "reference_llc_kb",
    "reference_min_cores",
    "reference_platform",
    "reference_unroll_budget",
    "smell_diagnostics",
    "working_set_bytes",
]
