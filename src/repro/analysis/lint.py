"""Pluggable AST repo-lint enforcing DESIGN.md §7 conventions.

The generalization of the original ``selfcheck`` module: every rule is a
:class:`LintRule` subclass carrying its own id, description, and path
scope, registered in :data:`RULE_REGISTRY`; one AST walk per file
dispatches nodes to every in-scope rule.  ``repro.analysis.selfcheck``
remains as a thin compatibility shim over this module.

Rules (stable ids, never renumbered):

* ``SC100`` — file does not parse (reported under its own id, not SC101).
* ``SC101`` — ``np.random`` / ``numpy.random`` access outside
  ``repro/utils/rng.py``: randomness must flow through named seeded
  streams or a caller-supplied ``Generator``.
* ``SC102`` — mutable default arguments.
* ``SC103`` — float64 literals in NN compute paths (``nn``/``core``/
  ``simhw``): the substrate is pure float32.
* ``SC104`` — ``time`` module in simulated-measurement paths (``simhw``).
* ``SC105`` — iteration over ``set`` values in ``repro`` compute paths:
  hash-randomized order silently breaks bit-reproducibility (iterate
  ``sorted(...)`` or ``dict.fromkeys(...)`` instead).
* ``SC106`` — bare ``except:`` / ``except Exception: pass`` swallowing.
* ``SC107`` — ``os.environ`` / ``os.getenv`` reads outside ``utils``:
  configuration enters through explicit parameters, not ambient state.
* ``SC199`` — a suppression comment that suppressed nothing (stale
  suppressions must not accumulate).

Suppressions are real comments (string literals never count): a comment
containing the token ``selfcheck: allow`` suppresses every rule on that
line, and the rule-scoped form ``allow[SC103]`` (or ``allow[SC101,SC103]``)
suppresses only the named rules.

Runnable as ``python -m repro.analysis.lint [--format json] [paths...]``
(defaults to ``src/``; exit 1 on violations, 2 on a missing path).
"""

from __future__ import annotations

import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Path suffix (POSIX) of the one blessed home of ``np.random``.
RNG_MODULE_SUFFIX = "repro/utils/rng.py"

#: The suppression comment token.  Kept as two concatenated halves so the
#: lint's own source does not read as a (stale) suppression comment.
SUPPRESS_TOKEN = "selfcheck: " + "allow"

_SUPPRESS_RE = re.compile(re.escape(SUPPRESS_TOKEN) + r"(?:\[([A-Z0-9, ]+)\])?")

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "OrderedDict", "Counter"})


@dataclass(frozen=True)
class LintViolation:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}


@dataclass(frozen=True)
class PathScope:
    """Which files a rule applies to, by path structure.

    ``any_parts`` — at least one path component must match (``None`` =
    everywhere); ``not_parts`` — no component may match; ``only_suffix``
    — restrict to one module (POSIX ``endswith``); ``skip_suffix`` —
    exempt one module.
    """

    any_parts: frozenset[str] | None = None
    not_parts: frozenset[str] = frozenset()
    only_suffix: str = ""
    skip_suffix: str = ""

    def matches(self, path: str) -> bool:
        posix = Path(path).as_posix()
        parts = set(Path(posix).parts)
        if self.only_suffix and not posix.endswith(self.only_suffix):
            return False
        if self.skip_suffix and posix.endswith(self.skip_suffix):
            return False
        if self.any_parts is not None and not (self.any_parts & parts):
            return False
        return not (self.not_parts & parts)


class FileContext:
    """Per-file state shared by all rules during one walk."""

    def __init__(self, path: str):
        self.path = path
        self.numpy_aliases: set[str] = set()
        self.os_aliases: set[str] = set()

    def track_imports(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    self.numpy_aliases.add(alias.asname or "numpy")
                elif alias.name == "os":
                    self.os_aliases.add(alias.asname or "os")


class LintRule:
    """One lint rule: id, description, path scope, and a node check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding ``(node, message)`` findings for nodes whose type is in
    ``node_types``.  The framework handles scoping, suppression, and
    ordering.
    """

    id: str = ""
    description: str = ""
    scope: PathScope = PathScope()
    node_types: tuple[type, ...] = ()

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        raise NotImplementedError
        yield  # pragma: no cover


# -- the rules ---------------------------------------------------------------


class ParseErrorRule(LintRule):
    """SC100 is framework-level (no AST to walk); registered for the
    inventory and the JSON report only."""

    id = "SC100"
    description = "file does not parse (SyntaxError)"

    def check(self, node, ctx):
        return iter(())


class NoGlobalNumpyRandom(LintRule):
    id = "SC101"
    description = "np.random access outside repro.utils.rng (use named seeded streams)"
    scope = PathScope(skip_suffix=RNG_MODULE_SUFFIX)
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    def check(self, node, ctx):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("numpy.random"):
                    yield node, f"import of {alias.name}"
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.startswith("numpy.random"):
                yield node, f"import from {module}"
            elif module == "numpy" and any(a.name == "random" for a in node.names):
                yield node, "import of numpy.random"
        else:
            # Flag np.random.<fn>(...) calls; a bare np.random.Generator
            # type hint is fine — only invoking the global RNG violates.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in ctx.numpy_aliases
            ):
                yield node, f"call to np.random.{func.attr}"


class NoMutableDefaults(LintRule):
    id = "SC102"
    description = "mutable default argument"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def check(self, node, ctx):
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                yield default, f"in signature of {node.name}()"
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            ):
                yield default, f"{default.func.id}() call in signature of {node.name}()"


class NoFloat64InComputePaths(LintRule):
    id = "SC103"
    description = "float64 literal in an NN compute path (float32 only)"
    scope = PathScope(any_parts=frozenset({"nn", "core", "simhw"}))
    node_types = (ast.Attribute, ast.Constant)

    def check(self, node, ctx):
        if isinstance(node, ast.Attribute):
            if node.attr == "float64":
                yield node, "np.float64 reference"
        elif node.value == "float64":
            yield node, '"float64" literal'


class NoWallClockInSimhw(LintRule):
    id = "SC104"
    description = "time module in a simhw measurement path (simulated latency must be wall-clock-free)"
    scope = PathScope(any_parts=frozenset({"simhw"}))
    node_types = (ast.Import, ast.ImportFrom)

    def check(self, node, ctx):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time" or alias.name.startswith("time."):
                    yield node, f"import of {alias.name}"
        else:
            module = node.module or ""
            if module == "time" or module.startswith("time."):
                yield node, f"import from {module}"


class NoSetIteration(LintRule):
    id = "SC105"
    description = "iteration over set values in a repro compute path (hash order breaks bit-reproducibility)"
    scope = PathScope(any_parts=frozenset({"repro"}), not_parts=frozenset({"utils"}))
    node_types = (ast.For, ast.AsyncFor, ast.comprehension)

    _SET_CALLS = frozenset({"set", "frozenset"})

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._SET_CALLS
        )

    def check(self, node, ctx):
        iter_expr = node.iter
        if self._is_set_expr(iter_expr):
            yield iter_expr, "iterating a set (use sorted(...) or dict.fromkeys(...))"
        elif (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Name)
            and iter_expr.func.id == "enumerate"
            and iter_expr.args
            and self._is_set_expr(iter_expr.args[0])
        ):
            yield iter_expr, "enumerating a set (use sorted(...) or dict.fromkeys(...))"


class NoExceptionSwallowing(LintRule):
    id = "SC106"
    description = "bare except or except-and-pass swallowing"
    node_types = (ast.ExceptHandler,)

    _BROAD = frozenset({"Exception", "BaseException"})

    def _is_broad(self, type_node: ast.expr | None) -> bool:
        if isinstance(type_node, ast.Name):
            return type_node.id in self._BROAD
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(e) for e in type_node.elts)
        return False

    def check(self, node, ctx):
        if node.type is None:
            yield node, "bare except: (name the exception type)"
            return
        body_is_noop = all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
            for stmt in node.body
        )
        if body_is_noop and self._is_broad(node.type):
            yield node, "except Exception: pass swallows errors silently"


class NoAmbientEnviron(LintRule):
    id = "SC107"
    description = "os.environ read outside utils (configuration must be explicit)"
    scope = PathScope(any_parts=frozenset({"repro"}), not_parts=frozenset({"utils"}))
    node_types = (ast.Attribute, ast.Call, ast.ImportFrom)

    def check(self, node, ctx):
        if isinstance(node, ast.ImportFrom):
            if (node.module or "") == "os":
                for alias in node.names:
                    if alias.name in ("environ", "getenv"):
                        yield node, f"import of os.{alias.name}"
        elif isinstance(node, ast.Attribute):
            if (
                node.attr == "environ"
                and isinstance(node.value, ast.Name)
                and node.value.id in ctx.os_aliases
            ):
                yield node, "os.environ access"
        else:
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "getenv"
                and isinstance(func.value, ast.Name)
                and func.value.id in ctx.os_aliases
            ):
                yield node, "os.getenv() call"


class UnusedSuppressionRule(LintRule):
    """SC199 is framework-level (computed after the walk); registered for
    the inventory and the JSON report only."""

    id = "SC199"
    description = "suppression comment that suppressed nothing"

    def check(self, node, ctx):
        return iter(())


#: The registry, in reporting order.  Adding a rule = adding a class here.
RULE_REGISTRY: tuple[LintRule, ...] = (
    ParseErrorRule(),
    NoGlobalNumpyRandom(),
    NoMutableDefaults(),
    NoFloat64InComputePaths(),
    NoWallClockInSimhw(),
    NoSetIteration(),
    NoExceptionSwallowing(),
    NoAmbientEnviron(),
    UnusedSuppressionRule(),
)

#: id -> description, for docs and the CLI (back-compat with selfcheck.RULES).
RULES: dict[str, str] = {rule.id: rule.description for rule in RULE_REGISTRY}


# -- suppression handling ----------------------------------------------------


def _comment_suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """line -> suppressed rule ids (``None`` = all rules), from *comments*
    only — the token inside a string literal never suppresses anything."""
    suppressions: dict[int, frozenset[str] | None] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if not match:
            continue
        scoped = match.group(1)
        line = tok.start[0]
        if scoped is None:
            suppressions[line] = None
        else:
            ids = frozenset(s.strip() for s in scoped.split(",") if s.strip())
            prev = suppressions.get(line)
            if prev is None and line in suppressions:
                continue  # an all-rule token on the same line wins
            suppressions[line] = ids | (prev or frozenset())
    return suppressions


# -- the driver --------------------------------------------------------------


class _Walker(ast.NodeVisitor):
    """One document-order walk dispatching nodes to the in-scope rules."""

    def __init__(self, path: str, rules: "list[LintRule]"):
        self.ctx = FileContext(path)
        self.findings: list[tuple[str, int, str]] = []  # (rule id, line, message)
        self._dispatch: dict[type, list[LintRule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)
        # ast.comprehension is not visited by generic_visit's class-name
        # dispatch, so comprehension-interested rules hook the parents.
        self._comp_rules = self._dispatch.get(ast.comprehension, [])

    def generic_visit(self, node: ast.AST) -> None:
        self.ctx.track_imports(node)
        for rule in self._dispatch.get(type(node), ()):
            for found, message in rule.check(node, self.ctx):
                line = getattr(found, "lineno", getattr(node, "lineno", 0))
                self.findings.append((rule.id, line, message))
        if self._comp_rules and isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for comp in node.generators:
                for rule in self._comp_rules:
                    for found, message in rule.check(comp, self.ctx):
                        line = getattr(found, "lineno", getattr(node, "lineno", 0))
                        self.findings.append((rule.id, line, message))
        super().generic_visit(node)


def check_source(source: str, path: str) -> list[LintViolation]:
    """Lint one module's source text; ``path`` scopes the path-based rules."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintViolation(path, exc.lineno or 0, "SC100", f"unparseable: {exc.msg}")]
    rules = [r for r in RULE_REGISTRY if r.node_types and r.scope.matches(path)]
    walker = _Walker(path, rules)
    walker.visit(tree)

    suppressions = _comment_suppressions(source)
    used_lines: set[int] = set()
    violations: list[LintViolation] = []
    for rule_id, line, message in walker.findings:
        if line in suppressions:
            scope = suppressions[line]
            if scope is None or rule_id in scope:
                used_lines.add(line)
                continue
        violations.append(LintViolation(path, line, rule_id, message))
    for line in suppressions:
        if line not in used_lines:
            violations.append(
                LintViolation(path, line, "SC199", "unused suppression comment")
            )
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def check_file(path: Path, display_path: str | None = None) -> list[LintViolation]:
    # Explicit utf-8: the platform default (cp1252 on Windows, or any
    # POSIX locale override) would mis-read non-ASCII comments.
    return check_source(path.read_text(encoding="utf-8"), display_path or str(path))


def check_tree(root: Path) -> list[LintViolation]:
    """Lint every ``*.py`` file under ``root`` (or ``root`` itself)."""
    root = Path(root)
    files = [root] if root.is_file() else sorted(root.rglob("*.py"))
    violations: list[LintViolation] = []
    for f in files:
        violations.extend(check_file(f))
    return violations


def main(argv: "list[str] | None" = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    fmt = "text"
    if "--format" in args:
        at = args.index("--format")
        try:
            fmt = args[at + 1]
        except IndexError:
            print("lint: --format needs an argument (text|json)", file=sys.stderr)
            return 2
        del args[at : at + 2]
    if fmt not in ("text", "json"):
        print(f"lint: unknown format {fmt!r} (text|json)", file=sys.stderr)
        return 2
    roots = [Path(a) for a in args] or [Path("src")]
    violations: list[LintViolation] = []
    for root in roots:
        if not root.exists():
            print(f"selfcheck: path {root} does not exist", file=sys.stderr)
            return 2
        violations.extend(check_tree(root))
    if fmt == "json":
        print(json.dumps({
            "rules": RULES,
            "checked": [str(r) for r in roots],
            "violations": [v.to_json() for v in violations],
        }, indent=2))
        return 1 if violations else 0
    for v in violations:
        print(v)
    if violations:
        print(f"selfcheck: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    checked = ", ".join(str(r) for r in roots)
    print(f"selfcheck: clean ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = [
    "FileContext",
    "LintRule",
    "LintViolation",
    "PathScope",
    "RNG_MODULE_SUFFIX",
    "RULES",
    "RULE_REGISTRY",
    "SUPPRESS_TOKEN",
    "check_file",
    "check_source",
    "check_tree",
    "main",
]
