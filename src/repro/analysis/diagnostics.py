"""Structured diagnostics and the error-code taxonomy.

Every finding of the static verifier is a :class:`Diagnostic` carrying a
stable code, a severity, the index of the offending primitive, and a
human-readable message.  The taxonomy:

* ``E1xx`` — structural rules, checkable per primitive (bad factors,
  incomplete permutations, unknown annotation tokens, bad references).
* ``E2xx`` — dataflow rules over the whole sequence, via the axis-liveness
  lattice (dead/undefined axes, duplicate definitions, stage conflicts).
* ``W3xx`` — performance smells that are legal but suspicious (extents
  that trigger the simulated cache-set / shared-memory-bank conflict
  terms, oversized unroll pragmas, degenerate splits).

Codes are load-bearing: tests, dataset filters, and the autotuner's
mutation screen key on them, so existing codes must never be renumbered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable


class Severity(IntEnum):
    INFO = 20
    WARNING = 30
    ERROR = 40


#: code -> one-line rule description (the taxonomy table in DESIGN.md is
#: generated from this mapping; keep the two in sync via ``taxonomy_table``).
CODES: dict[str, str] = {
    "E101": "malformed primitive: unknown kind, wrong arity, or bad parameter shape",
    "E102": "split factor is not a positive integer",
    "E103": "split factors do not cover the axis extent within the padding allowance",
    "E104": "reorder is not a complete permutation of the live loop order",
    "E105": "unknown annotation or pragma token",
    "E106": "GPU thread bind under a non-GPU target",
    "E107": "follow-split references a step that is absent, not a split, or not strictly earlier in the sequence",
    "E108": "split carries an extent that disagrees with the tracked extent",
    "E109": "fuse names fewer than two axes or non-adjacent axes",
    "E201": "reference to an axis that was never defined",
    "E202": "reference to a consumed (dead) axis",
    "E203": "axis defined twice",
    "E204": "rfactor of a non-reduction axis",
    "E205": "conflicting annotations: axis annotated twice or thread tag bound twice",
    "E206": "stage conflict: compute-inline combined with CHW/CA/CP/RF or followed by more primitives",
    "W301": "middle-loop extent is a large power of two (cache-set / bank conflict smell)",
    "W302": "auto_unroll_max_step exceeds the platform unroll cap",
    "W303": "degenerate split factor (1 or the full extent)",
    "W304": "static outer-tile footprint exceeds the smallest last-level cache of the target",
    "W305": "parallel annotation on an axis with abstract extent below the core count",
    "W306": "unroll directive whose statically-bounded body blows the icache budget",
}


def severity_of(code: str) -> Severity:
    return Severity.ERROR if code.startswith("E") else Severity.WARNING


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding, anchored to a primitive index (-1 = sequence-level)."""

    code: str
    severity: Severity
    primitive_index: int
    message: str
    axis: str = field(default="")

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def is_error(self) -> bool:
        return self.severity >= Severity.ERROR

    def __str__(self) -> str:
        where = f"@{self.primitive_index}" if self.primitive_index >= 0 else "@seq"
        return f"{self.code}[{self.severity.name.lower()}]{where}: {self.message}"


def make(code: str, primitive_index: int, message: str, axis: str = "") -> Diagnostic:
    """Build a diagnostic with the severity implied by its code prefix."""
    return Diagnostic(code, severity_of(code), primitive_index, message, axis)


def errors(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    return [d for d in diagnostics if d.is_error]


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.is_error for d in diagnostics)


def format_diagnostics(diagnostics: Iterable[Diagnostic]) -> str:
    return "\n".join(str(d) for d in diagnostics) or "<clean>"


def taxonomy_table() -> str:
    """The taxonomy as a markdown table (kept in sync with DESIGN.md)."""
    lines = ["| Code | Severity | Rule |", "|---|---|---|"]
    for code, rule in CODES.items():
        lines.append(f"| {code} | {severity_of(code).name.lower()} | {rule} |")
    return "\n".join(lines)


class InvalidScheduleError(Exception):
    """Raised by fail-closed callers when a sequence has error diagnostics."""

    def __init__(self, message: str, diagnostics: list[Diagnostic]):
        super().__init__(f"{message}\n{format_diagnostics(diagnostics)}")
        self.diagnostics = diagnostics


__all__ = [
    "CODES",
    "Diagnostic",
    "InvalidScheduleError",
    "Severity",
    "errors",
    "format_diagnostics",
    "has_errors",
    "make",
    "severity_of",
    "taxonomy_table",
]
