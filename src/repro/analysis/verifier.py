"""Static verification of schedule primitive sequences.

Checks a primitive sequence against its subgraph *without* applying the
schedule or simulating latency: per-primitive structural rules (E1xx), a
whole-sequence dataflow pass over an axis-liveness lattice (E2xx), and
performance-smell warnings (W3xx).  See ``repro.analysis.diagnostics`` for
the code taxonomy.

The liveness lattice tracks each axis name through
``UNDEFINED -> LIVE -> CONSUMED``: subgraph axes start LIVE; SP/FSP and FU
consume their inputs and define fresh axes; every other primitive may only
reference LIVE axes.  The verifier never raises on bad input — it records
diagnostics and recovers best-effort so one corrupt step does not mask
later ones.  The contract with ``repro.tensorir.schedule`` (enforced by
property tests) is: a sequence with zero error diagnostics always applies
without exception.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

from repro.analysis import absint
from repro.analysis.diagnostics import Diagnostic, InvalidScheduleError, errors, make
from repro.simhw.cache import POW2_CONFLICT_THRESHOLD
from repro.tensorir.primitives import (
    ANNOTATIONS,
    ARITY,
    GPU_BIND_PREFIX,
    KIND_BY_VALUE,
    PRAGMAS,
    Primitive,
    PrimitiveKind,
    fused_name,
    split_names,
)
from repro.tensorir.schedule import PAD_ALLOWANCE, Schedule, split_parts
from repro.tensorir.subgraph import Subgraph


@dataclass(frozen=True)
class VerifierConfig:
    """Tunable thresholds for the structural rules and smell detectors."""

    #: Max allowed ratio of padded iterations to the true extent for one
    #: split (DESIGN.md §6: bounded padding keeps latency spreads sane).
    #: Defaults to the same constant the sampler's by-construction check
    #: uses, so the two cannot drift.
    pad_allowance: float = PAD_ALLOWANCE
    #: Middle-loop extents >= this that are powers of two trigger W301.
    #: The default is ``repro.simhw.cache.POW2_CONFLICT_THRESHOLD`` — one
    #: shared constant, so the static smell marks exactly what the
    #: simulated hardware punishes.
    pow2_conflict_threshold: int = POW2_CONFLICT_THRESHOLD
    #: ``auto_unroll_max_step`` values above this trigger W302.
    max_auto_unroll: int = 512
    #: Run the abstract interpreter on error-free sequences to emit the
    #: W304–W306 smells.  Only the full-diagnostics mode pays for it —
    #: ``stop_on_error`` callers (the generate/score hot paths) skip it.
    absint_smells: bool = True
    #: Thresholds for W304/W305/W306; ``None`` derives each from the
    #: worst platform of the target (see ``repro.analysis.absint``).
    footprint_llc_kb: float | None = None
    parallel_min_extent: int | None = None
    unroll_body_budget: int | None = None


class _Liveness(Enum):
    LIVE = "live"
    CONSUMED = "consumed"


@dataclass
class _AxisState:
    extent: int
    is_reduction: bool
    status: _Liveness = _Liveness.LIVE
    defined_at: int = -1
    consumed_at: int | None = None
    kind_annotation: str = ""


# Shared with the abstract interpreter via ``repro.tensorir.primitives``
# so the E101 rule and absint's structural checks cannot drift.
_ARITY = ARITY
_KIND_BY_VALUE = KIND_BY_VALUE


class SequenceVerifier:
    """Verifies primitive sequences against one subgraph and target.

    One instance is reusable across sequences: the per-kind visit dispatch
    and the subgraph's initial axis table are precomputed at construction,
    and :meth:`verify` resets only the per-sequence state.  That is what
    makes :func:`verify_many` cheaper than constructing a verifier per
    sequence in a Python loop.
    """

    def __init__(
        self, subgraph: Subgraph, target: str = "cpu", config: VerifierConfig | None = None
    ):
        self.subgraph = subgraph
        self.target = target
        self.config = config or VerifierConfig()
        self._dispatch = {
            kind: getattr(self, f"_visit_{kind.value.lower()}") for kind in PrimitiveKind
        }
        self._axis_init = tuple((a.name, a.extent, a.is_reduction) for a in subgraph.axes)

    def _reset(self, primitives: tuple[Primitive, ...]) -> None:
        self.diags: list[Diagnostic] = []
        self.axes: dict[str, _AxisState] = {
            name: _AxisState(extent, is_red) for name, extent, is_red in self._axis_init
        }
        self.order: list[str] = [name for name, _, _ in self._axis_init]
        self.bound_tags: set[str] = set()
        self.cache_write = False
        self.compute_at = False
        self.compute_root = False
        self.rfactored = False
        self._inlined_at: int | None = None
        self.primitives = tuple(primitives)

    def verify(
        self, primitives: tuple[Primitive, ...], *, stop_on_error: bool = False
    ) -> list[Diagnostic]:
        """Verify one sequence, returning its diagnostics.

        With ``stop_on_error`` the pass returns after the first primitive
        that produced an error diagnostic — the hot-path mode for callers
        that only gate on validity (warnings before the stop are kept).
        """
        self._reset(primitives)
        diags = self.diags
        dispatch = self._dispatch
        for index, prim in enumerate(self.primitives):
            checkpoint = len(diags)
            kind = _KIND_BY_VALUE.get(prim.kind)
            if kind is None:
                self._emit("E101", index, f"unknown primitive kind {prim.kind!r}")
            elif self._inlined_at is not None:
                self._emit(
                    "E206", index, f"{kind.value} after compute-inline at step {self._inlined_at}"
                )
                break
            elif self._check_arity(kind, prim, index):
                dispatch[kind](prim, index)
            if stop_on_error and any(d.is_error for d in diags[checkpoint:]):
                break
        if (
            not stop_on_error
            and self.config.absint_smells
            and not any(d.is_error for d in diags)
        ):
            # Error-free sequence: derive the W304–W306 smells from the
            # abstract interpreter's facts.  Fast-path callers gate on
            # validity only and never reach this.
            diags.extend(
                absint.smell_diagnostics(
                    self.subgraph,
                    self.primitives,
                    self.target,
                    llc_kb=self.config.footprint_llc_kb,
                    min_parallel_extent=self.config.parallel_min_extent,
                    unroll_body_budget=self.config.unroll_body_budget,
                )
            )
        return diags

    # -- plumbing -------------------------------------------------------

    def _emit(self, code: str, index: int, message: str, axis: str = "") -> None:
        self.diags.append(make(code, index, message, axis))

    def _check_arity(self, kind: PrimitiveKind, prim: Primitive, index: int) -> bool:
        n_axes, min_ints, max_ints, needs_attr = _ARITY[kind]
        ok = True
        if n_axes is not None and len(prim.axes) != n_axes:
            self._emit("E101", index, f"{kind.value} expects {n_axes} axis, got {len(prim.axes)}")
            ok = False
        if len(prim.ints) < min_ints or (max_ints is not None and len(prim.ints) > max_ints):
            self._emit("E101", index, f"{kind.value} has bad numeric arity {list(prim.ints)}")
            ok = False
        if needs_attr and not prim.attr:
            self._emit("E101", index, f"{kind.value} requires an attr token")
            ok = False
        return ok

    def _resolve(self, axis: str, index: int) -> _AxisState | None:
        state = self.axes.get(axis)
        if state is None:
            self._emit("E201", index, f"axis {axis!r} was never defined", axis)
            return None
        if state.status is _Liveness.CONSUMED:
            self._emit(
                "E202",
                index,
                f"axis {axis!r} was consumed at step {state.consumed_at}",
                axis,
            )
            return None
        return state

    def _consume(self, axis: str, index: int) -> None:
        state = self.axes[axis]
        state.status = _Liveness.CONSUMED
        state.consumed_at = index
        self.order.remove(axis)

    def _define(self, axis: str, extent: int, is_reduction: bool, index: int, at: int) -> None:
        if axis in self.axes:
            self._emit("E203", index, f"axis {axis!r} defined twice", axis)
            return
        self.axes[axis] = _AxisState(extent, is_reduction, defined_at=index)
        self.order.insert(at, axis)

    # -- split family ---------------------------------------------------

    def _visit_split(
        self, prim: Primitive, index: int, factors: tuple[int, ...], check_factors: bool
    ) -> None:
        (axis,) = prim.axes
        carried_extent = prim.ints[0]
        if check_factors:
            bad = [f for f in factors if not isinstance(f, int) or f < 1]
            if bad:
                self._emit("E102", index, f"split of {axis!r} has non-positive factors {bad}", axis)
                return
        state = self._resolve(axis, index)
        if state is None:
            return
        if carried_extent != state.extent:
            self._emit(
                "E108",
                index,
                f"split of {axis!r} carries extent {carried_extent}, tracked extent is {state.extent}",
                axis,
            )
        extent = state.extent
        parts = split_parts(extent, factors)
        padded = math.prod(parts)
        if padded > extent * (1.0 + self.config.pad_allowance):
            self._emit(
                "E103",
                index,
                f"split of {axis!r} pads {extent} to {padded}, beyond the "
                f"{self.config.pad_allowance:.0%} allowance",
                axis,
            )
            return
        for f in factors:
            if f == 1 or f == extent:
                self._emit("W303", index, f"degenerate split factor {f} on {axis!r}", axis)
        for f in factors[:-1]:
            if f >= self.config.pow2_conflict_threshold and (f & (f - 1)) == 0:
                self._emit(
                    "W301",
                    index,
                    f"middle-loop extent {f} on {axis!r} is a large power of two "
                    "(cache-set / bank conflict smell)",
                    axis,
                )
        at = self.order.index(axis)
        self._consume(axis, index)
        for offset, (name, part_extent) in enumerate(zip(split_names(axis, len(parts)), parts)):
            self._define(name, part_extent, state.is_reduction, index, at + offset)

    def _visit_sp(self, prim: Primitive, index: int) -> None:
        self._visit_split(prim, index, tuple(prim.ints[1:]), check_factors=True)

    def _visit_fsp(self, prim: Primitive, index: int) -> None:
        (axis,) = prim.axes
        src_step = prim.ints[1]
        if not 0 <= src_step < len(self.primitives):
            self._emit("E107", index, f"follow-split references missing step {src_step}", axis)
            return
        if src_step >= index:
            # Ansor traces are strictly causal: a follow-split can only
            # reuse the factors of a step that already executed.  A
            # forward (or self) reference would make the applier read
            # factors from a step that has not run yet.
            self._emit(
                "E107",
                index,
                f"follow-split references step {src_step}, which is not strictly "
                f"earlier than step {index}",
                axis,
            )
            return
        src = self.primitives[src_step]
        if src.kind is not PrimitiveKind.SP or len(src.ints) < 2:
            self._emit(
                "E107", index, f"follow-split references step {src_step} which is not a split", axis
            )
            return
        factors = tuple(src.ints[1:])
        if any(not isinstance(f, int) or f < 1 for f in factors):
            self._emit("E102", index, f"followed split has non-positive factors {factors}", axis)
            return
        self._visit_split(prim, index, factors, check_factors=False)

    # -- order primitives -----------------------------------------------

    def _visit_re(self, prim: Primitive, index: int) -> None:
        named = list(prim.axes)
        # dict.fromkeys, not set(): diagnostic emission order must not
        # depend on string hashing (bit-reproducibility, lint rule SC105).
        for axis in dict.fromkeys(named):
            self._resolve(axis, index)
        if sorted(named) != sorted(self.order):
            missing = sorted(set(self.order) - set(named))
            extra = sorted(set(named) - set(self.order))
            dupes = sorted({a for a in named if named.count(a) > 1})
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"extra {extra}")
            if dupes:
                detail.append(f"duplicated {dupes}")
            self._emit(
                "E104",
                index,
                f"reorder is not a permutation of the live order ({'; '.join(detail)})",
            )
            return
        self.order = named

    def _visit_fu(self, prim: Primitive, index: int) -> None:
        named = list(prim.axes)
        if len(named) < 2 or len(set(named)) != len(named):
            self._emit("E109", index, f"fuse needs >=2 distinct axes, got {named}")
            return
        states = [self._resolve(a, index) for a in named]
        if any(s is None for s in states):
            return
        positions = [self.order.index(a) for a in named]
        if positions != list(range(positions[0], positions[0] + len(positions))):
            self._emit("E109", index, f"fuse axes {named} are not adjacent in {self.order}")
            return
        extent = math.prod(s.extent for s in states)
        is_reduction = any(s.is_reduction for s in states)
        at = positions[0]
        for a in named:
            self._consume(a, index)
        self._define(fused_name(tuple(named)), extent, is_reduction, index, at)

    # -- annotation primitives ------------------------------------------

    def _visit_an(self, prim: Primitive, index: int) -> None:
        (axis,) = prim.axes
        if prim.attr not in ANNOTATIONS:
            self._emit("E105", index, f"unknown annotation {prim.attr!r}", axis)
            return
        is_bind = prim.attr.startswith(GPU_BIND_PREFIX)
        if is_bind and self.target != "gpu":
            self._emit(
                "E106", index, f"GPU bind {prim.attr!r} under target {self.target!r}", axis
            )
            return
        state = self._resolve(axis, index)
        if state is None:
            return
        if state.kind_annotation:
            self._emit(
                "E205",
                index,
                f"axis {axis!r} already annotated {state.kind_annotation!r}",
                axis,
            )
            return
        if is_bind:
            tag = prim.attr[len(GPU_BIND_PREFIX) :]
            if tag in self.bound_tags:
                self._emit("E205", index, f"thread tag {tag!r} bound twice", axis)
                return
            self.bound_tags.add(tag)
        state.kind_annotation = prim.attr

    def _visit_pr(self, prim: Primitive, index: int) -> None:
        (axis,) = prim.axes
        if prim.attr not in PRAGMAS:
            self._emit("E105", index, f"unknown pragma {prim.attr!r}", axis)
            return
        if self._resolve(axis, index) is None:
            return
        if prim.attr == "auto_unroll_max_step" and prim.ints[0] > self.config.max_auto_unroll:
            self._emit(
                "W302",
                index,
                f"auto_unroll_max_step {prim.ints[0]} exceeds cap {self.config.max_auto_unroll}",
                axis,
            )

    # -- stage primitives -----------------------------------------------

    def _visit_ca(self, prim: Primitive, index: int) -> None:
        (axis,) = prim.axes
        if self._resolve(axis, index) is None:
            return
        self.compute_at = True

    def _visit_chw(self, prim: Primitive, index: int) -> None:
        self.cache_write = True

    def _visit_rf(self, prim: Primitive, index: int) -> None:
        (axis,) = prim.axes
        state = self._resolve(axis, index)
        if state is None:
            return
        if not state.is_reduction:
            self._emit("E204", index, f"rfactor of non-reduction axis {axis!r}", axis)
            return
        self.rfactored = True

    def _visit_ci(self, prim: Primitive, index: int) -> None:
        conflicts = [
            name
            for name, flag in (
                ("CHW", self.cache_write),
                ("CA", self.compute_at),
                ("CP", self.compute_root),
                ("RF", self.rfactored),
            )
            if flag
        ]
        if conflicts:
            self._emit("E206", index, f"compute-inline conflicts with {'/'.join(conflicts)}")
            return
        self._inlined_at = index

    def _visit_cp(self, prim: Primitive, index: int) -> None:
        self.compute_root = True


def verify_sequence(
    subgraph: Subgraph,
    primitives: tuple[Primitive, ...],
    target: str = "cpu",
    config: VerifierConfig | None = None,
) -> list[Diagnostic]:
    """Statically verify a primitive sequence against a subgraph."""
    return SequenceVerifier(subgraph, target, config).verify(tuple(primitives))


def verify_many(
    subgraph: Subgraph,
    sequences: "Iterable[tuple[Primitive, ...]]",
    target: str = "cpu",
    config: VerifierConfig | None = None,
    *,
    stop_on_error: bool = False,
) -> list[list[Diagnostic]]:
    """Verify a batch of sequences against one subgraph and target.

    Beats a Python loop of :func:`verify_sequence` by constructing the
    verifier (visit dispatch + initial axis table) once and resetting it
    per sequence; ``stop_on_error`` additionally early-exits each sequence
    at its first error — the screening mode for batch producers that only
    gate on validity.
    """
    verifier = SequenceVerifier(subgraph, target, config)
    return [
        verifier.verify(tuple(seq), stop_on_error=stop_on_error) for seq in sequences
    ]


def verify_schedule(schedule: Schedule, config: VerifierConfig | None = None) -> list[Diagnostic]:
    """Statically verify a :class:`Schedule` (sequence + subgraph + target)."""
    return verify_sequence(schedule.subgraph, schedule.primitives, schedule.target, config)


def assert_valid(schedule: Schedule, config: VerifierConfig | None = None) -> list[Diagnostic]:
    """Fail-closed gate: raise on any error diagnostic, return all diagnostics.

    This is what the sampler (and later: dataset generation, autotuner
    mutation) calls on every sequence before it is allowed downstream.
    """
    diags = verify_schedule(schedule, config)
    bad = errors(diags)
    if bad:
        raise InvalidScheduleError(
            f"schedule of {schedule.subgraph.name!r} failed static verification", bad
        )
    return diags


def assert_valid_many(
    schedules: Sequence[Schedule], config: VerifierConfig | None = None
) -> list[list[Diagnostic]]:
    """Fail-closed gate over a batch: one verifier pass, raise on any error.

    The batch analogue of :func:`assert_valid` — what the sketch
    generator's batch sampling calls, so producing N schedules costs one
    verifier construction per (subgraph, target) run instead of N.
    Sequences are screened with per-sequence early exit; warnings on
    sequences before the failing one are still returned.
    """
    all_diags: list[list[Diagnostic]] = []
    verifier: SequenceVerifier | None = None
    key: tuple[int, str] | None = None
    for schedule in schedules:
        k = (id(schedule.subgraph), schedule.target)
        if verifier is None or k != key:
            verifier = SequenceVerifier(schedule.subgraph, schedule.target, config)
            key = k
        diags = verifier.verify(schedule.primitives, stop_on_error=True)
        bad = errors(diags)
        if bad:
            raise InvalidScheduleError(
                f"schedule of {schedule.subgraph.name!r} failed static verification", bad
            )
        all_diags.append(diags)
    return all_diags


__all__ = [
    "SequenceVerifier",
    "VerifierConfig",
    "assert_valid",
    "assert_valid_many",
    "verify_many",
    "verify_schedule",
    "verify_sequence",
]
