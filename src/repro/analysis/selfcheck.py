"""AST-based repo self-lint enforcing DESIGN.md §7 conventions.

Rules:

* ``SC101`` — no ``np.random`` / ``numpy.random`` access outside
  ``repro/utils/rng.py``: all randomness must flow through named, seeded
  streams or a ``Generator`` passed in by the caller.
* ``SC102`` — no mutable default arguments (``def f(x=[])`` and friends).
* ``SC103`` — no float64 literals (``np.float64`` / ``dtype="float64"``)
  in NN compute paths (modules under ``nn``/``core``/``simhw``): the NN
  substrate is pure float32.
* ``SC104`` — no ``time`` module in simulated-measurement paths (modules
  under ``simhw``): a simulated latency is a pure function of
  (subgraph, schedule, platform, root seed), and any wall-clock read in
  that path would silently break bit-reproducibility.

A line containing ``selfcheck: allow`` suppresses findings on that line.
Runnable as ``python -m repro.analysis.selfcheck [paths...]`` (defaults to
``src/``; exits 1 on violations) and importable from tests.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

#: Path suffixes (as POSIX strings) exempt from SC101 — the one blessed
#: home of ``np.random``.
RNG_MODULE_SUFFIX = "repro/utils/rng.py"

#: Path components marking float32-only compute paths for SC103.
COMPUTE_PATH_PARTS = frozenset({"nn", "core", "simhw"})

#: Path components marking deterministic simulated-measurement paths for
#: SC104 — no wall clock may leak into a simulated latency.
SIMHW_PATH_PARTS = frozenset({"simhw"})

SUPPRESS_TOKEN = "selfcheck: allow"

RULES: dict[str, str] = {
    "SC101": "np.random access outside repro.utils.rng (use named seeded streams)",
    "SC102": "mutable default argument",
    "SC103": "float64 literal in an NN compute path (float32 only)",
    "SC104": "time module in a simhw measurement path (simulated latency must be wall-clock-free)",
}

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "OrderedDict", "Counter"})


@dataclass(frozen=True)
class LintViolation:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: list[str]):
        self.path = path
        self.lines = source_lines
        self.violations: list[LintViolation] = []
        self.numpy_aliases: set[str] = set()
        posix = Path(path).as_posix()
        self.is_rng_module = posix.endswith(RNG_MODULE_SUFFIX)
        self.is_compute_path = bool(COMPUTE_PATH_PARTS & set(Path(posix).parts))
        self.is_simhw_path = bool(SIMHW_PATH_PARTS & set(Path(posix).parts))

    def _suppressed(self, lineno: int) -> bool:
        if 1 <= lineno <= len(self.lines):
            return SUPPRESS_TOKEN in self.lines[lineno - 1]
        return False

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if not self._suppressed(lineno):
            self.violations.append(LintViolation(self.path, lineno, rule, message))

    # -- SC101: unseeded randomness --------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self.numpy_aliases.add(alias.asname or "numpy")
            elif alias.name.startswith("numpy.random") and not self.is_rng_module:
                self._flag(node, "SC101", f"import of {alias.name}")
            if self.is_simhw_path and (alias.name == "time" or alias.name.startswith("time.")):
                self._flag(node, "SC104", f"import of {alias.name}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if not self.is_rng_module:
            if module.startswith("numpy.random"):
                self._flag(node, "SC101", f"import from {module}")
            elif module == "numpy" and any(a.name == "random" for a in node.names):
                self._flag(node, "SC101", "import of numpy.random")
        if self.is_simhw_path and (module == "time" or module.startswith("time.")):
            self._flag(node, "SC104", f"import from {module}")
        self.generic_visit(node)

    def _is_np_random(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.numpy_aliases
        )

    def visit_Call(self, node: ast.Call) -> None:
        # Flag np.random.<fn>(...) calls; bare np.random.Generator type
        # hints are fine — only invoking the global RNG is a violation.
        func = node.func
        if not self.is_rng_module and isinstance(func, ast.Attribute):
            if self._is_np_random(func.value):
                self._flag(node, "SC101", f"call to np.random.{func.attr}")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.is_compute_path and node.attr == "float64":
            self._flag(node, "SC103", "np.float64 reference")
        self.generic_visit(node)

    # -- SC102: mutable defaults -----------------------------------------

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self._flag(default, "SC102", f"in signature of {node.name}()")
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            ):
                self._flag(default, "SC102", f"{default.func.id}() call in signature of {node.name}()")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- SC103: float64 literals -----------------------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        if self.is_compute_path and node.value == "float64":
            self._flag(node, "SC103", '"float64" literal')
        self.generic_visit(node)


def check_source(source: str, path: str) -> list[LintViolation]:
    """Lint one module's source text; ``path`` scopes the path-based rules."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintViolation(path, exc.lineno or 0, "SC101", f"unparseable: {exc.msg}")]
    checker = _Checker(path, source.splitlines())
    checker.visit(tree)
    return sorted(checker.violations, key=lambda v: (v.path, v.line))


def check_file(path: Path, display_path: str | None = None) -> list[LintViolation]:
    return check_source(path.read_text(), display_path or str(path))


def check_tree(root: Path) -> list[LintViolation]:
    """Lint every ``*.py`` file under ``root`` (or ``root`` itself)."""
    root = Path(root)
    files = [root] if root.is_file() else sorted(root.rglob("*.py"))
    violations: list[LintViolation] = []
    for f in files:
        violations.extend(check_file(f))
    return violations


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    roots = [Path(a) for a in args] or [Path("src")]
    violations: list[LintViolation] = []
    for root in roots:
        if not root.exists():
            print(f"selfcheck: path {root} does not exist", file=sys.stderr)
            return 2
        violations.extend(check_tree(root))
    for v in violations:
        print(v)
    if violations:
        print(f"selfcheck: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    checked = ", ".join(str(r) for r in roots)
    print(f"selfcheck: clean ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
