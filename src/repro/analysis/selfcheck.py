"""Compatibility shim over :mod:`repro.analysis.lint`.

The original self-lint grew into a pluggable rule framework; this module
keeps the historical import surface (``check_source`` / ``check_file`` /
``check_tree`` / ``main`` / ``LintViolation`` / ``RULES`` /
``SUPPRESS_TOKEN``) and the ``python -m repro.analysis.selfcheck``
entry point alive.  New code should import :mod:`repro.analysis.lint`.
"""

from __future__ import annotations

import sys

from repro.analysis.lint import (
    RNG_MODULE_SUFFIX,
    RULES,
    SUPPRESS_TOKEN,
    LintViolation,
    check_file,
    check_source,
    check_tree,
    main,
)

__all__ = [
    "RNG_MODULE_SUFFIX",
    "RULES",
    "SUPPRESS_TOKEN",
    "LintViolation",
    "check_file",
    "check_source",
    "check_tree",
    "main",
]

if __name__ == "__main__":
    sys.exit(main())
