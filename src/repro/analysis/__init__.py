"""Static analysis: schedule-sequence verification and repo self-lint.

* ``verifier`` — checks primitive sequences against their subgraph without
  applying them (structural E1xx rules, axis-liveness E2xx dataflow,
  W3xx performance smells).
* ``diagnostics`` — the :class:`Diagnostic` record and error-code taxonomy.
* ``selfcheck`` — an AST lint enforcing DESIGN.md §7 conventions over the
  source tree (``python -m repro.analysis.selfcheck src/``).
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    InvalidScheduleError,
    Severity,
    errors,
    format_diagnostics,
    has_errors,
    taxonomy_table,
)
from repro.analysis.verifier import (
    SequenceVerifier,
    VerifierConfig,
    assert_valid,
    assert_valid_many,
    verify_many,
    verify_schedule,
    verify_sequence,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "InvalidScheduleError",
    "SequenceVerifier",
    "Severity",
    "VerifierConfig",
    "assert_valid",
    "assert_valid_many",
    "errors",
    "format_diagnostics",
    "has_errors",
    "taxonomy_table",
    "verify_many",
    "verify_schedule",
    "verify_sequence",
]
