"""Static analysis: schedule-sequence verification, abstract
interpretation, and the repo lint.

* ``verifier`` — checks primitive sequences against their subgraph without
  applying them (structural E1xx rules, axis-liveness E2xx dataflow,
  W3xx performance smells).
* ``diagnostics`` — the :class:`Diagnostic` record and error-code taxonomy.
* ``absint`` — abstract interpreter over the loop-nest interval domain:
  symbolic execution of a primitive sequence into a
  :class:`~repro.analysis.absint.StaticProfile` (static feature plane,
  draft scores for draft-then-verify ranking, W304–W306 smells) without
  applying the schedule.
* ``lint`` — pluggable AST rule framework enforcing DESIGN.md §7
  conventions over the source tree
  (``python -m repro.analysis.lint src/ tests/ benchmarks/``);
  ``selfcheck`` remains as its compatibility shim.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    InvalidScheduleError,
    Severity,
    errors,
    format_diagnostics,
    has_errors,
    taxonomy_table,
)
from repro.analysis.absint import (
    AbsIntError,
    StaticProfile,
    profile,
    profile_many,
)
from repro.analysis.verifier import (
    SequenceVerifier,
    VerifierConfig,
    assert_valid,
    assert_valid_many,
    verify_many,
    verify_schedule,
    verify_sequence,
)

__all__ = [
    "AbsIntError",
    "CODES",
    "Diagnostic",
    "InvalidScheduleError",
    "SequenceVerifier",
    "Severity",
    "StaticProfile",
    "VerifierConfig",
    "profile",
    "profile_many",
    "assert_valid",
    "assert_valid_many",
    "errors",
    "format_diagnostics",
    "has_errors",
    "taxonomy_table",
    "verify_many",
    "verify_schedule",
    "verify_sequence",
]
