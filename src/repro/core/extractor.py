"""Batch-throughput-first TLP feature extraction (Fig. 4/5).

Turns schedule-primitive sequences into the fixed-size float32 tensors
the TLP cost model consumes, *without* lowering to a tensor program —
the mechanism behind the paper's Figure 10 pipeline-speed claim.  The
canonical per-primitive triple (one-hot kind ++ char tokens ++ raw
numerics) comes from ``repro.core.abstract_primitive``; the Table 4
``seq_len x emb`` geometry from ``repro.core.postprocess``.

The extractor is engineered for the access pattern of evolutionary
search (thousands of candidates per round, heavy re-querying of
survivors across rounds):

* ``transform`` writes every sequence directly into one preallocated
  ``[N, seq_len, emb]`` batch tensor — no per-primitive Python feature
  objects, no per-sequence stack/pad allocations.
* Encoding is fused with the Table 4 crop: rows are materialized at
  ``emb`` width, never at the raw corpus-wide width.
* Per-primitive rows are memoized (``Primitive`` is frozen/hashable, and
  split/annotate steps repeat massively across a task's candidates), so
  a new sequence costs one dict probe + one 22-float copy per primitive.
* Whole encoded sequences live in a bounded content-keyed LRU (the key
  is the primitive tuple itself — hash probe plus equality check, so
  hash collisions cannot alias two sequences), making re-queries of
  previously scored candidates near-free.

``repro.core.extractor_reference`` keeps the deliberately naive
per-primitive implementation as the correctness oracle (property tests
pin bit-identical output) and the benchmark baseline.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence, Union

import numpy as np

from repro.core.abstract_primitive import N_KINDS, abstract
from repro.core.postprocess import PostprocessConfig
from repro.tensorir.primitives import Primitive
from repro.tensorir.schedule import Schedule

#: Reserved character-token ids: 0 pads, 1 marks characters unseen at fit
#: time.  Real characters are numbered from 2, in sorted order.
PAD_ID = 0
UNK_ID = 1
_FIRST_CHAR_ID = 2

#: One featurizable sequence: a schedule or a bare primitive tuple.
SequenceLike = Union[Schedule, Sequence[Primitive]]


def _primitives_of(seq: SequenceLike) -> tuple[Primitive, ...]:
    if isinstance(seq, Schedule):
        return seq.primitives
    return tuple(seq)


class TLPFeaturizer:
    """Vocabulary-fitted, batch-first schedule-sequence featurizer.

    ``fit`` scans a corpus once to build the character vocabulary and the
    raw (pre-crop) feature-row width; ``transform`` then encodes any
    batch of sequences into ``(X: float32 [N, seq_len, emb], mask:
    float32 [N, seq_len])``.  Fitted state lives in ``vocab_``,
    ``raw_width_`` and ``kind_widths_`` (per-kind max row width — the
    Table 1 statistic).
    """

    def __init__(self, config: PostprocessConfig | None = None, cache_size: int = 2048):
        self.config = config or PostprocessConfig()
        #: Capacity of the encoded-sequence LRU; 0 disables sequence
        #: caching (the per-primitive row memo is always on).
        self.cache_size = cache_size
        self.vocab_: dict[str, int] | None = None
        self.raw_width_: int | None = None
        self.kind_widths_: dict[str, int] = {}
        self._row_memo: dict[Primitive, np.ndarray] = {}
        self._seq_cache: OrderedDict[tuple[Primitive, ...], tuple[np.ndarray, int]] = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._rows_encoded = 0

    # -- fitting --------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self.vocab_ is not None

    def fit(self, corpus: Iterable[SequenceLike]) -> "TLPFeaturizer":
        """Build the char vocabulary and row geometry from a corpus."""
        chars: set[str] = set()
        max_payload = 0
        kind_widths: dict[str, int] = {}
        n_sequences = 0
        for seq in corpus:
            n_sequences += 1
            for prim in _primitives_of(seq):
                ap = abstract(prim)
                chars.update(ap.chars)
                max_payload = max(max_payload, ap.payload_length)
                kind = prim.kind.value
                kind_widths[kind] = max(
                    kind_widths.get(kind, 0), N_KINDS + ap.payload_length
                )
        if n_sequences == 0:
            raise ValueError("TLPFeaturizer.fit needs a non-empty corpus")
        self.vocab_ = {c: i for i, c in enumerate(sorted(chars), start=_FIRST_CHAR_ID)}
        self.raw_width_ = N_KINDS + max_payload
        self.kind_widths_ = kind_widths
        self.cache_clear()
        return self

    def fit_transform(
        self, corpus: Sequence[SequenceLike]
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.fit(corpus).transform(corpus)

    # -- transform ------------------------------------------------------

    def transform(self, sequences: Sequence[SequenceLike]) -> tuple[np.ndarray, np.ndarray]:
        """Encode a batch into ``(X [N, seq_len, emb], mask [N, seq_len])``.

        Deterministic for a fixed fit; cached re-queries return values
        bit-identical to a fresh encode.
        """
        if not self.is_fitted:
            raise RuntimeError("TLPFeaturizer.transform called before fit()")
        cfg = self.config
        X = np.zeros((len(sequences), cfg.seq_len, cfg.emb), dtype=np.float32)
        mask = np.zeros((len(sequences), cfg.seq_len), dtype=np.float32)
        cache = self._seq_cache
        if self.cache_size > 0:
            for i, seq in enumerate(sequences):
                prims = _primitives_of(seq)
                entry = cache.get(prims)
                if entry is None:
                    self._misses += 1
                    entry = self._encode(prims)
                    cache[prims] = entry
                    if len(cache) > self.cache_size:
                        cache.popitem(last=False)
                else:
                    self._hits += 1
                    cache.move_to_end(prims)
                encoded, length = entry
                X[i] = encoded
                mask[i, :length] = 1.0
        else:
            # No sequence LRU: skip the intermediate per-sequence array
            # and encode straight into the batch tensor.  Hit/miss
            # counters stay untouched — they describe the LRU, and a
            # disabled cache has no misses, only encodes.
            for i, seq in enumerate(sequences):
                length = self._encode_into(X[i], _primitives_of(seq))
                mask[i, :length] = 1.0
        return X, mask

    def transform_into(
        self,
        sequences: Sequence[SequenceLike],
        X: np.ndarray,
        mask: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encode a batch into caller-provided ``X``/``mask`` buffers.

        The buffer-donation path for long-running generators (the dataset
        shard writer): the same two tensors are rewritten batch after
        batch, so steady state performs zero tensor allocations — the
        only writes are memoized 22-float row copies.  The sequence LRU
        is bypassed (shard batches are fresh by construction; caching
        them would only grow the memo), so ``cache_info`` hit/miss
        counters are untouched.  Output is bit-identical to
        :meth:`transform` over the same sequences.

        ``X`` must be float32 ``[cap, seq_len, emb]`` and ``mask``
        float32 ``[cap, seq_len]`` with ``cap >= len(sequences)``; the
        written views ``X[:n], mask[:n]`` are returned.
        """
        if not self.is_fitted:
            raise RuntimeError("TLPFeaturizer.transform_into called before fit()")
        cfg = self.config
        n = len(sequences)
        if X.shape[1:] != (cfg.seq_len, cfg.emb) or X.shape[0] < n:
            raise ValueError(
                f"X buffer has shape {X.shape}, need [>= {n}, {cfg.seq_len}, {cfg.emb}]"
            )
        if mask.shape[1:] != (cfg.seq_len,) or mask.shape[0] < n:
            raise ValueError(
                f"mask buffer has shape {mask.shape}, need [>= {n}, {cfg.seq_len}]"
            )
        if X.dtype != np.float32 or mask.dtype != np.float32:
            raise ValueError(
                f"buffers must be float32, got X={X.dtype}, mask={mask.dtype}"
            )
        for i in range(n):
            length = self._encode_into(X[i], _primitives_of(sequences[i]))
            X[i, length:] = 0.0
            mask[i, :length] = 1.0
            mask[i, length:] = 0.0
        return X[:n], mask[:n]

    def _encode(self, prims: tuple[Primitive, ...]) -> tuple[np.ndarray, int]:
        cfg = self.config
        encoded = np.zeros((cfg.seq_len, cfg.emb), dtype=np.float32)
        return encoded, self._encode_into(encoded, prims)

    def _encode_into(self, out: np.ndarray, prims: tuple[Primitive, ...]) -> int:
        length = min(len(prims), self.config.seq_len)
        memo = self._row_memo
        for j in range(length):
            prim = prims[j]
            row = memo.get(prim)
            if row is None:
                row = self._encode_row(prim)
                memo[prim] = row
            out[j] = row
        return length

    def _encode_row(self, prim: Primitive) -> np.ndarray:
        """One primitive's feature row, crop fused in (width = ``emb``)."""
        emb = self.config.emb
        vocab = self.vocab_
        self._rows_encoded += 1
        row = np.zeros(emb, dtype=np.float32)
        ap = abstract(prim)
        if ap.kind_index < emb:
            row[ap.kind_index] = 1.0
        pos = N_KINDS
        for ch in ap.chars:
            if pos >= emb:
                return row
            row[pos] = vocab.get(ch, UNK_ID)
            pos += 1
        for value in ap.numerics:
            if pos >= emb:
                return row
            row[pos] = value
            pos += 1
        return row

    # -- cache introspection --------------------------------------------

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and occupancy of the sequence LRU.

        With ``cache_size=0`` the LRU does not exist, so ``hits`` and
        ``misses`` stay at 0 — a plain encode is not a miss of a cache
        that was never consulted.  ``rows_encoded`` counts row
        materializations (row-memo misses) — the allocation count the
        zero-alloc shard-writer tests pin.
        """
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._seq_cache),
            "capacity": self.cache_size,
            "row_memo_size": len(self._row_memo),
            "rows_encoded": self._rows_encoded,
        }

    def cache_clear(self) -> None:
        """Drop the sequence LRU *and* the per-primitive row memo.

        The LRU is bounded but the row memo is not — a long dataset
        generation run visits ever-new split factors, so the shard
        pipeline calls this between task batches to keep steady-state
        memory flat.  Hit/miss/rows-encoded counters reset with it; the
        fitted vocabulary is untouched, so subsequent encodes stay
        bit-identical.
        """
        self._seq_cache.clear()
        self._row_memo.clear()
        self._hits = 0
        self._misses = 0
        self._rows_encoded = 0


__all__ = ["PAD_ID", "UNK_ID", "SequenceLike", "TLPFeaturizer"]
