"""Top-k "best-found latency ratio" — the paper's Table 6/7 metric.

A cost model is only as good as the candidate the tuner ends up
measuring: the metric takes the model's top-k picks for one task, looks
up their *true* (simhw) latencies, and scores ``best true latency /
best latency among the picks``.  1.0 means the model's top-k contained
the true optimum; lower means the tuner would have settled for a slower
schedule.  Table 6/7 report the mean over held-out-network tasks at
k = 1 and k = 5.

The random baseline is computed *exactly* rather than by sampling:
for a uniformly random size-k subset of n candidates, the probability
that the best pick is the (i+1)-th fastest is ``C(n-1-i, k-1) / C(n, k)``,
so the expected score is a short weighted sum — deterministic, no RNG
stream to thread through evaluation.
"""

from __future__ import annotations

import math

import numpy as np


def top_k_score(scores: np.ndarray, latencies: np.ndarray, k: int) -> float:
    """Best-found latency ratio of the model's top-k picks for one group.

    ``scores`` are model outputs (higher = predicted faster);
    ``latencies`` the ground-truth cost of the same candidates.  Ties in
    scores break by index (stable argsort), matching how a tuner would
    consume a scored list.
    """
    # Evaluation arithmetic runs in float64 on purpose: these are report
    # numbers compared across runs, not training-path compute (SC103 is
    # about keeping the hot path float32).
    s = np.asarray(scores, dtype=np.float64).reshape(-1)  # selfcheck: allow[SC103]
    lat = np.asarray(latencies, dtype=np.float64).reshape(-1)  # selfcheck: allow[SC103]
    if s.shape != lat.shape:
        raise ValueError(f"scores shape {s.shape} != latencies shape {lat.shape}")
    if s.shape[0] == 0:
        raise ValueError("top_k_score needs at least one candidate")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if np.any(lat <= 0.0):
        raise ValueError("latencies must be positive")
    picks = np.argsort(-s, kind="stable")[:k]
    return float(lat.min() / lat[picks].min())


def random_top_k_score(latencies: np.ndarray, k: int) -> float:
    """Exact expected :func:`top_k_score` of a uniform random size-k pick."""
    lat = np.asarray(latencies, dtype=np.float64).reshape(-1)  # selfcheck: allow[SC103]
    n = lat.shape[0]
    if n == 0:
        raise ValueError("random_top_k_score needs at least one candidate")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if np.any(lat <= 0.0):
        raise ValueError("latencies must be positive")
    if k >= n:
        return 1.0
    lat_sorted = np.sort(lat)
    best = lat_sorted[0]
    total = math.comb(n, k)
    # P(best pick is the (i+1)-th fastest) = C(n-1-i, k-1) / C(n, k).
    score = 0.0
    for i in range(n - k + 1):
        score += math.comb(n - 1 - i, k - 1) / total * (best / lat_sorted[i])
    return float(score)


def _iter_runs(groups: np.ndarray) -> "list[tuple[int, int]]":
    gids = np.asarray(groups).reshape(-1)
    if gids.shape[0] == 0:
        return []
    starts = np.flatnonzero(np.diff(gids) != 0) + 1
    bounds = np.concatenate(([0], starts, [gids.shape[0]]))
    run_ids = gids[bounds[:-1]]
    if np.unique(run_ids).shape[0] != run_ids.shape[0]:
        raise ValueError("groups must be contiguous")
    return list(zip(bounds[:-1], bounds[1:]))


def top_k_scores_grouped(
    scores: np.ndarray,
    latencies: np.ndarray,
    groups: np.ndarray,
    ks: "tuple[int, ...]" = (1, 5),
) -> dict[int, float]:
    """Mean :func:`top_k_score` over contiguous groups, one entry per k."""
    s = np.asarray(scores).reshape(-1)
    lat = np.asarray(latencies).reshape(-1)
    gids = np.asarray(groups).reshape(-1)
    if not s.shape == lat.shape == gids.shape:
        raise ValueError(
            f"shape mismatch: scores {s.shape}, latencies {lat.shape}, "
            f"groups {gids.shape}"
        )
    runs = _iter_runs(gids)
    if not runs:
        raise ValueError("no groups to score")
    out: dict[int, float] = {}
    for k in ks:
        out[int(k)] = float(
            np.mean([top_k_score(s[a:b], lat[a:b], k) for a, b in runs])
        )
    return out


def random_top_k_scores_grouped(
    latencies: np.ndarray,
    groups: np.ndarray,
    ks: "tuple[int, ...]" = (1, 5),
) -> dict[int, float]:
    """Mean exact random baseline over contiguous groups, per k."""
    lat = np.asarray(latencies).reshape(-1)
    gids = np.asarray(groups).reshape(-1)
    if lat.shape != gids.shape:
        raise ValueError(
            f"shape mismatch: latencies {lat.shape}, groups {gids.shape}"
        )
    runs = _iter_runs(gids)
    if not runs:
        raise ValueError("no groups to score")
    out: dict[int, float] = {}
    for k in ks:
        out[int(k)] = float(
            np.mean([random_top_k_score(lat[a:b], k) for a, b in runs])
        )
    return out


__all__ = [
    "random_top_k_score",
    "random_top_k_scores_grouped",
    "top_k_score",
    "top_k_scores_grouped",
]
