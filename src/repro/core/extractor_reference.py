"""Deliberately naive per-primitive feature extraction — the oracle.

This is the straightforward reading of TLP's Fig. 4: one Python feature
list per primitive, one array per sequence, explicit Table 4 crop/pad at
the end.  It exists for two reasons and must stay slow-but-obvious:

* **Correctness oracle** — property tests pin the batch extractor's
  output to be bit-identical to this implementation on the same fitted
  vocabulary.
* **Benchmark baseline** — ``benchmarks/bench_extractor.py`` and the
  ``BENCH_feature_pipeline.json`` trajectory measure the vectorized
  pipeline's speedup against it.

Do not optimize this module.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.abstract_primitive import N_KINDS, abstract
from repro.core.extractor import UNK_ID, SequenceLike, TLPFeaturizer, _primitives_of
from repro.core.postprocess import crop_pad_batch
from repro.tensorir.primitives import Primitive


def encode_primitive_naive(
    prim: Primitive, vocab: dict[str, int], pad_to: int
) -> list[float]:
    """One primitive's full-width (uncropped) feature row as a list."""
    ap = abstract(prim)
    one_hot = [0.0] * N_KINDS
    one_hot[ap.kind_index] = 1.0
    char_tokens = [float(vocab.get(ch, UNK_ID)) for ch in ap.chars]
    numerics = [float(v) for v in ap.numerics]
    row = one_hot + char_tokens + numerics
    row.extend(0.0 for _ in range(pad_to - len(row)))
    return row


def reference_transform(
    featurizer: TLPFeaturizer, sequences: Sequence[SequenceLike]
) -> tuple[np.ndarray, np.ndarray]:
    """Naive re-implementation of ``featurizer.transform``.

    Uses the featurizer's fitted vocabulary and geometry but none of its
    caches or preallocation: every primitive is re-tokenized into fresh
    Python lists, every sequence is stacked and crop/padded on its own.
    Output is bit-identical to the vectorized path.
    """
    if not featurizer.is_fitted:
        raise RuntimeError("reference_transform needs a fitted featurizer")
    vocab = featurizer.vocab_
    batch_rows: list[np.ndarray] = []
    for seq in sequences:
        prims = _primitives_of(seq)
        # Rows are ragged when a sequence exceeds the fitted corpus's
        # widths; pad to the widest row so the stack stays rectangular.
        width = max(
            [featurizer.raw_width_]
            + [N_KINDS + abstract(p).payload_length for p in prims]
        )
        rows = [encode_primitive_naive(p, vocab, width) for p in prims]
        if rows:
            batch_rows.append(np.asarray(rows, dtype=np.float32))
        else:
            batch_rows.append(np.zeros((0, width), dtype=np.float32))
    return crop_pad_batch(batch_rows, featurizer.config)


__all__ = ["encode_primitive_naive", "reference_transform"]
