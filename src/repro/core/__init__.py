"""TLP's contribution: featurize the schedule sequence, not the program.

The paper's core mechanism — and the first slice of the ``core``
subsystem (DESIGN.md §3) to land: feature extraction from primitive
sequences (Fig. 4/5) with the Table 4 crop/pad geometry — plus the
first slice of the TLP cost model itself (Fig. 7, on the ``repro.nn``
autograd substrate), now joined by the offline training stack.

* ``abstract_primitive`` — canonical per-kind (one-hot ++ char tokens ++
  numerics) layout shared by every extractor implementation.
* ``extractor`` — :class:`TLPFeaturizer`: vocabulary fitting and
  vectorized, cached, batch-first ``transform``.
* ``extractor_reference`` — the deliberately naive per-primitive oracle
  and benchmark baseline.
* ``postprocess`` — Table 4 ``seq_len x emb`` crop/pad.
* ``tlp_model`` — :class:`TLPModel`: the Fig. 7 attention backbone
  consuming ``TLPFeaturizer.transform`` output directly.
* ``mtl`` — :class:`MTLTLPModel`: shared trunk + per-platform heads
  with loss masking (Table 9's cross-hardware transfer).
* ``trainer`` — :class:`Trainer`: offline lambda-rank training over a
  shard store with exact checkpoint/resume.
* ``metrics`` — Table 6/7 top-k best-found latency ratio and its exact
  random baseline.
"""

from __future__ import annotations

from repro.core.abstract_primitive import (
    KIND_INDEX,
    KIND_ORDER,
    N_KINDS,
    AbstractPrimitive,
    abstract,
)
from repro.core.extractor import PAD_ID, UNK_ID, TLPFeaturizer
from repro.core.extractor_reference import reference_transform
from repro.core.postprocess import (
    TABLE4_CROPPED,
    TABLE4_UNCROPPED,
    PostprocessConfig,
    crop_pad,
    crop_pad_batch,
)
from repro.core.scoring import CandidateScorer, ScoredTopK
from repro.core.tlp_model import TLPModel, TLPModelConfig
from repro.core.metrics import (
    random_top_k_score,
    random_top_k_scores_grouped,
    top_k_score,
    top_k_scores_grouped,
)
from repro.core.mtl import MTLTLPModel
from repro.core.trainer import TrainConfig, Trainer

__all__ = [
    "KIND_INDEX",
    "KIND_ORDER",
    "N_KINDS",
    "PAD_ID",
    "TABLE4_CROPPED",
    "TABLE4_UNCROPPED",
    "UNK_ID",
    "AbstractPrimitive",
    "CandidateScorer",
    "MTLTLPModel",
    "PostprocessConfig",
    "ScoredTopK",
    "TLPFeaturizer",
    "TLPModel",
    "TLPModelConfig",
    "TrainConfig",
    "Trainer",
    "abstract",
    "crop_pad",
    "crop_pad_batch",
    "random_top_k_score",
    "random_top_k_scores_grouped",
    "reference_transform",
    "top_k_score",
    "top_k_scores_grouped",
]
