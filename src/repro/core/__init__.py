"""TLP's contribution: featurize the schedule sequence, not the program.

The paper's core mechanism — and the first slice of the ``core``
subsystem (DESIGN.md §3) to land: feature extraction from primitive
sequences (Fig. 4/5) with the Table 4 crop/pad geometry — plus the
first slice of the TLP cost model itself (Fig. 7, on the ``repro.nn``
autograd substrate).  MTL heads, trainers and metrics arrive in later
PRs.

* ``abstract_primitive`` — canonical per-kind (one-hot ++ char tokens ++
  numerics) layout shared by every extractor implementation.
* ``extractor`` — :class:`TLPFeaturizer`: vocabulary fitting and
  vectorized, cached, batch-first ``transform``.
* ``extractor_reference`` — the deliberately naive per-primitive oracle
  and benchmark baseline.
* ``postprocess`` — Table 4 ``seq_len x emb`` crop/pad.
* ``tlp_model`` — :class:`TLPModel`: the Fig. 7 attention backbone
  consuming ``TLPFeaturizer.transform`` output directly.
"""

from __future__ import annotations

from repro.core.abstract_primitive import (
    KIND_INDEX,
    KIND_ORDER,
    N_KINDS,
    AbstractPrimitive,
    abstract,
)
from repro.core.extractor import PAD_ID, UNK_ID, TLPFeaturizer
from repro.core.extractor_reference import reference_transform
from repro.core.postprocess import (
    TABLE4_CROPPED,
    TABLE4_UNCROPPED,
    PostprocessConfig,
    crop_pad,
    crop_pad_batch,
)
from repro.core.scoring import CandidateScorer, ScoredTopK
from repro.core.tlp_model import TLPModel, TLPModelConfig

__all__ = [
    "CandidateScorer",
    "KIND_INDEX",
    "KIND_ORDER",
    "N_KINDS",
    "PAD_ID",
    "TABLE4_CROPPED",
    "TABLE4_UNCROPPED",
    "UNK_ID",
    "AbstractPrimitive",
    "PostprocessConfig",
    "ScoredTopK",
    "TLPFeaturizer",
    "TLPModel",
    "TLPModelConfig",
    "abstract",
    "crop_pad",
    "crop_pad_batch",
    "reference_transform",
]
