"""The TLP attention cost model (paper Fig. 7), first slice.

The backbone consumes ``TLPFeaturizer.transform`` output directly: the
``[N, seq_len, emb]`` feature block and its ``[N, seq_len]`` padding
mask.  Per Fig. 7 the rows are linearly up-sampled from the ``emb``
width to the model width, mixed once by multi-head self-attention
(padded rows masked out of the softmax), refined by a stack of
dimension-preserving residual blocks, summed over the sequence axis
(padding zeroed so pad rows contribute nothing), and projected to one
latency score per schedule.

Two execution paths share the weights:

* :meth:`TLPModel.forward` — the taped autograd path used for training
  (and as the bit-exactness oracle for the fast path).
* :meth:`TLPModel.predict` — the tape-free serving path: a compiled
  :class:`_InferencePlan` reads the raw weight ndarrays out of the
  module tree once per call, then drives the fused in-place kernels of
  :mod:`repro.nn.functional` over a persistent
  :class:`~repro.nn.functional.ScratchArena`, chunking the batch to
  bound peak scratch memory.  ``predict`` is property-pinned
  bit-identical to eval-mode ``forward`` and performs zero large
  allocations in steady state.

:meth:`TLPModel.pool_features` exposes the taped trunk up to the pooled
``[N, hidden]`` representation; ``repro.core.mtl`` hangs per-platform
heads off it, and ``repro.core.trainer`` drives both variants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, LayerNorm, Linear, ResidualBlock
from repro.nn.module import Module
from repro.nn.tensor import Tensor, as_tensor
from repro.utils.rng import stream


@dataclass(frozen=True)
class TLPModelConfig:
    """Fig. 7 hyperparameters.

    Defaults follow the paper's CPU configuration (embedding width from
    Table 4, hidden width 256, 8 heads, 2 residual blocks); tests use a
    narrower instance for speed.
    """

    emb: int = 22
    hidden: int = 256
    n_heads: int = 8
    n_res_blocks: int = 2
    dropout: float = 0.0
    stream_name: str = "core.tlp_model.init"

    def __post_init__(self) -> None:
        if self.emb < 1:
            raise ValueError(f"emb must be >= 1, got {self.emb}")
        if self.hidden % self.n_heads != 0:
            raise ValueError(
                f"hidden {self.hidden} is not divisible by n_heads {self.n_heads}")
        if self.n_res_blocks < 0:
            raise ValueError(f"n_res_blocks must be >= 0, got {self.n_res_blocks}")


class _InferencePlan:
    """Raw-ndarray snapshot of the module tree for one ``predict`` call.

    Built once per call (one walk of the module tree; the only copy is
    stacking q/k/v into the arena-pooled ``[D, 3D]`` block, so rebuilds
    track in-place optimizer updates and ``load_state_dict`` swaps for
    free), then run over every chunk.  Holds *references* to the weight
    arrays — nothing here aliases scratch except the qkv stack.
    """

    __slots__ = ("up1_w", "up1_b", "up2_w", "up2_b", "qkv_w", "qkv_b",
                 "out_w", "out_b", "gamma", "beta", "eps", "res", "head_w",
                 "head_b", "n_heads")

    def __init__(self, model: "TLPModel", arena: F.ScratchArena):
        att = model.attention
        dim = att.dim
        self.up1_w = model.up1.weight.data
        self.up1_b = model.up1.bias.data
        self.up2_w = model.up2.weight.data
        self.up2_b = model.up2.bias.data
        self.qkv_w = arena.take("plan.qkv_w", (dim, 3 * dim))
        self.qkv_b = arena.take("plan.qkv_b", (3 * dim,))
        for i, proj in enumerate((att.q_proj, att.k_proj, att.v_proj)):
            self.qkv_w[:, i * dim:(i + 1) * dim] = proj.weight.data
            self.qkv_b[i * dim:(i + 1) * dim] = proj.bias.data
        self.out_w = att.out_proj.weight.data
        self.out_b = att.out_proj.bias.data
        self.gamma = model.norm.gamma.data
        self.beta = model.norm.beta.data
        self.eps = model.norm.eps
        self.res = [(block.fc.weight.data, block.fc.bias.data)
                    for block in model.res_blocks]
        self.head_w = model.head.weight.data
        self.head_b = model.head.bias.data
        self.n_heads = att.n_heads

    def run_chunk(self, arena: F.ScratchArena, X: np.ndarray,
                  mask: np.ndarray, bias: np.ndarray,
                  pooled_out: np.ndarray) -> None:
        """Pool one chunk's features into ``pooled_out`` (a slice of the
        full-batch pooled buffer) using only arena scratch.  The head
        layer is deliberately *not* chunked: its single-column GEMM is
        bit-sensitive to the row count, so ``predict`` runs it once over
        the whole batch at the same M as the taped forward."""
        h = F.linear(arena, "up1", X, self.up1_w, self.up1_b, relu=True)
        h = F.linear(arena, "up2", h, self.up2_w, self.up2_b, relu=True)
        a = F.attention(arena, "attn", h, self.qkv_w, self.qkv_b,
                        self.out_w, self.out_b, self.n_heads, mask_bias=bias)
        np.add(h, a, out=a)  # residual join, same operand order as forward
        h = F.layer_norm(arena, "norm", a, self.gamma, self.beta, self.eps)
        for i, (w, b) in enumerate(self.res):
            h = F.residual_relu_linear(arena, f"res{i}", h, w, b)
        F.masked_sum_pool(arena, "pool", h, mask, out=pooled_out)


class TLPModel(Module):
    """Fig. 7: up-sample -> self-attention -> residual stack -> sum -> head.

    One generator (derived from ``config.stream_name``) is threaded
    through every submodule in construction order, so the weights are a
    pure function of the config — two models built from equal configs
    are bit-identical.
    """

    def __init__(self, config: TLPModelConfig | None = None):
        config = config if config is not None else TLPModelConfig()
        rng = stream(config.stream_name)
        self.config = config
        mid = max(config.n_heads, config.hidden // 2)
        # Fig. 7's "linear up-sampling": two widening linears with ReLU.
        self.up1 = Linear(config.emb, mid, rng=rng)
        self.up2 = Linear(mid, config.hidden, rng=rng)
        self.attention = MultiHeadSelfAttention(config.hidden, config.n_heads, rng=rng)
        self.norm = LayerNorm(config.hidden)
        self.dropout = Dropout(config.dropout, rng=rng) if config.dropout else None
        self.res_blocks = [ResidualBlock(config.hidden, rng=rng)
                           for _ in range(config.n_res_blocks)]
        self.head = Linear(config.hidden, 1, rng=rng)
        self._arena = F.ScratchArena()

    def _check_geometry(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        if X.ndim != 3 or X.shape[-1] != self.config.emb:
            raise ValueError(
                f"expected features [N, L, {self.config.emb}], got {X.shape}")
        mask = np.asarray(mask, dtype=np.float32)
        if mask.shape != X.shape[:2]:
            raise ValueError(
                f"mask shape {mask.shape} does not match features {X.shape[:2]}")
        return mask

    def pool_features(self, X: np.ndarray | Tensor, mask: np.ndarray) -> Tensor:
        """The taped backbone up to (and including) the sequence-sum pool.

        Returns the ``[N, hidden]`` pooled representation the score head
        consumes.  Split out from :meth:`forward` so ``repro.core.mtl``
        can hang multiple per-platform heads off one shared trunk; the
        op sequence is exactly the old forward body, so single-head
        scores stay bit-identical.
        """
        x = as_tensor(X)
        mask = self._check_geometry(x.data, mask)
        n, length, _ = x.shape
        h = self.up2(self.up1(x).relu()).relu()
        h = self.norm(h + self.attention(h, mask))
        if self.dropout is not None:
            h = self.dropout(h)
        for block in self.res_blocks:
            h = block(h)
        # Padding rows carry attention/bias residue; zero them so the
        # sequence sum only aggregates real primitive rows.
        return (h * mask.reshape(n, length, 1)).sum(axis=1)

    def forward(self, X: np.ndarray | Tensor, mask: np.ndarray) -> Tensor:
        pooled = self.pool_features(X, mask)
        return self.head(pooled).reshape(pooled.shape[0])

    def predict(self, X: np.ndarray, mask: np.ndarray,
                max_chunk: int = 128) -> np.ndarray:
        """Tape-free scores, bit-identical to eval-mode :meth:`forward`.

        Compiles the weight snapshot once, then runs the fused kernels
        chunk by chunk (``max_chunk`` schedules at a time) so peak
        scratch memory is bounded by the chunk geometry, not the batch.
        The default of 128 keeps the working set cache-resident — it
        measured fastest across chunk sizes 64..1024 at batch 1024 —
        and results are bit-identical for every ``max_chunk`` (chunk
        rows are independent through each GEMM).
        Scratch persists on the model between calls: after the first
        call at a given chunk geometry, no large buffers are allocated
        (dropout, if configured, is skipped — eval semantics — and the
        returned ``[N]`` float32 array is the only per-call allocation).
        """
        X = np.ascontiguousarray(np.asarray(X, dtype=np.float32))
        mask = self._check_geometry(X, mask)
        if max_chunk < 1:
            raise ValueError(f"max_chunk must be >= 1, got {max_chunk}")
        n, length, _ = X.shape
        arena = self._arena
        plan = _InferencePlan(self, arena)
        # One mask conversion for the whole batch (memoized per mask
        # object, shared with the taped attention path); chunks slice it.
        bias = self.attention.mask_bias(mask)
        # Chunk boundaries keep every GEMM's row count out of the M == 1
        # gemv class (different accumulation bits — see functional.py):
        # with length 1 a chunk's rows are its GEMM M, so chunks of one
        # row are never isolated.
        eff = max_chunk if length > 1 else max(max_chunk, 2)
        edges = list(range(0, n, eff)) + [n]
        if len(edges) > 2 and edges[-1] - edges[-2] == 1:
            del edges[-2]  # merge the 1-row tail into the previous chunk
        pooled = arena.take("plan.pooled", (n, self.config.hidden))
        for start, stop in zip(edges, edges[1:]):
            plan.run_chunk(arena, X[start:stop], mask[start:stop],
                           bias[start:stop], pooled[start:stop])
        # Head once, full batch: same GEMM row count as the taped path.
        scores = F.linear(arena, "plan.head", pooled, plan.head_w, plan.head_b)
        return scores.reshape(n).copy()

    def scratch_info(self) -> dict[str, int]:
        """Arena occupancy/counters backing the no-allocation test."""
        arena = self._arena
        return {"buffers": arena.n_buffers, "nbytes": arena.nbytes,
                "hits": arena.hits, "misses": arena.misses}


__all__ = ["TLPModel", "TLPModelConfig"]
