"""The TLP attention cost model (paper Fig. 7), first slice.

The backbone consumes ``TLPFeaturizer.transform`` output directly: the
``[N, seq_len, emb]`` feature block and its ``[N, seq_len]`` padding
mask.  Per Fig. 7 the rows are linearly up-sampled from the ``emb``
width to the model width, mixed once by multi-head self-attention
(padded rows masked out of the softmax), refined by a stack of
dimension-preserving residual blocks, summed over the sequence axis
(padding zeroed so pad rows contribute nothing), and projected to one
latency score per schedule.

This slice is the smoke-trainable forward/backward path; the MTL
hardware heads and the full training loop land in later PRs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, LayerNorm, Linear, ResidualBlock
from repro.nn.module import Module
from repro.nn.tensor import Tensor, as_tensor
from repro.utils.rng import stream


@dataclass(frozen=True)
class TLPModelConfig:
    """Fig. 7 hyperparameters.

    Defaults follow the paper's CPU configuration (embedding width from
    Table 4, hidden width 256, 8 heads, 2 residual blocks); tests use a
    narrower instance for speed.
    """

    emb: int = 22
    hidden: int = 256
    n_heads: int = 8
    n_res_blocks: int = 2
    dropout: float = 0.0
    stream_name: str = "core.tlp_model.init"

    def __post_init__(self) -> None:
        if self.emb < 1:
            raise ValueError(f"emb must be >= 1, got {self.emb}")
        if self.hidden % self.n_heads != 0:
            raise ValueError(
                f"hidden {self.hidden} is not divisible by n_heads {self.n_heads}")
        if self.n_res_blocks < 0:
            raise ValueError(f"n_res_blocks must be >= 0, got {self.n_res_blocks}")


class TLPModel(Module):
    """Fig. 7: up-sample -> self-attention -> residual stack -> sum -> head.

    One generator (derived from ``config.stream_name``) is threaded
    through every submodule in construction order, so the weights are a
    pure function of the config — two models built from equal configs
    are bit-identical.
    """

    def __init__(self, config: TLPModelConfig | None = None):
        config = config if config is not None else TLPModelConfig()
        rng = stream(config.stream_name)
        self.config = config
        mid = max(config.n_heads, config.hidden // 2)
        # Fig. 7's "linear up-sampling": two widening linears with ReLU.
        self.up1 = Linear(config.emb, mid, rng=rng)
        self.up2 = Linear(mid, config.hidden, rng=rng)
        self.attention = MultiHeadSelfAttention(config.hidden, config.n_heads, rng=rng)
        self.norm = LayerNorm(config.hidden)
        self.dropout = Dropout(config.dropout, rng=rng) if config.dropout else None
        self.res_blocks = [ResidualBlock(config.hidden, rng=rng)
                           for _ in range(config.n_res_blocks)]
        self.head = Linear(config.hidden, 1, rng=rng)

    def forward(self, X: np.ndarray | Tensor, mask: np.ndarray) -> Tensor:
        x = as_tensor(X)
        if x.data.ndim != 3 or x.data.shape[-1] != self.config.emb:
            raise ValueError(
                f"expected features [N, L, {self.config.emb}], got {x.data.shape}")
        mask = np.asarray(mask, dtype=np.float32)
        if mask.shape != x.data.shape[:2]:
            raise ValueError(
                f"mask shape {mask.shape} does not match features {x.data.shape[:2]}")
        n, length, _ = x.shape
        h = self.up2(self.up1(x).relu()).relu()
        h = self.norm(h + self.attention(h, mask))
        if self.dropout is not None:
            h = self.dropout(h)
        for block in self.res_blocks:
            h = block(h)
        # Padding rows carry attention/bias residue; zero them so the
        # sequence sum only aggregates real primitive rows.
        pooled = (h * mask.reshape(n, length, 1)).sum(axis=1)
        return self.head(pooled).reshape(n)


__all__ = ["TLPModel", "TLPModelConfig"]
