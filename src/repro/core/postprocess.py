"""Table 4 feature-tensor cropping and padding.

TLP fixes the model input to a configurable ``seq_len x emb`` window:
sequences longer than ``seq_len`` keep their first ``seq_len`` primitives,
feature rows wider than ``emb`` keep their first ``emb`` entries, and
shorter/narrower content is zero-padded.  The paper's Table 4 sweeps the
two sizes and lands on 25x22 (54x40 is the uncropped upper bound on the
TenSet CPU data); both are pinned here as named configs.

Cropping is prefix-preserving by construction: ``out[:l, :e]`` is
bit-identical to the raw rows for ``l = min(len, seq_len)``,
``e = min(width, emb)`` — the property tests key on exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PostprocessConfig:
    """Cropped feature-tensor geometry (Table 4)."""

    #: Primitive-sequence window: longer sequences are truncated, shorter
    #: ones zero-padded (and masked out).
    seq_len: int = 25
    #: Per-primitive embedding width after cropping.
    emb: int = 22

    def __post_init__(self) -> None:
        if self.seq_len < 1 or self.emb < 1:
            raise ValueError(f"degenerate feature geometry {self.seq_len}x{self.emb}")


#: The two Table 4 corner configs: the paper's pick and the uncropped bound.
TABLE4_CROPPED = PostprocessConfig(seq_len=25, emb=22)
TABLE4_UNCROPPED = PostprocessConfig(seq_len=54, emb=40)


def crop_pad(rows: np.ndarray, config: PostprocessConfig) -> tuple[np.ndarray, int]:
    """Crop/pad one sequence's raw feature rows to ``seq_len x emb``.

    ``rows`` is a ``[length, raw_width]`` float32 array; returns the
    ``[seq_len, emb]`` window plus the number of real (unpadded) rows.
    """
    kept_rows = min(rows.shape[0], config.seq_len)
    kept_cols = min(rows.shape[1], config.emb)
    out = np.zeros((config.seq_len, config.emb), dtype=np.float32)
    out[:kept_rows, :kept_cols] = rows[:kept_rows, :kept_cols]
    return out, kept_rows


def crop_pad_batch(
    batch_rows: "list[np.ndarray]", config: PostprocessConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Crop/pad a batch of raw row arrays into ``(X, mask)``.

    ``X`` is ``[N, seq_len, emb]`` float32; ``mask`` is ``[N, seq_len]``
    float32 with 1.0 on real primitive rows and 0.0 on padding.
    """
    X = np.zeros((len(batch_rows), config.seq_len, config.emb), dtype=np.float32)
    mask = np.zeros((len(batch_rows), config.seq_len), dtype=np.float32)
    for i, rows in enumerate(batch_rows):
        cropped, kept = crop_pad(rows, config)
        X[i] = cropped
        mask[i, :kept] = 1.0
    return X, mask


__all__ = [
    "TABLE4_CROPPED",
    "TABLE4_UNCROPPED",
    "PostprocessConfig",
    "crop_pad",
    "crop_pad_batch",
]
