"""End-to-end candidate scoring: the search-side serving loop.

:class:`CandidateScorer` pipes the pieces the evolutionary-search PRs
will drive, in the exact order a tuning round needs them:

    ``SketchGenerator.generate_many`` (propose, verified fail-closed)
    → ``repro.analysis.verify_many`` (screen external candidates)
    → ``TLPFeaturizer.transform`` (batch featurization, cached)
    → ``TLPModel.predict`` (tape-free fused inference)
    → top-k indices (highest predicted ``min_latency / latency`` first)

Only *verified* candidates are ever scored: proposals from the sampler
are verified by construction, and externally supplied candidates (e.g.
mutation output) are screened with ``verify_many`` — invalid sequences
are excluded from scoring and reported, never silently ranked.

Throughput is the design axis (the paper's §6 observation: inference,
not training, dominates search time); ``benchmarks/bench_inference.py``
and ``BENCH_nn_inference.json`` record the candidates/sec this loop
sustains.  ``python -m repro.core.scoring`` runs a ~2 s smoke of the
whole loop (wired into ``make check``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis import absint
from repro.analysis.diagnostics import errors
from repro.analysis.verifier import verify_many
from repro.core.extractor import SequenceLike, TLPFeaturizer, _primitives_of
from repro.core.tlp_model import TLPModel
from repro.tensorir.schedule import Schedule
from repro.tensorir.sketch import SketchGenerator
from repro.tensorir.subgraph import Subgraph


def _require_positive(name: str, value: int) -> int:
    """Shared ``k``/``n`` validation so both scoring paths agree."""
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


@dataclass(frozen=True)
class ScoredTopK:
    """Result of one scoring round.

    ``indices`` point into the *original* candidate list (best first),
    so callers keep their own bookkeeping; invalid candidates can never
    appear in ``indices``.
    """

    indices: np.ndarray      #: int64 [k] — positions of the top-k candidates
    scores: np.ndarray       #: float32 [k] — their predicted scores, descending
    n_candidates: int        #: how many candidates were submitted
    n_invalid: int           #: how many failed static verification
    n_predicted: int         #: how many reached ``TLPModel.predict``

    @property
    def n_scored(self) -> int:
        return self.n_candidates - self.n_invalid


class CandidateScorer:
    """Scores schedule candidates with the TLP model, serving-style.

    Owns no state beyond its collaborators: a *fitted*
    :class:`TLPFeaturizer` (vocabulary must match the model's training
    run) and a :class:`TLPModel`.  ``max_chunk`` bounds the inference
    scratch footprint per ``TLPModel.predict``.
    """

    def __init__(self, model: TLPModel, featurizer: TLPFeaturizer,
                 generator: SketchGenerator | None = None, *,
                 max_chunk: int = 128):
        if not featurizer.is_fitted:
            raise ValueError(
                "CandidateScorer needs a fitted TLPFeaturizer — fit() it on "
                "the training corpus (the vocabulary the model was trained on)")
        self.model = model
        self.featurizer = featurizer
        self.generator = generator
        self.max_chunk = int(max_chunk)

    # -- scoring ---------------------------------------------------------

    def score(self, candidates: Sequence[SequenceLike]) -> np.ndarray:
        """Predicted scores for already-verified candidates (float32 [N]).

        Higher is better (the model regresses ``min_latency / latency``).
        This is the trusted-input path — sampler output is verified
        fail-closed at generation; use :meth:`score_topk` for anything
        of unknown validity.
        """
        X, mask = self.featurizer.transform(candidates)
        return self.model.predict(X, mask, max_chunk=self.max_chunk)

    def score_topk(self, subgraph: Subgraph, candidates: Sequence[SequenceLike],
                   k: int, target: str = "cpu") -> ScoredTopK:
        """Verify, featurize, score, and rank external candidates.

        Candidates failing static verification are dropped before
        featurization (they would poison the ranking — DESIGN.md §8) and
        counted in ``n_invalid``.  Returns the top-``k`` valid candidates
        by descending score; ties break toward the earlier index so the
        ranking is deterministic.
        """
        k = _require_positive("k", k)
        sequences = [_primitives_of(c) for c in candidates]
        diagnostics = verify_many(subgraph, sequences, target, stop_on_error=True)
        valid = [i for i, diags in enumerate(diagnostics) if not errors(diags)]
        n_invalid = len(sequences) - len(valid)
        if not valid:
            return ScoredTopK(np.empty(0, dtype=np.int64),
                              np.empty(0, dtype=np.float32),
                              len(sequences), n_invalid, 0)
        scores = self.score([sequences[i] for i in valid])
        order = np.argsort(-scores, kind="stable")[:k]
        return ScoredTopK(
            indices=np.asarray([valid[i] for i in order], dtype=np.int64),
            scores=scores[order],
            n_candidates=len(sequences),
            n_invalid=n_invalid,
            n_predicted=len(valid),
        )

    # -- propose-and-score (the search inner loop) -----------------------

    def propose_topk(self, subgraph: Subgraph, n: int, k: int,
                     rng: np.random.Generator, *,
                     draft_keep: float | None = None,
                     ) -> tuple[list[Schedule], ScoredTopK]:
        """Sample ``n`` fresh candidates and return them with their top-k.

        Proposals come from ``SketchGenerator.generate_many`` and are
        therefore verified fail-closed before scoring; the returned
        ``ScoredTopK`` consequently has ``n_invalid == 0``.

        ``draft_keep`` enables the Pruner-style draft-then-verify path:
        every candidate gets a cheap static draft score from the abstract
        interpreter (``repro.analysis.absint.draft_scores`` — the
        analytical ``simhw`` cost of the abstract nest, no learned model),
        and only the best ``ceil(draft_keep * n)`` reach
        ``TLPModel.predict``.  The draft slice is scored in original
        candidate order, so on the kept subset the ranking (including
        stable tie-breaks) is exactly what the full path would produce;
        ``draft_keep=1.0`` is bit-identical to the default path.
        ``n_predicted`` records how many candidates the model actually saw.
        """
        if self.generator is None:
            raise ValueError("propose_topk needs a SketchGenerator at construction")
        n = _require_positive("n", n)
        k = _require_positive("k", k)
        if draft_keep is not None and not 0.0 < draft_keep <= 1.0:
            raise ValueError(f"draft_keep must be in (0, 1], got {draft_keep}")
        schedules = self.generator.generate_many(subgraph, n, rng)
        if draft_keep is None:
            kept = np.arange(len(schedules), dtype=np.int64)
        else:
            draft = absint.draft_scores(
                subgraph, [_primitives_of(s) for s in schedules],
                self.generator.config.target)
            # Never keep fewer than k (or everything, when n < k): the
            # draft screens, it must not shrink the answer.
            n_keep = max(int(np.ceil(draft_keep * len(schedules))),
                         min(k, len(schedules)))
            # Ascending original order within the kept slice keeps the
            # model path's stable tie-break identical to the full path.
            kept = np.sort(np.argsort(-draft, kind="stable")[:n_keep])
        scores = self.score([schedules[i] for i in kept])
        order = np.argsort(-scores, kind="stable")[:k]
        # n_candidates reports what the generator actually produced, not
        # the requested n — keeps n_scored honest if a generator ever
        # over- or under-delivers.
        top = ScoredTopK(indices=kept[order], scores=scores[order],
                         n_candidates=len(schedules), n_invalid=0,
                         n_predicted=len(kept))
        return schedules, top


def _smoke(batch: int = 256, k: int = 8) -> dict[str, float]:
    """A ~2 s end-to-end inference smoke (``make check`` runs this).

    Generates a small candidate batch, scores it through the full
    serving loop, and asserts the fast path bit-identical to the taped
    eval-mode forward — the whole tentpole contract in one breath.
    """
    from repro.core.extractor import TLPFeaturizer as _Featurizer
    from repro.core.postprocess import PostprocessConfig
    from repro.core.tlp_model import TLPModelConfig
    from repro.tensorir.sketch import SketchConfig
    from repro.tensorir.subgraph import matmul_subgraph
    from repro.utils.rng import stream
    from repro.utils.timer import Timer

    gen = SketchGenerator(SketchConfig("cpu"))
    subgraph = matmul_subgraph(128, 128, 128)
    corpus = gen.generate_many(subgraph, batch, stream("scoring.smoke"))
    featurizer = _Featurizer(PostprocessConfig()).fit(corpus)
    model = TLPModel(TLPModelConfig(emb=featurizer.config.emb, hidden=64,
                                    n_heads=4, n_res_blocks=2,
                                    stream_name="scoring.smoke.model")).eval()
    scorer = CandidateScorer(model, featurizer, gen)

    with Timer() as t:
        schedules, top = scorer.propose_topk(subgraph, batch, k,
                                             stream("scoring.smoke.propose"))
    X, mask = featurizer.transform(schedules)
    taped = model(X, mask).data
    fast = model.predict(X, mask)
    if not np.array_equal(taped, fast):
        raise AssertionError("predict() is not bit-identical to taped forward")
    if len(top.indices) != k or top.n_invalid != 0:
        raise AssertionError(f"unexpected top-k result: {top}")
    return {"candidates": float(batch),
            "seconds": t.elapsed,
            "candidates_per_sec": batch / t.elapsed}


def main() -> int:
    stats = _smoke()
    print("inference smoke OK: "
          f"{stats['candidates']:.0f} candidates end-to-end in "
          f"{stats['seconds']*1e3:.0f} ms "
          f"({stats['candidates_per_sec']:.0f} candidates/sec), "
          "predict bit-identical to taped forward")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = ["CandidateScorer", "ScoredTopK"]
