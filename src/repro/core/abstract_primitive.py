"""Canonical per-kind parameter layout for TLP featurization (Fig. 4).

TLP featurizes each schedule primitive as the triple the paper calls its
"vectorization": one-hot primitive kind ++ tokenized character parameters
++ raw numeric parameters.  This module fixes the *canonical* reading of
each primitive kind into that triple so the batch extractor
(``repro.core.extractor``), the naive reference oracle
(``repro.core.extractor_reference``), and later dataset statistics
(Table 1 per-kind embedding sizes) all agree on it.

Per-kind layout (mirrors the field table in
``repro.tensorir.primitives.Primitive``):

===== ============================== ==============================
kind  character parameters           numeric parameters
===== ============================== ==============================
SP    axis name                      (extent, factor, factor, ...)
RE    full loop order, ;-joined      —
FU    fused axis names, ;-joined     —
AN    axis name ; annotation token   —
PR    axis name ; pragma token       (value,)
FSP   axis name                      (extent, src_step_index)
CA    axis name                      —
CHW   —                              —
RF    axis name                      —
CI    —                              —
CP    —                              —
===== ============================== ==============================

Character parameters are tokenized *per character* (as TLP does for
Ansor's string parameters), so a primitive's feature row is

    [one-hot kind (11)] ++ [char token ids] ++ [raw numerics]

with no cross-instance slot alignment: rows vary in length and the
extractor pads them to the corpus-wide maximum before the Table 4
crop/pad.  Long-parameter kinds (RE carries the whole loop order) thus
produce the longest rows and absorb most of the crop — the paper's
Table 1 / Table 4 structure.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.tensorir.primitives import Primitive, PrimitiveKind

#: Fixed one-hot position of each primitive kind (declaration order of
#: :class:`PrimitiveKind`; stable across sessions — features depend on it).
KIND_ORDER: tuple[PrimitiveKind, ...] = tuple(PrimitiveKind)
KIND_INDEX: dict[PrimitiveKind, int] = {kind: i for i, kind in enumerate(KIND_ORDER)}
N_KINDS: int = len(KIND_ORDER)

#: Separator between adjacent character parameters in the token stream
#: (axis names may themselves contain ``.`` / ``@``; ``;`` never occurs).
CHAR_SEP = ";"


class AbstractPrimitive(NamedTuple):
    """One primitive reduced to the canonical featurization triple."""

    kind_index: int
    chars: str
    numerics: tuple[int, ...]

    @property
    def payload_length(self) -> int:
        """Feature-row length beyond the one-hot block."""
        return len(self.chars) + len(self.numerics)


def char_params(prim: Primitive) -> str:
    """The primitive's character parameters as one canonical string."""
    if prim.attr:
        return CHAR_SEP.join((*prim.axes, prim.attr)) if prim.axes else prim.attr
    return CHAR_SEP.join(prim.axes)


def numeric_params(prim: Primitive) -> tuple[int, ...]:
    """The primitive's raw numeric parameters."""
    return prim.ints


def abstract(prim: Primitive) -> AbstractPrimitive:
    """Reduce one primitive to its canonical (kind, chars, numerics) triple."""
    return AbstractPrimitive(KIND_INDEX[prim.kind], char_params(prim), prim.ints)


__all__ = [
    "CHAR_SEP",
    "KIND_INDEX",
    "KIND_ORDER",
    "N_KINDS",
    "AbstractPrimitive",
    "abstract",
    "char_params",
    "numeric_params",
]
