"""MTL-TLP: one shared Fig. 7 backbone, one linear head per platform.

The paper's Table 9 result: when labeled data for a target platform is
scarce, training one shared feature trunk on *several* platforms at
once — each platform scored by its own linear head — transfers what the
trunk learns about schedule quality across hardware.  Transfer is
strongest between platforms of the same ISA (the simhw quirk terms were
built so within-family rank correlation is high and cross-family is
lower), which is exactly the same-ISA-aux > cross-ISA-aux comparison
``tests/test_mtl.py`` pins.

Mixed-platform batches work by loss masking: every head scores the full
pooled batch (a full-M GEMM — the bit-stability contract from
``nn.functional`` forbids single-row slices), each head's scores are
multiplied by its platform's one-hot row mask, and the masked scores
sum into one ``[N]`` vector.  Rows of other platforms contribute
exactly 0 to each head's output *and* to its gradient, so one backward
pass trains the trunk on every row and each head only on its own.
"""

from __future__ import annotations

import numpy as np

from repro.core.tlp_model import TLPModel, TLPModelConfig
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import stream


class MTLTLPModel(Module):
    """Shared trunk + per-platform score heads with loss masking.

    ``platforms`` names the heads in order; :meth:`forward` takes a
    per-row head index into that tuple.  The trunk is a full
    :class:`TLPModel` built from the same config — its weights (and its
    own single-platform head, which MTL leaves untouched and therefore
    untrained) are bit-identical to a plain ``TLPModel(config)``, so
    single-task and MTL runs start from the same trunk initialization.
    MTL head weights come from the derived stream
    ``f"{config.stream_name}.mtl.heads"`` in platform order.
    """

    def __init__(
        self,
        platforms: "tuple[str, ...] | list[str]",
        config: TLPModelConfig | None = None,
    ):
        config = config if config is not None else TLPModelConfig()
        platforms = tuple(platforms)
        if not platforms:
            raise ValueError("MTLTLPModel needs at least one platform")
        if len(set(platforms)) != len(platforms):
            raise ValueError(f"duplicate platforms {platforms}")
        self.platforms = platforms
        self.config = config
        self.trunk = TLPModel(config)
        head_rng = stream(f"{config.stream_name}.mtl.heads")
        self.heads = [
            Linear(config.hidden, 1, rng=head_rng) for _ in platforms
        ]

    def head_index(self, platform: str) -> int:
        try:
            return self.platforms.index(platform)
        except ValueError:
            raise KeyError(
                f"platform {platform!r} not in model platforms {self.platforms}"
            ) from None

    def _check_pids(self, platform_ids, n: int) -> np.ndarray:
        pids = np.asarray(platform_ids).reshape(-1)
        if pids.shape[0] != n:
            raise ValueError(f"platform_ids has {pids.shape[0]} rows for batch {n}")
        if pids.size and (pids.min() < 0 or pids.max() >= len(self.heads)):
            raise IndexError(
                f"platform index out of range for {len(self.heads)} heads"
            )
        return pids.astype(np.int64)

    def forward(
        self,
        X: "np.ndarray | Tensor",
        mask: np.ndarray,
        platform_ids: np.ndarray,
    ) -> Tensor:
        """Masked multi-head scores ``[N]`` for a mixed-platform batch.

        ``platform_ids[i]`` is the head index (into ``self.platforms``)
        that owns row ``i``.  Heads with no rows in the batch are
        skipped entirely — their parameters see no forward compute and
        accumulate no grad, so the optimizer leaves them untouched.
        """
        pooled = self.trunk.pool_features(X, mask)
        n = int(pooled.shape[0])
        pids = self._check_pids(platform_ids, n)
        scores: Tensor | None = None
        for i, head in enumerate(self.heads):
            sel = (pids == i)
            if not sel.any():
                continue
            masked = head(pooled).reshape(n) * sel.astype(np.float32)
            scores = masked if scores is None else scores + masked
        if scores is None:
            raise ValueError("empty batch: no rows for any head")
        return scores

    def predict(
        self,
        X: np.ndarray,
        mask: np.ndarray,
        platform_ids: np.ndarray,
    ) -> np.ndarray:
        """Tape-free masked scores (eval semantics, no autograd graph)."""
        was_training = self.training
        self.eval()  # dropout (if configured) must be identity here
        try:
            with no_grad():
                return np.array(self.forward(X, mask, platform_ids).data, copy=True)
        finally:
            self.train(was_training)


__all__ = ["MTLTLPModel"]
