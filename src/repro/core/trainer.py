"""Offline lambda-rank training over a shard store, with exact resume.

The paper's protocol (after TenSet): build a dataset offline, train the
cost model with a ranking loss over ``min_latency / latency`` labels,
and report how good the model's top-k picks are on *held-out networks*
(Table 6/7).  This module is that loop for any store
``repro.dataset.build_dataset`` wrote:

* :class:`Trainer` streams grouped (task, platform) minibatches from a
  :class:`~repro.dataset.reader.ShardReader` through
  :class:`~repro.nn.data.GroupedBatchLoader`, trains with
  :func:`~repro.nn.losses.lambda_rank_loss_grouped`, and evaluates
  held-out top-1/top-5 via :mod:`repro.core.metrics` against the store's
  simhw ground-truth latencies.
* Checkpoints are one ``.npz`` holding model + optimizer + scheduler +
  loader stream state; because every random draw comes from named
  ``repro.utils.rng`` streams (loader epochs from per-epoch derived
  streams), a run resumed at any epoch boundary is *bit-identical* to
  an uninterrupted one — pinned by test.
* Both model variants train through the same loop: a plain
  :class:`~repro.core.tlp_model.TLPModel`, or a
  :class:`~repro.core.mtl.MTLTLPModel` whose batches mix platforms
  (``TrainConfig.platforms`` / ``platform_fractions`` carve out the
  Table 9 scarce-target + auxiliary-platform experiments).

Throughput: ``train_step`` gathers X/label into ``ScratchArena``-pooled
buffers (zero steady-state gather allocations for the wide column); the
padding mask is the one buffer deliberately allocated per batch, because
the attention layer's ``MaskBiasCache`` memoizes by mask *identity* and
a recycled mask object with new contents would silently reuse a stale
bias.

``python -m repro.core.trainer`` is the ``make smoke-train`` entry:
tiny spec -> build -> 3-epoch train -> top-k eval, twice, asserting a
bit-identical run digest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.metrics import random_top_k_scores_grouped, top_k_scores_grouped
from repro.core.mtl import MTLTLPModel
from repro.core.tlp_model import TLPModel
from repro.dataset.reader import ShardReader
from repro.nn import functional as F
from repro.nn.data import GroupedBatchLoader
from repro.nn.losses import lambda_rank_loss_grouped
from repro.nn.optim import Adam, CosineLR
from repro.utils.rng import stream

#: Target rows per evaluation gather (grown to the next group boundary).
_EVAL_CHUNK_ROWS = 2048


@dataclass(frozen=True)
class TrainConfig:
    """One training run, fully determined (with the store) by its fields.

    ``platforms`` restricts training/evaluation to a subset of the
    store's platforms (default: the model's platforms for MTL, all store
    platforms otherwise).  ``platform_fractions`` keeps only a seeded
    fraction of each named platform's *training* records — the Table 9
    scarce-target setup: a small target fraction plus a full-size
    auxiliary platform.
    """

    epochs: int = 10
    batch_size: int = 128
    segment_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 0.0
    sigma: float = 1.0
    min_lr: "float | None" = None
    eval_every: int = 0
    eval_ks: tuple[int, ...] = (1, 5)
    stream_name: str = "core.trainer"
    platforms: "tuple[str, ...] | None" = None
    platform_fractions: "dict[str, float] | None" = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.segment_size < 2:
            raise ValueError(
                f"segment_size must be >= 2 (ranking needs pairs), "
                f"got {self.segment_size}"
            )
        if self.batch_size < self.segment_size:
            raise ValueError(
                f"batch_size {self.batch_size} < segment_size {self.segment_size}"
            )
        if self.eval_every < 0:
            raise ValueError(f"eval_every must be >= 0, got {self.eval_every}")
        for k in self.eval_ks:
            if k < 1:
                raise ValueError(f"eval_ks entries must be >= 1, got {k}")
        if self.platform_fractions:
            for name, frac in self.platform_fractions.items():
                if not 0.0 < frac <= 1.0:
                    raise ValueError(
                        f"platform fraction for {name!r} must be in (0, 1], got {frac}"
                    )


class Trainer:
    """Streamed lambda-rank training of a TLP / MTL-TLP model on a store."""

    def __init__(
        self,
        model: "TLPModel | MTLTLPModel",
        reader: ShardReader,
        config: TrainConfig | None = None,
    ):
        self.model = model
        self.reader = reader
        self.config = config if config is not None else TrainConfig()
        self.is_mtl = isinstance(model, MTLTLPModel)

        schema_cols = reader.manifest.schema.columns()
        self._x_trailing = tuple(schema_cols["X"][1])
        self._mask_trailing = tuple(schema_cols["mask"][1])
        emb = self._x_trailing[-1]
        if model.config.emb != emb:
            raise ValueError(
                f"model emb {model.config.emb} != store feature width {emb}"
            )

        self.store_platforms = tuple(reader.manifest.spec.platforms)
        default = model.platforms if self.is_mtl else self.store_platforms
        names = tuple(self.config.platforms) if self.config.platforms else default
        for name in names:
            if name not in self.store_platforms:
                raise KeyError(
                    f"platform {name!r} not in store platforms {self.store_platforms}"
                )
        if self.is_mtl:
            for name in names:
                model.head_index(name)  # raises on a platform with no head
        self.platforms = names

        task_ids = reader.task_ids().astype(np.int64)
        plat_ids = reader.platform_ids().astype(np.int64)
        self._plat_ids = plat_ids
        n_plat = len(self.store_platforms)
        #: One ranking group per (task, platform) pair, store-wide.
        self._gids = task_ids * n_plat + plat_ids
        if self.is_mtl:
            head_of = np.full(n_plat, -1, dtype=np.int64)
            for name in names:
                head_of[self.store_platforms.index(name)] = model.head_index(name)
            self._head_of_pid = head_of

        allowed_pids = np.asarray(
            [self.store_platforms.index(n) for n in names], dtype=np.int64
        )
        allowed = np.isin(plat_ids, allowed_pids)
        train_idx = reader.split_indices("train")
        train_idx = train_idx[allowed[train_idx]]
        train_idx = self._subsample(train_idx)
        if train_idx.size == 0:
            raise ValueError("no training records after platform filtering")
        self.train_indices = train_idx
        holdout_idx = reader.split_indices("holdout")
        self.holdout_indices = holdout_idx[allowed[holdout_idx]]

        self.loader = GroupedBatchLoader(
            reader.subset(train_idx),
            self._gids[train_idx],
            batch_size=self.config.batch_size,
            segment_size=self.config.segment_size,
            stream_name=f"{self.config.stream_name}.loader",
        )
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.lr,
            weight_decay=self.config.weight_decay,
        )
        self.scheduler = CosineLR(
            self.optimizer, self.config.epochs, self.config.min_lr
        )
        self._arena = F.ScratchArena()
        self.history: list[dict] = []
        self.epochs_done = 0

    # -- dataset carving -------------------------------------------------

    def _subsample(self, train_idx: np.ndarray) -> np.ndarray:
        """Seeded per-(task, platform) subsampling for scarce-target runs.

        Groups are visited in ascending group-id order with one draw
        each from the ``.subsample`` derived stream, so the kept subset
        is a pure function of (stream name, store) — independent of
        platform dict ordering.
        """
        fracs = self.config.platform_fractions
        if not fracs:
            return train_idx
        for name in fracs:
            if name not in self.platforms:
                raise KeyError(
                    f"platform_fractions names {name!r}, not one of {self.platforms}"
                )
        gen = stream(f"{self.config.stream_name}.subsample")
        order = np.argsort(self._gids[train_idx], kind="stable")
        sorted_idx = train_idx[order]
        sorted_gids = self._gids[sorted_idx]
        starts = np.flatnonzero(np.diff(sorted_gids) != 0) + 1
        bounds = np.concatenate(([0], starts, [sorted_gids.shape[0]]))
        kept: list[np.ndarray] = []
        for a, b in zip(bounds[:-1], bounds[1:]):
            rows = sorted_idx[a:b]
            name = self.store_platforms[int(self._plat_ids[rows[0]])]
            frac = fracs.get(name, 1.0)
            if frac >= 1.0:
                kept.append(rows)
                continue
            # Keep at least 2 rows so the group still contributes pairs.
            k = max(2, int(round(frac * rows.shape[0])))
            pick = np.sort(gen.permutation(rows.shape[0])[:k])
            kept.append(rows[pick])
        return np.sort(np.concatenate(kept))

    # -- training --------------------------------------------------------

    def _forward(self, X, mask, global_idx) -> "object":
        if self.is_mtl:
            head_ids = self._head_of_pid[self._plat_ids[global_idx]]
            return self.model.forward(X, mask, head_ids)
        return self.model.forward(X, mask)

    def train_step(self, idx: np.ndarray, gids: np.ndarray) -> float:
        """One optimizer step on one packed batch; returns the loss.

        ``idx`` are positions into ``train_indices`` (what
        ``loader.iter_indices`` yields).  X and label land in pooled
        arena buffers — zero steady-state allocations for the wide
        feature block; the mask is fresh per batch (see module
        docstring: the attention bias cache is identity-keyed).
        """
        global_idx = self.train_indices[idx]
        n = int(idx.shape[0])
        arena = self._arena
        X_buf = arena.take("train.X", (n, *self._x_trailing))
        label_buf = arena.take("train.label", (n,))
        mask_buf = np.empty((n, *self._mask_trailing), dtype=np.float32)
        X, mask, label = self.reader.gather(
            global_idx, ("X", "mask", "label"), out=(X_buf, mask_buf, label_buf)
        )
        pred = self._forward(X, mask, global_idx)
        loss = lambda_rank_loss_grouped(pred, label, gids, self.config.sigma)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return float(loss.data)

    def train_epoch(self) -> float:
        """One full pass over the training split; returns the mean loss."""
        self.model.train()
        losses = [
            self.train_step(idx, gids) for idx, gids in self.loader.iter_indices()
        ]
        return float(np.mean(losses))

    def fit(
        self,
        checkpoint_path: "Path | str | None" = None,
        until: "int | None" = None,
    ) -> list[dict]:
        """Train to ``config.epochs``, appending one history row per epoch.

        With ``checkpoint_path`` the full training state is rewritten
        after every epoch, so a killed run resumes exactly where it
        stopped (:meth:`load_checkpoint` + ``fit`` again); ``until``
        stops early at an epoch boundary (same effect as a kill, but
        polite).  Returns the history: ``{"epoch", "loss", "lr"}`` rows
        plus ``"top_k"`` on evaluation epochs (``config.eval_every``,
        and always the last).
        """
        cfg = self.config
        target = cfg.epochs if until is None else min(int(until), cfg.epochs)
        while self.epochs_done < target:
            lr = self.optimizer.lr
            mean_loss = self.train_epoch()
            self.epochs_done += 1
            self.scheduler.step()
            entry: dict = {"epoch": self.epochs_done, "loss": mean_loss, "lr": lr}
            last = self.epochs_done == cfg.epochs
            if cfg.eval_every and (last or self.epochs_done % cfg.eval_every == 0):
                entry["top_k"] = self.evaluate()["top_k"]
            self.history.append(entry)
            if checkpoint_path is not None:
                self.save_checkpoint(checkpoint_path)
        return self.history

    # -- evaluation ------------------------------------------------------

    def evaluate(
        self,
        ks: "tuple[int, ...] | None" = None,
        platforms: "tuple[str, ...] | None" = None,
    ) -> dict:
        """Held-out-network top-k scores vs the exact random baseline.

        Scores every (task, platform) group of the holdout split with
        the model's tape-free path, group-aligned chunk by chunk, and
        reports the mean top-k best-found latency ratio per k plus the
        matching closed-form random baseline.
        """
        ks = tuple(ks) if ks is not None else self.config.eval_ks
        idx = self.holdout_indices
        if platforms is not None:
            pids = np.asarray(
                [self.store_platforms.index(n) for n in platforms], dtype=np.int64
            )
            idx = idx[np.isin(self._plat_ids[idx], pids)]
        if idx.size == 0:
            raise ValueError("no holdout records to evaluate")
        idx = idx[np.argsort(self._gids[idx], kind="stable")]
        gids = self._gids[idx]

        starts = np.flatnonzero(np.diff(gids) != 0) + 1
        bounds = np.concatenate(([0], starts, [gids.shape[0]]))
        scores = np.empty(idx.shape[0], dtype=np.float32)
        lats = np.empty(idx.shape[0], dtype=np.float32)
        # Gather whole groups at a time, coalesced up to the chunk target.
        chunk_start = 0
        for bi in range(1, bounds.shape[0]):
            end = int(bounds[bi])
            if end - chunk_start < _EVAL_CHUNK_ROWS and bi < bounds.shape[0] - 1:
                continue
            rows = idx[chunk_start:end]
            X, mask, lat = self.reader.gather(rows, ("X", "mask", "latency"))
            if self.is_mtl:
                s = self.model.predict(X, mask, self._head_of_pid[self._plat_ids[rows]])
            else:
                s = self.model.predict(X, mask)
            scores[chunk_start:end] = s
            lats[chunk_start:end] = lat
            chunk_start = end

        return {
            "top_k": top_k_scores_grouped(scores, lats, gids, ks),
            "random_top_k": random_top_k_scores_grouped(lats, gids, ks),
            "n_groups": int(bounds.shape[0] - 1),
            "n_records": int(idx.shape[0]),
        }

    # -- checkpointing ---------------------------------------------------

    def save_checkpoint(self, path: "Path | str") -> Path:
        """Write the complete training state as one ``.npz``.

        Model, optimizer, scheduler, and loader state plus a JSON meta
        record (epochs done, history) — everything a fresh Trainer on
        the same store needs to continue bit-identically.
        """
        path = Path(path)
        state: dict[str, np.ndarray] = {}
        for name, arr in self.model.state_dict().items():
            state[f"model/{name}"] = arr
        for name, arr in self.optimizer.state_dict().items():
            state[f"optim/{name}"] = arr
        for name, arr in self.scheduler.state_dict().items():
            state[f"sched/{name}"] = arr
        for name, arr in self.loader.state_dict().items():
            state[f"loader/{name}"] = arr
        meta = json.dumps(
            {"epochs_done": self.epochs_done, "history": self.history},
            sort_keys=True,
        )
        state["meta"] = np.asarray(meta)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez(fh, **state)
        tmp.replace(path)  # atomic: a killed save never truncates the last good one
        return path

    def load_checkpoint(self, path: "Path | str") -> None:
        """Restore a :meth:`save_checkpoint` snapshot into this trainer."""
        with np.load(Path(path), allow_pickle=False) as z:
            groups: dict[str, dict[str, np.ndarray]] = {
                "model": {}, "optim": {}, "sched": {}, "loader": {}
            }
            meta = None
            for key in z.files:
                if key == "meta":
                    meta = json.loads(str(z[key][()]))
                    continue
                prefix, _, name = key.partition("/")
                if prefix not in groups or not name:
                    raise KeyError(f"unrecognized checkpoint key {key!r}")
                groups[prefix][name] = z[key]
            if meta is None:
                raise KeyError("checkpoint has no meta record")
            self.model.load_state_dict(groups["model"])
            self.optimizer.load_state_dict(groups["optim"])
            self.scheduler.load_state_dict(groups["sched"])
            self.loader.load_state_dict(groups["loader"])
            self.epochs_done = int(meta["epochs_done"])
            self.history = list(meta["history"])


def _run_digest(model: "TLPModel | MTLTLPModel", history: list[dict]) -> str:
    """SHA-256 over final weights + history — one value pins a whole run."""
    import hashlib

    h = hashlib.sha256()
    for name, arr in sorted(model.state_dict().items()):
        h.update(name.encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    h.update(json.dumps(history, sort_keys=True).encode())
    return h.hexdigest()


def main() -> int:
    """``make smoke-train``: tiny store -> 3-epoch train -> top-k eval, twice.

    Asserts the two from-scratch runs are bit-identical (weights and
    history), the loss decreased, and held-out top-5 beats the exact
    random baseline.
    """
    import tempfile

    from repro.core.tlp_model import TLPModelConfig
    from repro.dataset.pipeline import build_dataset
    from repro.dataset.spec import DatasetSpec

    # All five network pools: holdout transfer needs training diversity —
    # a model trained on one network family does not rank an unseen
    # family better than random (measured, not assumed).
    spec = DatasetSpec(
        name="smoke-train",
        networks=("bert_tiny", "resnet18", "resnet50", "bert_base",
                  "mobilenet_v2"),
        platforms=("platinum-8272",),
        candidates_per_task=48,
        shard_size=2048,
        holdout_networks=("mobilenet_v2",),
    )
    with tempfile.TemporaryDirectory(prefix="repro-smoke-train-") as tmp:
        store = Path(tmp) / "store"
        manifest = build_dataset(spec, store)
        print(f"store: {manifest.total_records} records, "
              f"{len(manifest.shards)} shards")

        def run() -> tuple[str, list[dict], dict]:
            reader = ShardReader(store)
            emb = reader.manifest.schema.columns()["X"][1][-1]
            model = TLPModel(TLPModelConfig(emb=emb, hidden=48, n_heads=4,
                                            n_res_blocks=2))
            trainer = Trainer(model, reader, TrainConfig(
                epochs=6, batch_size=64, segment_size=16, lr=1e-3,
            ))
            history = trainer.fit()
            report = trainer.evaluate()
            return _run_digest(model, history), history, report

        digest_a, history, report = run()
        digest_b, _, _ = run()

    losses = [row["loss"] for row in history]
    assert digest_a == digest_b, f"non-deterministic run: {digest_a} != {digest_b}"
    assert losses[-1] < losses[0], f"loss did not decrease: {losses}"
    top5, rand5 = report["top_k"][5], report["random_top_k"][5]
    assert top5 > rand5, f"holdout top-5 {top5} <= random {rand5}"
    print(json.dumps({
        "digest": digest_a,
        "losses": [round(x, 6) for x in losses],
        "holdout_top_k": {str(k): round(v, 4) for k, v in report["top_k"].items()},
        "random_top_k": {
            str(k): round(v, 4) for k, v in report["random_top_k"].items()
        },
        "n_groups": report["n_groups"],
    }, indent=2))
    print("smoke-train OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())


__all__ = ["TrainConfig", "Trainer"]
