"""Tape-free fused inference kernels over raw float32 ndarrays.

The taped ops in :mod:`repro.nn.tensor` allocate a fresh array per
operation and keep every intermediate alive for a backward pass that
pure scoring never runs.  The kernels here are the inference
counterparts: each one fuses a whole layer into a handful of in-place
ufunc calls writing into preallocated :class:`ScratchArena` buffers, so
steady-state inference performs zero large allocations.

Bit-identity with the taped path is a hard contract (property-tested in
``tests/test_nn_functional.py`` and ``tests/test_predict.py``): every
kernel replays the exact float32 operation sequence of its taped layer —
same ufuncs, same operand order, same memory layouts into ``np.matmul``
(layout matters: this BLAS does not produce identical bits for
contiguous and non-contiguous operands, so head splits are materialized
contiguous exactly where the taped reshape does).  The only allowed
deviations are ``out=`` targets and algebraically-identity rewrites
verified bit-exact on float32 (``np.maximum(x, 0)`` for
``np.where(x > 0, x, 0)``, commuted addition).

A caller-facing sharp edge: BLAS kernel dispatch depends on the GEMM
row count M.  Measured on this BLAS, ``x @ W`` row blocks reproduce the
full-matrix bits for every M >= 2 when W has more than one column, but
M == 1 falls to a gemv kernel with different accumulation, and
single-column GEMMs (W of shape ``[K, 1]``) are erratic across small M.
The inference plan therefore never isolates a 1-row chunk and runs the
single-column head layer once over the whole batch, at the same M the
taped forward uses.
"""

from __future__ import annotations

import math

import numpy as np

_F32_ZERO = np.float32(0.0)

#: Additive logit for masked attention keys — must match
#: ``repro.nn.attention`` (single source of the serving-path constant).
MASK_PENALTY = np.float32(1e9)


class ScratchArena:
    """A pool of preallocated float32 buffers keyed by (name, shape).

    ``take(name, shape)`` returns the pooled buffer for that key,
    allocating only on first use — callers with a fixed batch geometry
    (the compiled inference plan) hit the pool on every call after the
    first.  Keys include the call-site name so two live buffers of equal
    shape never alias.  Contents are undefined on ``take``; every kernel
    fully overwrites what it takes.

    ``hits`` / ``misses`` count pool probes and back the no-allocation
    acceptance test: a steady-state ``predict`` call must be all hits.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, tuple[int, ...]], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def take(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        key = (name, shape)
        buf = self._buffers.get(key)
        if buf is None:
            self.misses += 1
            buf = np.empty(shape, dtype=np.float32)
            self._buffers[key] = buf
        else:
            self.hits += 1
        return buf

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        """Drop every pooled buffer (and the counters)."""
        self._buffers.clear()
        self.reset_counters()

    @property
    def n_buffers(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def __repr__(self) -> str:
        return (f"ScratchArena(buffers={self.n_buffers}, "
                f"nbytes={self.nbytes}, hits={self.hits}, misses={self.misses})")


def additive_mask_bias(mask: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """``[N, L]`` padding mask -> ``[N, 1, 1, L]`` additive attention bias.

    The one home of the mask -> float conversion shared by the taped
    attention forward and the tape-free ``predict`` plan: 0.0 on real
    rows, ``-MASK_PENALTY`` on padding, broadcastable over the
    ``[N, heads, L, L]`` score block.
    """
    mask = np.asarray(mask, dtype=np.float32)
    n, length = mask.shape
    if out is None:
        out = np.empty((n, 1, 1, length), dtype=np.float32)
    flat = out.reshape(n, length)
    np.subtract(mask, np.float32(1.0), out=flat)
    np.multiply(flat, MASK_PENALTY, out=flat)
    return out


class MaskBiasCache:
    """Per-batch memo of :func:`additive_mask_bias`.

    Search rounds query the model many times with the *same* mask array
    (taped forward then predict, or chunked loops over one batch), so
    the bias is keyed on the mask's identity: a repeated ``get`` with
    the same object returns the cached bias with zero work.  A new mask
    of the same geometry recomputes in place into the held buffer —
    steady-state serving allocates nothing here either.
    """

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None
        self._bias: np.ndarray | None = None
        self.hits = 0
        self.misses = 0

    def get(self, mask: np.ndarray) -> np.ndarray:
        if mask is self._mask:
            self.hits += 1
            return self._bias
        self.misses += 1
        n, length = mask.shape
        out = self._bias if self._bias is not None and self._bias.shape == (
            n, 1, 1, length) else None
        self._bias = additive_mask_bias(mask, out=out)
        self._mask = mask
        return self._bias


# -- fused layer kernels -------------------------------------------------
#
# Each kernel takes the arena plus a call-site name, reads raw weight
# ndarrays, and returns an arena-backed result.  Inputs are never
# modified unless the kernel documents in-place consumption.


def linear(arena: ScratchArena, name: str, x: np.ndarray,
           weight: np.ndarray, bias: np.ndarray | None,
           relu: bool = False) -> np.ndarray:
    """Fused ``relu(x @ W + b)``: one GEMM into scratch, bias add and
    ReLU in place.  Matches ``Linear`` (+ ``.relu()``) bit for bit."""
    out = arena.take(name, x.shape[:-1] + (weight.shape[1],))
    np.matmul(x, weight, out=out)
    if bias is not None:
        out += bias
    if relu:
        np.maximum(out, _F32_ZERO, out=out)
    return out


def layer_norm(arena: ScratchArena, name: str, x: np.ndarray,
               gamma: np.ndarray, beta: np.ndarray, eps: float) -> np.ndarray:
    """Fused LayerNorm over the last axis.  Consumes ``x`` in place
    (callers pass scratch they no longer need) and returns it.

    The two-moment sequence (mean, then mean of squared deviations)
    replays the taped ``LayerNorm.forward`` exactly — a one-pass
    ``E[x^2] - mu^2`` rewrite would not be bit-identical in float32 —
    but runs in three scratch buffers with every elementwise step
    in place.
    """
    stat_shape = x.shape[:-1] + (1,)
    mu = arena.take(f"{name}.mu", stat_shape)
    np.mean(x, axis=-1, keepdims=True, dtype=np.float32, out=mu)
    np.subtract(x, mu, out=x)  # x is now `centered`
    sq = arena.take(f"{name}.sq", x.shape)
    np.multiply(x, x, out=sq)
    var = arena.take(f"{name}.var", stat_shape)
    np.mean(sq, axis=-1, keepdims=True, dtype=np.float32, out=var)
    var += np.float32(eps)
    np.power(var, np.float32(-0.5), out=var)  # 1 / sqrt(var + eps)
    np.multiply(x, var, out=x)
    np.multiply(x, gamma, out=x)
    x += beta
    return x


def _pairwise_rowmax(v: np.ndarray, arena: ScratchArena, name: str,
                     out: np.ndarray) -> None:
    """Row max of ``v [M, L]`` into ``out [M, 1]`` by pairwise halving.

    ``np.amax`` over a short last axis runs a scalar inner loop; folding
    column halves with ``np.maximum`` keeps the work in wide SIMD ops
    (~1.6x faster at L=25).  Max is associative and commutative with no
    rounding, so any combination tree is bit-identical to the sequential
    scan — and a ±0.0 sign disagreement cannot survive the subsequent
    ``exp`` (both shifts produce exactly 1.0).
    """
    m = v
    while m.shape[1] > 1:
        half = m.shape[1] // 2
        nm = out if half == 1 else arena.take(f"{name}.fold{half}", (v.shape[0], half))
        np.maximum(m[:, :half], m[:, half:2 * half], out=nm)
        if m.shape[1] % 2:
            np.maximum(nm[:, 0], m[:, -1], out=nm[:, 0])
        m = nm
    if m is v:  # L == 1
        np.copyto(out, v)


def softmax_(x: np.ndarray, arena: ScratchArena, name: str) -> np.ndarray:
    """In-place last-axis max-shifted softmax; matches ``tensor.softmax``
    bit for bit (the shift is the same detached constant)."""
    length = x.shape[-1]
    stat = arena.take(f"{name}.stat", x.shape[:-1] + (1,))
    _pairwise_rowmax(x.reshape(-1, length), arena, name, stat.reshape(-1, 1))
    np.subtract(x, stat, out=x)
    np.exp(x, out=x)
    np.sum(x, axis=-1, keepdims=True, out=stat)
    np.divide(x, stat, out=x)
    return x


def attention(arena: ScratchArena, name: str, x: np.ndarray,
              qkv_weight: np.ndarray, qkv_bias: np.ndarray,
              out_weight: np.ndarray, out_bias: np.ndarray,
              n_heads: int, mask_bias: np.ndarray | None = None) -> np.ndarray:
    """Fused multi-head self-attention, bit-identical to
    ``MultiHeadSelfAttention.forward``.

    The q/k/v projections run as one stacked GEMM against the
    ``[D, 3D]`` ``qkv_weight`` (verified bit-identical per column block
    to three separate GEMMs on this BLAS), the additive ``mask_bias``
    comes in precomputed (``MaskBiasCache``), and the softmax runs in
    place on the score block.  Head splits are materialized into
    contiguous ``[N, L, H, hd]`` scratch — the same layout the taped
    ``reshape`` produces — because matmul bits depend on operand layout.
    """
    n, length, dim = x.shape
    if dim % n_heads:
        raise ValueError(f"dim {dim} is not divisible by n_heads {n_heads}")
    head_dim = dim // n_heads
    scale = np.float32(1.0 / math.sqrt(head_dim))

    qkv = arena.take(f"{name}.qkv", (n, length, 3 * dim))
    np.matmul(x, qkv_weight, out=qkv)
    qkv += qkv_bias

    heads = []
    for i, part in enumerate(("q", "k", "v")):
        h = arena.take(f"{name}.{part}", (n, length, n_heads, head_dim))
        np.copyto(h.reshape(n, length, dim), qkv[:, :, i * dim:(i + 1) * dim])
        heads.append(h.transpose(0, 2, 1, 3))  # [N, H, L, hd] view
    q, k, v = heads

    scores = arena.take(f"{name}.scores", (n, n_heads, length, length))
    np.matmul(q, k.transpose(0, 1, 3, 2), out=scores)
    scores *= scale
    if mask_bias is not None:
        scores += mask_bias
    softmax_(scores, arena, f"{name}.softmax")

    mixed_h = arena.take(f"{name}.mixed_h", (n, n_heads, length, head_dim))
    np.matmul(scores, v, out=mixed_h)
    # Back to [N, L, D] contiguous, as the taped transpose+reshape copies.
    mixed = arena.take(f"{name}.mixed", (n, length, dim))
    np.copyto(mixed.reshape(n, length, n_heads, head_dim), mixed_h.transpose(0, 2, 1, 3))
    return linear(arena, f"{name}.out", mixed, out_weight, out_bias)


def residual_relu_linear(arena: ScratchArena, name: str, x: np.ndarray,
                         weight: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Fused ``x + relu(x @ W + b)`` — the ``ResidualBlock`` unit."""
    out = linear(arena, name, x, weight, bias, relu=True)
    np.add(x, out, out=out)  # same operand order as the taped `x + relu`
    return out


def masked_sum_pool(arena: ScratchArena, name: str, x: np.ndarray,
                    mask: np.ndarray,
                    out: np.ndarray | None = None) -> np.ndarray:
    """``sum_L(x * mask[:, :, None])`` -> ``[N, D]``.  Consumes ``x``.

    ``out`` lets the inference plan pool chunk results into a slice of a
    full-batch buffer (so the batch-sensitive head GEMM can run once
    over all rows — see the module docstring on kernel dispatch).
    """
    np.multiply(x, mask[:, :, None], out=x)
    if out is None:
        out = arena.take(name, (x.shape[0], x.shape[2]))
    np.sum(x, axis=1, out=out)
    return out


__all__ = [
    "MASK_PENALTY",
    "MaskBiasCache",
    "ScratchArena",
    "additive_mask_bias",
    "attention",
    "layer_norm",
    "linear",
    "masked_sum_pool",
    "residual_relu_linear",
    "softmax_",
]
