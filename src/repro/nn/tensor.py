"""Reverse-mode autograd over float32 ndarrays (DESIGN.md §3).

The PyTorch substitute's core: a :class:`Tensor` wraps one
``np.float32`` ndarray and records, per operation, a backward closure
plus its parent tensors.  ``backward()`` topologically sorts the tape
and accumulates gradients into every ``requires_grad`` leaf.  The op
set is exactly what the TLP model (Fig. 7) and its losses need —
broadcasted arithmetic, batched matmul, reductions, shape moves,
indexed gather, and the stable nonlinearities — each with an analytic
gradient that the finite-difference checks in ``repro.nn.gradcheck``
pin to < 1e-3 relative error.

Everything stays float32 end to end (DESIGN.md §7, enforced by
selfcheck SC103); gradients are plain ndarrays, not tensors, so the
tape never grows through optimizer steps.

Inference never runs the backward pass, so it should not pay for the
tape: inside :func:`no_grad` every op skips parent tracking and
backward-closure recording, so intermediates are freed as the forward
pass proceeds.  Tensors produced under
``no_grad`` are permanently tape-free — calling ``backward()`` on one
raises instead of silently doing nothing.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

TensorLike = Union["Tensor", np.ndarray, float, int, list, tuple]

#: Module-level autograd switch; flipped only by :class:`no_grad`.
_grad_enabled = True


def is_grad_enabled() -> bool:
    """Whether ops currently record the autograd tape."""
    return _grad_enabled


class no_grad:
    """Context manager that disables tape construction for ops inside it.

    While active, every ``Tensor`` op returns a result with no parents
    and no backward closure (and ``requires_grad=False``), so the full
    graph of intermediates is garbage-collected as the forward pass
    proceeds — the memory/speed mode for pure scoring.  Nesting is
    fine; the previous state is restored on exit even under exceptions.
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def _f32(value: object) -> np.ndarray:
    return np.asarray(value, dtype=np.float32)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    squeezed = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if squeezed:
        grad = grad.sum(axis=squeezed, keepdims=True)
    return grad


def as_tensor(value: TensorLike) -> "Tensor":
    """Wrap ``value`` as a constant (non-grad) tensor if it isn't one."""
    return value if isinstance(value, Tensor) else Tensor(value)


class Tensor:
    """A float32 ndarray with a reverse-mode autograd tape."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_no_grad")

    def __init__(self, data: TensorLike, requires_grad: bool = False):
        self.data = _f32(data.data if isinstance(data, Tensor) else data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._backward: Callable[[np.ndarray], None] | None = None
        #: True only for op outputs created while grad was disabled —
        #: their tape was never built, so backward() must refuse.
        self._no_grad = False

    # -- introspection ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        # reshape(()) keeps this exact on any size-1 array of any ndim;
        # float() on an ndim > 0 array is deprecated on modern numpy.
        return self.data.reshape(()).item()

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_tag})"

    # -- tape ------------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = _f32(grad).copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor to every reachable leaf."""
        if self._no_grad:
            raise RuntimeError(
                "this tensor was produced under no_grad(): its autograd tape "
                "was never recorded, so backward() cannot run. Re-run the "
                "forward pass outside no_grad() to train."
            )
        if grad is None:
            if self.size != 1:
                raise ValueError("backward() without a gradient needs a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def _track(self, data: np.ndarray, parents: Sequence["Tensor"],
               backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        if not _grad_enabled:
            out._no_grad = True
        elif any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        elif any(p._no_grad for p in parents):
            # Derived from a no_grad() product with no taped lineage:
            # the tape is broken upstream, so backward() must still
            # refuse with the clear error rather than silently no-op.
            out._no_grad = True
        return out

    # -- broadcasted arithmetic ------------------------------------------

    def __add__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)

        def backward(g: np.ndarray) -> None:
            self._accumulate(_unbroadcast(g, self.data.shape))
            other._accumulate(_unbroadcast(g, other.data.shape))

        return self._track(self.data + other.data, (self, other), backward)

    def __radd__(self, other: TensorLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)

        def backward(g: np.ndarray) -> None:
            self._accumulate(_unbroadcast(g, self.data.shape))
            other._accumulate(_unbroadcast(-g, other.data.shape))

        return self._track(self.data - other.data, (self, other), backward)

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)

        def backward(g: np.ndarray) -> None:
            self._accumulate(_unbroadcast(g * other.data, self.data.shape))
            other._accumulate(_unbroadcast(g * self.data, other.data.shape))

        return self._track(self.data * other.data, (self, other), backward)

    def __rmul__(self, other: TensorLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)

        def backward(g: np.ndarray) -> None:
            self._accumulate(_unbroadcast(g / other.data, self.data.shape))
            other._accumulate(
                _unbroadcast(-g * self.data / (other.data * other.data), other.data.shape)
            )

        return self._track(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(-g)

        return self._track(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        out_data = self.data ** np.float32(exponent)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * exponent * self.data ** np.float32(exponent - 1.0))

        return self._track(out_data, (self,), backward)

    def __matmul__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        if self.ndim < 2 or other.ndim < 2:
            raise ValueError("matmul needs operands with ndim >= 2")

        def backward(g: np.ndarray) -> None:
            self._accumulate(_unbroadcast(g @ other.data.swapaxes(-1, -2), self.data.shape))
            other._accumulate(_unbroadcast(self.data.swapaxes(-1, -2) @ g, other.data.shape))

        return self._track(self.data @ other.data, (self, other), backward)

    # -- reductions ------------------------------------------------------

    def _expand_reduced(self, g: np.ndarray, axis, keepdims: bool) -> np.ndarray:
        if axis is None:
            return np.broadcast_to(g, self.data.shape)
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        if not keepdims:
            for a in sorted(a % self.data.ndim for a in axes):
                g = np.expand_dims(g, a)
        return np.broadcast_to(g, self.data.shape)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(self._expand_reduced(g, axis, keepdims))

        return self._track(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else (
            np.prod([self.data.shape[a] for a in
                     ((axis,) if isinstance(axis, int) else tuple(axis))])
        )
        inv = np.float32(1.0 / float(count))

        def backward(g: np.ndarray) -> None:
            self._accumulate(self._expand_reduced(g, axis, keepdims) * inv)

        return self._track(
            self.data.mean(axis=axis, keepdims=keepdims, dtype=np.float32), (self,), backward
        )

    # -- shape moves -----------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(self.data.shape))

        return self._track(self.data.reshape(shape), (self,), backward)

    def transpose(self, axes: tuple[int, ...]) -> "Tensor":
        inverse = tuple(int(i) for i in np.argsort(axes))

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.transpose(inverse))

        return self._track(self.data.transpose(axes), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, g)
            self._accumulate(grad)

        return self._track(self.data[index], (self,), backward)

    # -- nonlinearities --------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data)

        return self._track(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(g / self.data)

        return self._track(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * (1.0 - out_data * out_data))

        return self._track(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        positive = self.data > 0

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * positive)

        return self._track(np.where(positive, self.data, np.float32(0.0)), (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = _sigmoid(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data * (1.0 - out_data))

        return self._track(out_data, (self,), backward)

    def softplus(self) -> "Tensor":
        # Stable log(1 + exp(x)): max(x, 0) + log1p(exp(-|x|)).
        out_data = np.maximum(self.data, 0.0) + np.log1p(np.exp(-np.abs(self.data)))

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * _sigmoid(self.data))

        return self._track(_f32(out_data), (self,), backward)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-free logistic on float32 arrays."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``, max-shifted for stability.

    The shift is a detached constant: softmax is invariant to it, so the
    gradient is exact without differentiating through the max.
    """
    shifted = x - x.data.max(axis=axis, keepdims=True)
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


__all__ = ["Tensor", "TensorLike", "as_tensor", "is_grad_enabled", "no_grad", "softmax"]
