"""Parameter registry and module tree.

:class:`Parameter` is a :class:`~repro.nn.tensor.Tensor` that always
requires grad; :class:`Module` discovers parameters by walking its
attribute dict (submodules, parameters, and lists/tuples of either), so
layers register state just by assigning ``self.weight = Parameter(...)``
— no explicit registration calls, no hidden globals (DESIGN.md §7).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor, TensorLike


class Parameter(Tensor):
    """A trainable tensor — ``requires_grad`` is always on."""

    def __init__(self, data: TensorLike):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class: parameter discovery, train/eval mode, state dicts."""

    #: Training-mode flag; ``train()``/``eval()`` set an instance attribute
    #: on every module in the tree.
    training: bool = True

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- tree walking ----------------------------------------------------

    def _children(self) -> Iterator[tuple[str, "Module | Parameter"]]:
        for name, value in vars(self).items():
            if isinstance(value, (Parameter, Module)):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, (Parameter, Module)):
                        yield f"{name}.{i}", item

    def modules(self) -> Iterator["Module"]:
        """This module and every descendant, depth-first."""
        yield self
        for _, child in self._children():
            if isinstance(child, Module):
                yield from child.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, child in self._children():
            path = f"{prefix}{name}"
            if isinstance(child, Parameter):
                yield path, child
            else:
                yield from child.named_parameters(f"{path}.")

    def parameters(self) -> list[Parameter]:
        seen: set[int] = set()
        params: list[Parameter] = []
        for _, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                params.append(p)
        return params

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- training state --------------------------------------------------

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = sorted(own.keys() - state.keys())
        extra = sorted(state.keys() - own.keys())
        if missing or extra:
            raise ValueError(f"state dict mismatch: missing {missing}, unexpected {extra}")
        for name, p in own.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: {value.shape} vs {p.data.shape}"
                )
            p.data = value.copy()

    def save(self, path: str | Path) -> Path:
        """Write the state dict to ``path`` as an ``.npz`` archive.

        The serving warm-restart format: ``load`` on a freshly
        constructed module of the same architecture restores bit-identical
        weights (float32 round-trips exactly through ``np.savez``).
        """
        path = Path(path)
        state = self.state_dict()
        with path.open("wb") as fh:
            np.savez(fh, **state)
        return path

    def load(self, path: str | Path) -> "Module":
        """Restore a state dict written by :meth:`save`; returns ``self``.

        Validates names and shapes through ``load_state_dict``, so an
        architecture mismatch fails loudly instead of mis-assigning.
        """
        with np.load(Path(path)) as archive:
            self.load_state_dict({name: archive[name] for name in archive.files})
        return self


class Sequential(Module):
    """Chain modules in order; the TLP up-sampling stack uses this."""

    def __init__(self, *modules: Module):
        self.steps = list(modules)

    def forward(self, x):
        for step in self.steps:
            x = step(x)
        return x


__all__ = ["Module", "Parameter", "Sequential"]
