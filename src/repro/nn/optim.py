"""SGD / Adam and learning-rate schedules.

Optimizers mutate ``Parameter.data`` in place from accumulated ``.grad``
ndarrays; all state (momentum / moment buffers) is float32 and owned by
the optimizer, so a model plus its optimizer state is fully captured by
``Module.state_dict`` + ``Optimizer.state_dict``.  Both are flat
``name -> ndarray`` dicts, so one ``np.savez`` holds a complete,
bit-reproducible training snapshot (see ``repro.core.trainer``).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    def __init__(self, params: Sequence[Parameter], lr: float):
        self.params = [p for p in params]
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = lr

    @property
    def lr(self) -> float:
        return self._lr

    @lr.setter
    def lr(self, value: float) -> None:
        # The single place the lr > 0 invariant is enforced: LR schedules
        # assign ``optimizer.lr`` directly, so a schedule that decays to
        # zero (silent no-op steps) fails loudly here instead.
        if value <= 0.0:
            raise ValueError(f"non-positive learning rate {value}")
        self._lr = float(value)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def _state_items(self) -> dict[str, np.ndarray]:
        """Subclass hook: the optimizer-specific buffers, name -> ndarray."""
        return {}

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat ``name -> ndarray`` snapshot of all mutable optimizer state.

        Buffers are *copies*, so a snapshot taken mid-training is immune
        to later ``step()`` calls; the scalar learning rate rides along
        so a schedule-adjusted lr survives resume even before the next
        scheduler step.
        """
        # lr is checkpoint metadata, not compute state: keep full precision
        # so restore round-trips the float exactly.
        state: dict[str, np.ndarray] = {
            "lr": np.float64(self._lr).reshape(())  # selfcheck: allow[SC103]
        }
        for name, buf in self._state_items().items():
            state[name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a ``state_dict`` snapshot in place.

        Validates the exact key set and every buffer shape so loading a
        snapshot from a differently-shaped model (or the wrong optimizer
        class) fails loudly instead of silently corrupting training.
        """
        own = self._state_items()
        expected = {"lr"} | set(own)
        got = set(state)
        if got != expected:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            raise KeyError(
                f"optimizer state mismatch: missing {missing}, unexpected {extra}"
            )
        for name, buf in own.items():
            src = np.asarray(state[name])
            if src.shape != buf.shape:
                raise ValueError(
                    f"optimizer buffer {name!r}: shape {src.shape} != {buf.shape}"
                )
            np.copyto(buf, src)
        self.lr = float(np.asarray(state["lr"]))


class SGD(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= np.float32(self.momentum)
                v += p.grad
                update = v
            else:
                update = p.grad
            p.data -= np.float32(self.lr) * update

    def _state_items(self) -> dict[str, np.ndarray]:
        return {f"velocity.{i}": v for i, v in enumerate(self._velocity)}


class Adam(Optimizer):
    """Adam with bias correction and decoupled weight decay (AdamW-style)."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        scale = np.float32(self.lr * math.sqrt(bias2) / bias1)
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= np.float32(self.beta1)
            m += np.float32(1.0 - self.beta1) * g
            v *= np.float32(self.beta2)
            v += np.float32(1.0 - self.beta2) * (g * g)
            if self.weight_decay:
                p.data -= np.float32(self.lr * self.weight_decay) * p.data
            p.data -= scale * m / (np.sqrt(v) + np.float32(self.eps))

    def _state_items(self) -> dict[str, np.ndarray]:
        items: dict[str, np.ndarray] = {}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            items[f"m.{i}"] = m
            items[f"v.{i}"] = v
        return items

    def state_dict(self) -> dict[str, np.ndarray]:
        state = super().state_dict()
        # Bias correction depends on the step count, so it is part of the
        # state even though it is a scalar, not a buffer.
        state["step_count"] = np.int64(self._step_count).reshape(())
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        state = dict(state)
        if "step_count" not in state:
            raise KeyError("optimizer state mismatch: missing ['step_count']")
        step_count = int(np.asarray(state.pop("step_count")))
        if step_count < 0:
            raise ValueError(f"negative step_count {step_count}")
        super().load_state_dict(state)
        self._step_count = step_count


class StepLR:
    """Multiply the optimizer's LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        if gamma <= 0.0:
            raise ValueError(f"gamma must be > 0 to keep the lr positive, got {gamma}")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)
        return self.optimizer.lr

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"epoch": np.int64(self.epoch).reshape(())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        epoch = int(np.asarray(state["epoch"]))
        if epoch < 0:
            raise ValueError(f"negative schedule epoch {epoch}")
        self.epoch = epoch


class CosineLR:
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``.

    ``min_lr`` defaults to 1% of the base LR rather than 0.0: the
    optimizer's contract is ``lr > 0`` (it rejects a zero lr at
    construction), and a schedule that lands on exactly 0.0 at the final
    epoch would turn every last-epoch ``step()`` into a silent no-op.
    """

    def __init__(
        self, optimizer: Optimizer, total_epochs: int, min_lr: "float | None" = None
    ):
        if total_epochs < 1:
            raise ValueError(f"total_epochs must be >= 1, got {total_epochs}")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        if min_lr is None:
            min_lr = 0.01 * self.base_lr
        if not 0.0 < min_lr <= self.base_lr:
            raise ValueError(
                f"min_lr must be in (0, base_lr={self.base_lr}], got {min_lr}"
            )
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)
        self.epoch = 0

    def step(self) -> float:
        # Clamp at the horizon: past ``total_epochs`` the raw cosine comes
        # back *up*, so an over-long run would silently raise the lr again.
        self.epoch = min(self.epoch + 1, self.total_epochs)
        span = self.base_lr - self.min_lr
        cos = math.cos(math.pi * self.epoch / self.total_epochs)
        self.optimizer.lr = self.min_lr + 0.5 * span * (1.0 + cos)
        return self.optimizer.lr

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"epoch": np.int64(self.epoch).reshape(())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        epoch = int(np.asarray(state["epoch"]))
        if not 0 <= epoch <= self.total_epochs:
            raise ValueError(
                f"schedule epoch {epoch} outside [0, {self.total_epochs}]"
            )
        self.epoch = epoch


__all__ = ["Adam", "CosineLR", "Optimizer", "SGD", "StepLR"]
