"""repro.nn — from-scratch numpy autograd + NN substrate.

Reverse-mode autodiff over float32 ndarrays (:mod:`repro.nn.tensor`),
a parameter/module registry, the layers the TLP cost model needs
(Linear, LayerNorm, Dropout, residual blocks, multi-head
self-attention), MSE + lambda-rank losses, SGD/Adam, and a seeded batch
loader over extractor output.  Every differentiable piece is pinned by
finite-difference gradient checks (``make gradcheck``).
"""

from repro.nn import functional
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.data import ArraySource, BatchLoader, GroupedBatchLoader, RecordSource
from repro.nn.functional import MaskBiasCache, ScratchArena
from repro.nn.gradcheck import assert_gradients_match, max_relative_error, numerical_gradient
from repro.nn.layers import Dropout, LayerNorm, Linear, ReLU, ResidualBlock
from repro.nn.losses import (
    LambdaRankLoss,
    MSELoss,
    lambda_rank_loss,
    lambda_rank_loss_grouped,
    mse_loss,
)
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.optim import SGD, Adam, CosineLR, Optimizer, StepLR
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled, no_grad, softmax

__all__ = [
    "Adam",
    "ArraySource",
    "BatchLoader",
    "CosineLR",
    "Dropout",
    "GroupedBatchLoader",
    "LambdaRankLoss",
    "LayerNorm",
    "Linear",
    "MSELoss",
    "MaskBiasCache",
    "Module",
    "MultiHeadSelfAttention",
    "Optimizer",
    "Parameter",
    "RecordSource",
    "ReLU",
    "ResidualBlock",
    "SGD",
    "ScratchArena",
    "Sequential",
    "StepLR",
    "Tensor",
    "as_tensor",
    "assert_gradients_match",
    "functional",
    "is_grad_enabled",
    "lambda_rank_loss",
    "lambda_rank_loss_grouped",
    "max_relative_error",
    "mse_loss",
    "no_grad",
    "numerical_gradient",
    "softmax",
]
