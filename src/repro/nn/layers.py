"""The layer kit the Fig. 7 model is assembled from.

Linear, LayerNorm, Dropout, ReLU, and the dimension-preserving residual
block.  Every layer that owns weights accepts an ``rng`` generator (from
a named ``repro.utils.rng`` stream); models thread one generator through
all submodules so construction order fully determines the weights.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import stream


def _default_rng(tag: str) -> np.random.Generator:
    return stream(f"nn.init.{tag}")


class Linear(Module):
    """``y = x @ W + b`` over the last axis (batched inputs broadcast)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        if rng is None:
            rng = _default_rng(f"linear.{in_features}x{out_features}")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LayerNorm(Module):
    """Normalize the last axis to zero mean / unit variance, then affine."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.dim = dim
        self.eps = float(eps)
        self.gamma = Parameter(init.ones((dim,)))
        self.beta = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    Masks come from the layer's own generator, so a training run is
    reproducible given the stream name and the order of forward calls.
    """

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability {p} outside [0, 1)")
        self.p = float(p)
        self._rng = rng if rng is not None else _default_rng(f"dropout.{p}")

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = (self._rng.random(x.shape) >= self.p).astype(np.float32)
        return x * (keep / np.float32(1.0 - self.p))


class ResidualBlock(Module):
    """``x + ReLU(Linear(x))`` — the Fig. 7 dimension-preserving unit."""

    def __init__(self, dim: int, rng: np.random.Generator | None = None):
        if rng is None:
            rng = _default_rng(f"residual.{dim}")
        self.fc = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return x + self.fc(x).relu()


__all__ = ["Dropout", "LayerNorm", "Linear", "ReLU", "ResidualBlock"]
