"""MSE and lambda-rank losses over ``min_latency / latency`` labels.

The paper's Table 3 compares both: plain MSE regression on the relative
-performance label, and the ranking loss TLP ships with — a LambdaLoss
style pairwise objective where each pair's RankNet cost is weighted by
the NDCG swap delta implied by the current predicted order.  Within one
task only the *order* of candidates matters (the tuner takes a top-k),
which is exactly what the rank loss optimizes.

The lambda weights and the sort permutation are functions of the labels
and of the predicted order, not of the scores' values, so they enter the
tape as constants (the standard LambdaRank treatment); gradients flow
through the score differences only.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.tensor import Tensor, as_tensor

_LN2 = math.log(2.0)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - np.asarray(target, dtype=np.float32)
    return (diff * diff).mean()


def lambda_rank_loss(pred: Tensor, labels: np.ndarray, sigma: float = 1.0) -> Tensor:
    """LambdaRank over one group of candidates.

    ``pred`` are the model scores ``[B]``; ``labels`` the relative
    -performance targets ``min_latency / latency`` in ``(0, 1]``.  The
    loss is ``sum_{label_i > label_j} w_ij * log2(1 + exp(-sigma (s_i -
    s_j)))`` with the LambdaLoss NDCG weights ``w_ij = |2^y_i - 2^y_j| *
    |1/D(r_i) - 1/D(r_j)| / maxDCG`` (ranks ``r`` from the predicted
    order), normalized by the number of contributing pairs.
    """
    pred = as_tensor(pred)
    y = np.asarray(labels, dtype=np.float32).reshape(-1)
    if pred.data.shape != y.shape:
        raise ValueError(f"pred shape {pred.data.shape} != labels shape {y.shape}")
    n = y.shape[0]
    if n < 2:
        return (pred * np.float32(0.0)).sum()

    # Constant scaffolding: predicted-descending permutation, NDCG gains
    # and rank discounts.  np.argsort is stable, so ties break by index
    # and the permutation is deterministic.
    order = np.argsort(-pred.data, kind="stable")
    y_sorted = y[order]
    gains = np.exp2(y_sorted) - 1.0
    discounts = 1.0 / np.log2(np.arange(n, dtype=np.float32) + 2.0)
    ideal_gains = np.sort(np.exp2(y) - 1.0)[::-1]
    max_dcg = float((ideal_gains * discounts).sum())
    if max_dcg <= 0.0:
        return (pred * np.float32(0.0)).sum()
    weights = (
        np.abs(gains[:, None] - gains[None, :])
        * np.abs(discounts[:, None] - discounts[None, :])
        / np.float32(max_dcg)
    )
    pair_mask = (y_sorted[:, None] - y_sorted[None, :]) > 0.0
    coeff = (weights * pair_mask).astype(np.float32)
    n_pairs = int(pair_mask.sum())
    if n_pairs == 0:
        return (pred * np.float32(0.0)).sum()

    s = pred[order]
    s_diffs = s.reshape(n, 1) - s.reshape(1, n)
    # log2(1 + exp(-sigma x)) == softplus(-sigma x) / ln 2.
    pair_costs = (s_diffs * np.float32(-sigma)).softplus() * coeff
    return pair_costs.sum() * np.float32(1.0 / (_LN2 * n_pairs))


def lambda_rank_loss_grouped(
    pred: Tensor,
    labels: np.ndarray,
    groups: np.ndarray,
    sigma: float = 1.0,
) -> Tensor:
    """LambdaRank over a batch of *contiguous* candidate groups.

    ``groups`` assigns each row of ``pred`` to a (task, platform) group;
    rows of one group must be contiguous (the layout
    ``GroupedBatchLoader`` emits).  Each group contributes its own
    per-pair-normalized :func:`lambda_rank_loss`; the batch loss is the
    mean over groups that actually produced pairs, so a stray singleton
    or an all-tied group dilutes nothing.  Slicing ``pred`` per segment
    is differentiable, so gradients flow back exactly as if each group
    had been its own batch.
    """
    pred = as_tensor(pred)
    gids = np.asarray(groups).reshape(-1)
    y = np.asarray(labels, dtype=np.float32).reshape(-1)
    if pred.data.shape != y.shape or gids.shape != y.shape:
        raise ValueError(
            f"shape mismatch: pred {pred.data.shape}, labels {y.shape}, "
            f"groups {gids.shape}"
        )
    if gids.shape[0] == 0:
        return (pred * np.float32(0.0)).sum()
    # Boundaries of the contiguous runs; a group id reappearing later in
    # the batch would start a new run and silently weaken the ranking
    # signal, so reject non-contiguous layouts loudly.
    starts = np.flatnonzero(np.diff(gids) != 0) + 1
    bounds = np.concatenate(([0], starts, [gids.shape[0]]))
    run_ids = gids[bounds[:-1]]
    if np.unique(run_ids).shape[0] != run_ids.shape[0]:
        raise ValueError("groups must be contiguous within the batch")

    total: Tensor | None = None
    contributing = 0
    for start, stop in zip(bounds[:-1], bounds[1:]):
        seg_y = y[start:stop]
        if stop - start < 2 or np.all(seg_y == seg_y[0]):
            continue
        seg_loss = lambda_rank_loss(pred[int(start):int(stop)], seg_y, sigma)
        total = seg_loss if total is None else total + seg_loss
        contributing += 1
    if total is None:
        return (pred * np.float32(0.0)).sum()
    return total * np.float32(1.0 / contributing)


class MSELoss:
    def __call__(self, pred: Tensor, target: np.ndarray) -> Tensor:
        return mse_loss(pred, target)


class LambdaRankLoss:
    def __init__(self, sigma: float = 1.0):
        self.sigma = float(sigma)

    def __call__(self, pred: Tensor, labels: np.ndarray) -> Tensor:
        return lambda_rank_loss(pred, labels, self.sigma)


__all__ = [
    "LambdaRankLoss",
    "MSELoss",
    "lambda_rank_loss",
    "lambda_rank_loss_grouped",
    "mse_loss",
]
