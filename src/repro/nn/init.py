"""Seeded parameter initializers.

Every initializer takes an explicit ``np.random.Generator`` — obtained
from a named ``repro.utils.rng`` stream — so a model's weights are a
pure function of its init stream and construction order (DESIGN.md §7).
Layers derive a default stream from their own geometry when the caller
does not thread one through; models that instantiate the same layer
shape twice (e.g. the two Fig. 7 residual blocks) pass one shared
generator so consecutive draws break the symmetry.
"""

from __future__ import annotations

import math

import numpy as np


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def uniform(
    shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.05, high: float = 0.05
) -> np.ndarray:
    return rng.uniform(low, high, size=shape).astype(np.float32)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    return (rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot bound ``sqrt(6 / (fan_in + fan_out))`` over the last two dims."""
    fan_in, fan_out = _fans(shape)
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return uniform(shape, rng, -limit, limit)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He bound ``sqrt(6 / fan_in)`` — the ReLU-stack default."""
    fan_in, _ = _fans(shape)
    limit = math.sqrt(6.0 / fan_in)
    return uniform(shape, rng, -limit, limit)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[-2], shape[-1]


__all__ = ["kaiming_uniform", "normal", "ones", "uniform", "xavier_uniform", "zeros"]
