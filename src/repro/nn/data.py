"""Batched, seeded iteration over extractor output or lazy record sources.

:class:`BatchLoader` yields minibatches either from in-memory arrays (the
``(X, mask)`` pair ``TLPFeaturizer.transform`` produces, plus optional
labels) or from any *lazily-indexed source* — an object exposing
``__len__`` and ``__getitem__(indices) -> tuple[np.ndarray, ...]`` — such
as ``repro.dataset.ShardReader`` over memory-mapped shards, so an epoch
over a multi-gigabyte store never materializes the store.

Shuffling draws each epoch's permutation from one named
``repro.utils.rng`` stream fixed at construction, so a training run is a
pure function of the stream name and the epoch count — and the epoch
*order* depends only on the source length, not on how the source is
backed: array-backed and shard-backed loaders with the same stream name
visit records in bit-identical order (the reproducibility the
smoke-training and dataset tests pin).
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from repro.utils.rng import stream


@runtime_checkable
class RecordSource(Protocol):
    """What :class:`BatchLoader` needs from a lazy source: a length and
    batched fancy indexing returning a tuple of per-batch arrays."""

    def __len__(self) -> int: ...

    def __getitem__(self, indices: np.ndarray) -> tuple[np.ndarray, ...]: ...


class ArraySource:
    """In-memory ``(X, mask[, labels])`` arrays as a :class:`RecordSource`."""

    def __init__(
        self,
        X: np.ndarray,
        mask: np.ndarray,
        labels: np.ndarray | None = None,
    ):
        X = np.asarray(X, dtype=np.float32)
        mask = np.asarray(mask, dtype=np.float32)
        if X.shape[0] != mask.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but mask has {mask.shape[0]}")
        if labels is not None:
            labels = np.asarray(labels, dtype=np.float32).reshape(-1)
            if labels.shape[0] != X.shape[0]:
                raise ValueError(f"X has {X.shape[0]} rows but labels has {labels.shape[0]}")
        self.X = X
        self.mask = mask
        self.labels = labels

    def __len__(self) -> int:
        return self.X.shape[0]

    def __getitem__(self, indices: np.ndarray) -> tuple[np.ndarray, ...]:
        if self.labels is None:
            return self.X[indices], self.mask[indices]
        return self.X[indices], self.mask[indices], self.labels[indices]


class BatchLoader:
    """Minibatch iterator over arrays or a lazily-indexed record source.

    Two construction forms::

        BatchLoader(X, mask[, labels], batch_size=...)   # in-memory arrays
        BatchLoader(source, batch_size=...)              # any RecordSource

    The second form never touches record storage until iteration, and
    then only one batch at a time — ``ShardReader`` memory-maps stay
    on disk.
    """

    def __init__(
        self,
        source: "RecordSource | np.ndarray",
        mask: np.ndarray | None = None,
        labels: np.ndarray | None = None,
        batch_size: int = 32,
        shuffle: bool = True,
        stream_name: str = "nn.data.loader",
        drop_last: bool = False,
    ):
        if mask is not None or isinstance(source, np.ndarray):
            if mask is None:
                raise ValueError("array-backed BatchLoader needs an explicit mask")
            source = ArraySource(source, mask, labels)
        elif labels is not None:
            raise ValueError("labels are part of the source when a RecordSource is given")
        if not isinstance(source, RecordSource):
            raise TypeError(
                f"source must expose __len__ and __getitem__, got {type(source).__name__}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.source = source
        # Back-compat views for array-backed loaders (None for lazy sources).
        self.X = source.X if isinstance(source, ArraySource) else None
        self.mask = source.mask if isinstance(source, ArraySource) else None
        self.labels = source.labels if isinstance(source, ArraySource) else None
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = stream(stream_name)

    def __len__(self) -> int:
        n = len(self.source)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        n = len(self.source)
        if self.shuffle:
            # One permutation per epoch, drawn from the loader's stream:
            # epoch k of a fresh loader with the same stream name sees the
            # same order — whatever backs the source.
            indices = self._rng.permutation(n)
        else:
            indices = np.arange(n)
        # len(self) already accounts for drop_last (floor vs ceil division),
        # so the batch count is the single source of truth here — no
        # separate short-batch guard to fall out of sync with it.
        for b in range(len(self)):
            start = b * self.batch_size
            yield self.source[indices[start : start + self.batch_size]]


__all__ = ["ArraySource", "BatchLoader", "RecordSource"]
