"""Batched, seeded iteration over extractor output or lazy record sources.

:class:`BatchLoader` yields minibatches either from in-memory arrays (the
``(X, mask)`` pair ``TLPFeaturizer.transform`` produces, plus optional
labels) or from any *lazily-indexed source* — an object exposing
``__len__`` and ``__getitem__(indices) -> tuple[np.ndarray, ...]`` — such
as ``repro.dataset.ShardReader`` over memory-mapped shards, so an epoch
over a multi-gigabyte store never materializes the store.

Shuffling draws each epoch's permutation from one named
``repro.utils.rng`` stream fixed at construction, so a training run is a
pure function of the stream name and the epoch count — and the epoch
*order* depends only on the source length, not on how the source is
backed: array-backed and shard-backed loaders with the same stream name
visit records in bit-identical order (the reproducibility the
smoke-training and dataset tests pin).
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from repro.utils.rng import stream


@runtime_checkable
class RecordSource(Protocol):
    """What :class:`BatchLoader` needs from a lazy source: a length and
    batched fancy indexing returning a tuple of per-batch arrays."""

    def __len__(self) -> int: ...

    def __getitem__(self, indices: np.ndarray) -> tuple[np.ndarray, ...]: ...


class ArraySource:
    """In-memory ``(X, mask[, labels])`` arrays as a :class:`RecordSource`."""

    def __init__(
        self,
        X: np.ndarray,
        mask: np.ndarray,
        labels: np.ndarray | None = None,
    ):
        X = np.asarray(X, dtype=np.float32)
        mask = np.asarray(mask, dtype=np.float32)
        if X.shape[0] != mask.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but mask has {mask.shape[0]}")
        if labels is not None:
            labels = np.asarray(labels, dtype=np.float32).reshape(-1)
            if labels.shape[0] != X.shape[0]:
                raise ValueError(f"X has {X.shape[0]} rows but labels has {labels.shape[0]}")
        self.X = X
        self.mask = mask
        self.labels = labels

    def __len__(self) -> int:
        return self.X.shape[0]

    def __getitem__(self, indices: np.ndarray) -> tuple[np.ndarray, ...]:
        if self.labels is None:
            return self.X[indices], self.mask[indices]
        return self.X[indices], self.mask[indices], self.labels[indices]


class BatchLoader:
    """Minibatch iterator over arrays or a lazily-indexed record source.

    Two construction forms::

        BatchLoader(X, mask[, labels], batch_size=...)   # in-memory arrays
        BatchLoader(source, batch_size=...)              # any RecordSource

    The second form never touches record storage until iteration, and
    then only one batch at a time — ``ShardReader`` memory-maps stay
    on disk.
    """

    def __init__(
        self,
        source: "RecordSource | np.ndarray",
        mask: np.ndarray | None = None,
        labels: np.ndarray | None = None,
        batch_size: int = 32,
        shuffle: bool = True,
        stream_name: str = "nn.data.loader",
        drop_last: bool = False,
    ):
        if mask is not None or isinstance(source, np.ndarray):
            if mask is None:
                raise ValueError("array-backed BatchLoader needs an explicit mask")
            source = ArraySource(source, mask, labels)
        elif labels is not None:
            raise ValueError("labels are part of the source when a RecordSource is given")
        if not isinstance(source, RecordSource):
            raise TypeError(
                f"source must expose __len__ and __getitem__, got {type(source).__name__}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.source = source
        # Back-compat views for array-backed loaders (None for lazy sources).
        self.X = source.X if isinstance(source, ArraySource) else None
        self.mask = source.mask if isinstance(source, ArraySource) else None
        self.labels = source.labels if isinstance(source, ArraySource) else None
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = stream(stream_name)

    def __len__(self) -> int:
        n = len(self.source)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        n = len(self.source)
        if self.shuffle:
            # One permutation per epoch, drawn from the loader's stream:
            # epoch k of a fresh loader with the same stream name sees the
            # same order — whatever backs the source.
            indices = self._rng.permutation(n)
        else:
            indices = np.arange(n)
        # len(self) already accounts for drop_last (floor vs ceil division),
        # so the batch count is the single source of truth here — no
        # separate short-batch guard to fall out of sync with it.
        for b in range(len(self)):
            start = b * self.batch_size
            yield self.source[indices[start : start + self.batch_size]]


class GroupedBatchLoader:
    """Minibatches of contiguous (task, platform) candidate segments.

    Lambda-rank only compares candidates *within* one group, so batches
    are packed from per-group segments rather than a flat permutation:
    each epoch every group's rows are shuffled and chunked into segments
    of at most ``segment_size`` rows, the segments are shuffled globally,
    and whole segments are packed greedily into batches of at most
    ``batch_size`` rows.  Rows of one group always end up contiguous
    within a batch (segments of the same group that meet in a batch are
    merged by a stable sort), which is the layout
    ``lambda_rank_loss_grouped`` requires.

    Epoch ``k`` draws from the derived stream ``f"{name}.epoch{k}"``, so
    the loader's entire iteration state is the epoch counter: resuming a
    run at an epoch boundary means restoring one integer
    (:meth:`state_dict` / :meth:`load_state_dict`), after which epoch
    ``k`` of the resumed loader is bit-identical to epoch ``k`` of an
    uninterrupted one.  The counter advances only when an epoch is fully
    consumed.
    """

    def __init__(
        self,
        source: RecordSource,
        group_ids: np.ndarray,
        *,
        batch_size: int = 128,
        segment_size: int = 32,
        stream_name: str = "nn.data.grouped",
    ):
        if not isinstance(source, RecordSource):
            raise TypeError(
                f"source must expose __len__ and __getitem__, got {type(source).__name__}"
            )
        gids = np.asarray(group_ids, dtype=np.int64).reshape(-1)
        if gids.shape[0] != len(source):
            raise ValueError(
                f"group_ids has {gids.shape[0]} rows but source has {len(source)}"
            )
        if segment_size < 1:
            raise ValueError(f"segment_size must be >= 1, got {segment_size}")
        if batch_size < segment_size:
            raise ValueError(
                f"batch_size {batch_size} < segment_size {segment_size}: "
                "a full segment must fit in one batch"
            )
        self.source = source
        self.group_ids = gids
        self.batch_size = int(batch_size)
        self.segment_size = int(segment_size)
        self.stream_name = str(stream_name)
        self.epoch = 0
        # Row positions per group, computed once: stable sort keeps the
        # within-group row order deterministic.
        order = np.argsort(gids, kind="stable")
        uniq, starts = np.unique(gids[order], return_index=True)
        ends = np.append(starts[1:], order.shape[0])
        self._groups = [
            (int(g), order[s:e]) for g, s, e in zip(uniq, starts, ends)
        ]

    def iter_indices(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(row_indices, group_ids)`` pairs for one epoch.

        Both arrays are int64 and row-aligned; rows of one group are
        contiguous.  Consuming the full epoch advances the epoch counter.
        """
        gen = stream(f"{self.stream_name}.epoch{self.epoch}")
        # Draw order is fixed — one permutation per group in ascending
        # group-id order, then the segment shuffle — so the epoch is a
        # pure function of (stream name, epoch number).
        segments: list[tuple[int, np.ndarray]] = []
        for gid, rows in self._groups:
            perm = rows[gen.permutation(rows.shape[0])]
            for s in range(0, perm.shape[0], self.segment_size):
                segments.append((gid, perm[s : s + self.segment_size]))
        seg_order = gen.permutation(len(segments))

        pending: list[tuple[int, np.ndarray]] = []
        count = 0
        for si in seg_order:
            gid, seg = segments[si]
            if count and count + seg.shape[0] > self.batch_size:
                yield self._emit(pending)
                pending, count = [], 0
            pending.append((gid, seg))
            count += seg.shape[0]
        if pending:
            yield self._emit(pending)
        self.epoch += 1

    @staticmethod
    def _emit(pending: list[tuple[int, np.ndarray]]) -> tuple[np.ndarray, np.ndarray]:
        idx = np.concatenate([seg for _, seg in pending])
        gids = np.concatenate(
            [np.full(seg.shape[0], gid, dtype=np.int64) for gid, seg in pending]
        )
        # Same-group segments packed into one batch merge into a single
        # contiguous run; stable sort preserves within-segment order.
        order = np.argsort(gids, kind="stable")
        return idx[order].astype(np.int64), gids[order]

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        for idx, gids in self.iter_indices():
            yield (*self.source[idx], gids)

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"epoch": np.int64(self.epoch).reshape(())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        epoch = int(np.asarray(state["epoch"]))
        if epoch < 0:
            raise ValueError(f"negative loader epoch {epoch}")
        self.epoch = epoch


__all__ = ["ArraySource", "BatchLoader", "GroupedBatchLoader", "RecordSource"]
