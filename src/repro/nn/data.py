"""Batched, seeded iteration over extractor output.

:class:`BatchLoader` wraps the ``(X, mask)`` pair that
``TLPFeaturizer.transform`` produces (plus optional labels) and yields
minibatches.  Shuffling draws each epoch's permutation from one named
``repro.utils.rng`` stream fixed at construction, so a training run is
a pure function of the stream name and the epoch count — the
bit-reproducibility the smoke-training tests pin.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.rng import stream


class BatchLoader:
    """Minibatch iterator over ``(X, mask[, labels])`` arrays."""

    def __init__(
        self,
        X: np.ndarray,
        mask: np.ndarray,
        labels: np.ndarray | None = None,
        batch_size: int = 32,
        shuffle: bool = True,
        stream_name: str = "nn.data.loader",
        drop_last: bool = False,
    ):
        X = np.asarray(X, dtype=np.float32)
        mask = np.asarray(mask, dtype=np.float32)
        if X.shape[0] != mask.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but mask has {mask.shape[0]}")
        if labels is not None:
            labels = np.asarray(labels, dtype=np.float32).reshape(-1)
            if labels.shape[0] != X.shape[0]:
                raise ValueError(f"X has {X.shape[0]} rows but labels has {labels.shape[0]}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.X = X
        self.mask = mask
        self.labels = labels
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = stream(stream_name)

    def __len__(self) -> int:
        n = self.X.shape[0]
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        n = self.X.shape[0]
        if self.shuffle:
            # One permutation per epoch, drawn from the loader's stream:
            # epoch k of a fresh loader with the same stream name sees the
            # same order.
            indices = self._rng.permutation(n)
        else:
            indices = np.arange(n)
        # len(self) already accounts for drop_last (floor vs ceil division),
        # so the batch count is the single source of truth here — no
        # separate short-batch guard to fall out of sync with it.
        for b in range(len(self)):
            start = b * self.batch_size
            batch = indices[start : start + self.batch_size]
            if self.labels is None:
                yield self.X[batch], self.mask[batch]
            else:
                yield self.X[batch], self.mask[batch], self.labels[batch]


__all__ = ["BatchLoader"]
