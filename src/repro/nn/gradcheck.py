"""Central finite-difference gradient checking.

What makes a from-scratch numpy autograd trustworthy: every layer and
loss in ``repro.nn`` is pinned by ``assert_gradients_match`` (run via
``make gradcheck`` / the ``gradcheck`` pytest marker), which compares
the tape's analytic gradients against ``(f(x + h) - f(x - h)) / 2h``
elementwise.  Forward passes stay float32 (the substrate has no other
precision), so tolerances are calibrated for float32 noise: with the
default ``eps`` the truncation and roundoff terms both sit well under
the 1e-3 relative-error bar the acceptance criteria set.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor


def numerical_gradient(
    loss_fn: Callable[[], Tensor], tensor: Tensor, eps: float = 1e-2
) -> np.ndarray:
    """Central-difference gradient of ``loss_fn()`` w.r.t. ``tensor``.

    ``loss_fn`` must rebuild the forward pass from ``tensor.data`` on
    every call and return a scalar tensor; entries of ``tensor.data``
    are perturbed in place and restored.
    """
    data = tensor.data
    grad = np.zeros_like(data)
    flat = data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.shape[0]):
        original = flat[i]
        flat[i] = original + np.float32(eps)
        f_plus = float(loss_fn().data)
        flat[i] = original - np.float32(eps)
        f_minus = float(loss_fn().data)
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """``max |a - n|`` scaled by the larger gradient magnitude (>= 1)."""
    scale = max(float(np.abs(analytic).max(initial=0.0)),
                float(np.abs(numeric).max(initial=0.0)), 1.0)
    return float(np.abs(analytic.astype(np.float32) - numeric).max(initial=0.0)) / scale


def assert_gradients_match(
    loss_fn: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    eps: float = 1e-2,
    tol: float = 1e-3,
) -> float:
    """Gradcheck ``loss_fn`` against every tensor in ``tensors``.

    Runs one analytic backward, then one central-difference pass per
    tensor, asserting the worst relative error stays under ``tol``
    (the acceptance bar: < 1e-3 in float32).  Returns the worst error.
    """
    for t in tensors:
        t.grad = None
    loss = loss_fn()
    if loss.size != 1:
        raise ValueError("gradcheck needs a scalar loss")
    loss.backward()
    worst = 0.0
    for t in tensors:
        if t.grad is None:
            raise AssertionError("tensor received no analytic gradient")
        analytic = t.grad.copy()
        numeric = numerical_gradient(loss_fn, t, eps)
        err = max_relative_error(analytic, numeric)
        if err >= tol:
            raise AssertionError(
                f"gradient mismatch: rel error {err:.2e} >= {tol:.0e} "
                f"for tensor of shape {t.shape}"
            )
        worst = max(worst, err)
    return worst


__all__ = ["assert_gradients_match", "max_relative_error", "numerical_gradient"]
