"""Multi-head self-attention with padding-mask support.

The Fig. 7 backbone's sequence mixer: scaled dot-product attention over
the primitive-sequence axis.  The padding mask is the float ``[N, L]``
array ``TLPFeaturizer.transform`` returns alongside ``X`` — 1.0 on real
primitive rows, 0.0 on padding — applied additively (−1e9 on masked
keys) before the softmax, so padded positions receive zero attention
weight from every query.

The mask → additive-bias conversion has one home,
:func:`repro.nn.functional.additive_mask_bias`, and is memoized per
batch through a :class:`~repro.nn.functional.MaskBiasCache` owned by the
layer — the taped forward and the tape-free ``TLPModel.predict`` plan
share both the formula and the cache, so re-scoring a batch (or running
``forward`` after ``predict``) converts the mask exactly once.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.functional import MASK_PENALTY, MaskBiasCache
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, softmax
from repro.utils.rng import stream

#: Additive logit for masked keys: large enough that float32 softmax
#: assigns them exactly zero weight against any real logit.  Re-exported
#: from ``repro.nn.functional`` (the serving path uses the same value).
_MASK_PENALTY = MASK_PENALTY


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention, ``n_heads`` parallel heads."""

    def __init__(self, dim: int, n_heads: int, rng: np.random.Generator | None = None):
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} is not divisible by n_heads {n_heads}")
        if rng is None:
            rng = stream(f"nn.init.attention.{dim}x{n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        self._mask_cache = MaskBiasCache()

    def mask_bias(self, mask: np.ndarray) -> np.ndarray:
        """Memoized ``[N, 1, 1, L]`` additive bias for a padding mask."""
        return self._mask_cache.get(mask)

    def _heads(self, x: Tensor, n: int, length: int) -> Tensor:
        """``[N, L, D] -> [N, heads, L, head_dim]``."""
        return x.reshape(n, length, self.n_heads, self.head_dim).transpose((0, 2, 1, 3))

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        n, length, _ = x.shape
        q = self._heads(self.q_proj(x), n, length)
        k = self._heads(self.k_proj(x), n, length)
        v = self._heads(self.v_proj(x), n, length)
        scores = (q @ k.transpose((0, 1, 3, 2))) * np.float32(1.0 / math.sqrt(self.head_dim))
        if mask is not None:
            scores = scores + self.mask_bias(mask)
        attn = softmax(scores, axis=-1)
        mixed = (attn @ v).transpose((0, 2, 1, 3)).reshape(n, length, self.dim)
        return self.out_proj(mixed)


__all__ = ["MultiHeadSelfAttention"]
