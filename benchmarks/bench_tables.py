"""Benchmarks regenerating the paper's tables (tiny scale).

Each benchmark reruns the corresponding experiment end to end — dataset
(disk-cached), model training, evaluation — and sanity-checks the output
shape against the paper's table structure.
"""

from repro.experiments import (
    arch_ablation,
    method_ablation,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)


def test_table3_loss_and_backbone(run_experiment):
    result = run_experiment(table3)
    assert len(result["rows"]) == 4  # attention/lstm x rank/mse


def test_table4_feature_size_cropping(run_experiment):
    result = run_experiment(table4)
    assert len(result["rows"]) == 4  # 2 seq lens x 2 emb sizes


def test_table5_all_platforms(run_experiment):
    result = run_experiment(table5)
    assert len(result["rows"]) == 7  # 5 CPUs + 2 GPUs


def test_table6_mtl_cpu_tasks(run_experiment):
    result = run_experiment(table6)
    assert len(result["rows"]) == 4  # 1..4 tasks


def test_table7_mtl_gpu_tasks(run_experiment):
    result = run_experiment(table7)
    assert len(result["rows"]) == 2


def test_table8_transfer_methods(run_experiment):
    result = run_experiment(table8)
    assert {r[0].split(" ")[0] for r in result["rows"]} == {
        "MTL",
        "Fine-tuning",
        "GPT",
        "BERT",
    }


def test_table9_between_architectures(run_experiment):
    result = run_experiment(table9)
    assert len(result["rows"]) == 4  # four auxiliary platforms


def test_arch_ablation(run_experiment):
    result = run_experiment(arch_ablation)
    assert len(result["rows"]) >= 8


def test_method_ablation(run_experiment):
    result = run_experiment(method_ablation)
    assert len(result["rows"]) == 3  # method3 / method2 / mse-label
