"""Measure the feature-pipeline perf numbers and write the trajectory file.

``make bench-save`` runs this script; it times the extractor and batch
verifier on a 1,024-sequence batch with ``repro.utils.timer`` and writes
``BENCH_feature_pipeline.json`` at the repo root — the committed perf
trajectory that future PRs extend (regressions show up as diffs).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.verifier import verify_many, verify_sequence  # noqa: E402
from repro.core import PostprocessConfig, TLPFeaturizer, reference_transform  # noqa: E402
from repro.tensorir import SketchConfig, SketchGenerator, matmul_subgraph  # noqa: E402
from repro.utils.rng import stream  # noqa: E402
from repro.utils.timer import Timer, best_of, format_seconds  # noqa: E402

BATCH = 1024
REPEATS = 5
OUT_PATH = REPO_ROOT / "BENCH_feature_pipeline.json"


def main() -> int:
    gen = SketchGenerator(SketchConfig("cpu"))
    subgraph = matmul_subgraph(128, 128, 128)
    with Timer() as t_sample:
        corpus = gen.generate_many(subgraph, BATCH, stream("bench.extractor"))
    sequences = [s.primitives for s in corpus]

    fitted = TLPFeaturizer(PostprocessConfig())
    with Timer() as t_fit:
        fitted.fit(corpus)

    # Cold: fresh featurizer per run — row memo and LRU both empty.
    def cold_once() -> None:
        featurizer = TLPFeaturizer(PostprocessConfig(), cache_size=0)
        featurizer.vocab_ = fitted.vocab_
        featurizer.raw_width_ = fitted.raw_width_
        featurizer.transform(corpus)

    t_cold = best_of(cold_once, REPEATS)

    # Steady: row memo warm, sequence LRU off (round >= 2 of a search).
    uncached = TLPFeaturizer(PostprocessConfig(), cache_size=0).fit(corpus)
    uncached.transform(corpus)
    t_steady = best_of(lambda: uncached.transform(corpus), REPEATS)

    # Warm: sequence LRU hit on every re-query.
    fitted.transform(corpus)
    t_warm = best_of(lambda: fitted.transform(corpus), REPEATS)

    t_reference = best_of(lambda: reference_transform(fitted, corpus), REPEATS)

    t_verify_loop = best_of(
        lambda: [verify_sequence(subgraph, seq) for seq in sequences], REPEATS
    )
    t_verify_many = best_of(lambda: verify_many(subgraph, sequences), REPEATS)

    report = {
        "benchmark": "feature_pipeline",
        "batch": BATCH,
        "subgraph": subgraph.name,
        "mean_sequence_length": sum(len(s) for s in sequences) / len(sequences),
        "feature_shape": [fitted.config.seq_len, fitted.config.emb],
        "raw_width": fitted.raw_width_,
        "timings_ms": {
            "sample_and_batch_verify": round(t_sample.elapsed * 1e3, 3),
            "fit": round(t_fit.elapsed * 1e3, 3),
            "transform_reference": round(t_reference * 1e3, 3),
            "transform_cold": round(t_cold * 1e3, 3),
            "transform_steady": round(t_steady * 1e3, 3),
            "transform_warm_lru": round(t_warm * 1e3, 3),
            "verify_loop": round(t_verify_loop * 1e3, 3),
            "verify_many": round(t_verify_many * 1e3, 3),
        },
        "speedups": {
            "transform_cold_vs_reference": round(t_reference / t_cold, 2),
            "transform_steady_vs_reference": round(t_reference / t_steady, 2),
            "transform_warm_vs_reference": round(t_reference / t_warm, 2),
            "verify_many_vs_loop": round(t_verify_loop / t_verify_many, 2),
        },
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {OUT_PATH}")
    for name, ms in report["timings_ms"].items():
        print(f"  {name:>24}: {format_seconds(ms / 1e3)}")
    for name, ratio in report["speedups"].items():
        print(f"  {name:>32}: {ratio}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
