"""Measure the abstract-interpreter perf numbers and write the trajectory file.

``make bench-save`` runs this script after the simhw saver; it times
static profiling and draft scoring over a 1,024-candidate batch, the
draft-then-verify serving round against the full-predict round (same
trained model and seeded candidate stream as ``bench_absint.py``), and
writes ``BENCH_absint.json`` at the repo root.  The top-1-preserved flag
doubles as a determinism probe: the whole pipeline is seeded, so a
flipped winner means a real behavior change, not noise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_absint import (  # noqa: E402
    DRAFT_KEEP,
    N_CANDIDATES,
    TOP_K,
    build_subgraph,
    build_trained_scorer,
)
from repro.analysis import absint  # noqa: E402
from repro.tensorir import SketchConfig, SketchGenerator  # noqa: E402
from repro.utils.rng import stream  # noqa: E402
from repro.utils.timer import Timer, best_of, format_seconds  # noqa: E402

REPEATS = 3
OUT_PATH = REPO_ROOT / "BENCH_absint.json"


def main() -> int:
    subgraph = build_subgraph()
    gen = SketchGenerator(SketchConfig("cpu"))
    candidates = gen.generate_many(subgraph, N_CANDIDATES,
                                   stream("bench.absint.plane"))

    t_profile = best_of(lambda: absint.profile_many(subgraph, candidates), REPEATS)
    t_draft = best_of(lambda: absint.draft_scores(subgraph, candidates), REPEATS)

    with Timer() as t_train:
        scorer = build_trained_scorer(subgraph)

    def full():
        return scorer.propose_topk(subgraph, N_CANDIDATES, TOP_K,
                                   stream("bench.absint.round"))

    def drafted():
        return scorer.propose_topk(subgraph, N_CANDIDATES, TOP_K,
                                   stream("bench.absint.round"),
                                   draft_keep=DRAFT_KEEP)

    _, top_full = full()
    _, top_draft = drafted()
    t_full = best_of(full, REPEATS)
    t_drafted = best_of(drafted, REPEATS)

    report = {
        "benchmark": "absint",
        "candidates": N_CANDIDATES,
        "static_features": len(absint.STATIC_FEATURE_NAMES),
        "profile_many_seconds": t_profile,
        "profiles_per_sec": N_CANDIDATES / t_profile,
        "draft_scores_seconds": t_draft,
        "train_seconds": t_train.elapsed,
        "draft_keep": DRAFT_KEEP,
        "full_round_seconds": t_full,
        "draft_round_seconds": t_drafted,
        "speedup": t_full / t_drafted,
        "n_predicted_full": int(top_full.n_predicted),
        "n_predicted_draft": int(top_draft.n_predicted),
        "top1_preserved": bool(top_full.indices[0] == top_draft.indices[0]),
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(f"profile_many: {N_CANDIDATES} candidates in "
          f"{format_seconds(t_profile)} "
          f"({N_CANDIDATES / t_profile:,.0f} profiles/sec)")
    print(f"draft_scores: {format_seconds(t_draft)}")
    print(f"serving round: full {format_seconds(t_full)} vs drafted "
          f"{format_seconds(t_drafted)} ({t_full / t_drafted:.2f}x, "
          f"{top_draft.n_predicted}/{N_CANDIDATES} predicted, "
          f"top-1 preserved: {report['top1_preserved']})")
    print(f"wrote {OUT_PATH.name}")
    if not report["top1_preserved"]:
        print("ERROR: draft-then-verify changed the top-1 pick", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
