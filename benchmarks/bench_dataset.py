"""Micro-benchmarks for the dataset factory hot path (ISSUE 7).

The acceptance claim: the single-pass pipeline streams >= 5,000 records
per second per core into the shard store when featurization, profiling,
and generation are amortized across all same-target platforms.  The
full-scale number (>= 1M records, all 7 platforms) is recorded by
``make bench-save`` into ``BENCH_dataset.json``; these benchmarks pin
the per-stage shares on a store small enough for the pytest loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import DatasetSpec, ShardReader, build_dataset
from repro.dataset.pipeline import fit_featurizer
from repro.tensorir import network_pool
from repro.utils.rng import stream

#: One bert task, all 7 platforms: ~4 candidate batches/sec of real work.
SPEC = DatasetSpec(
    name="bench",
    networks=("bert_tiny",),
    platforms=(
        "platinum-8272", "e5-2673", "i7-10510u", "epyc-7452", "graviton2",
        "k80", "t4",
    ),
    candidates_per_task=256,
    shard_size=2048,
)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("bench-store")
    manifest = build_dataset(SPEC, store_dir)
    return store_dir, manifest


def test_build_throughput(benchmark, tmp_path_factory):
    """End-to-end records/sec on the 7-platform amortized path."""
    counter = iter(range(10_000))

    def build():
        store_dir = tmp_path_factory.mktemp(f"b{next(counter)}")
        return build_dataset(SPEC, store_dir)

    manifest = benchmark.pedantic(build, rounds=3, iterations=1)
    assert manifest.complete
    # 5 tasks x 256 candidates x 7 platforms.
    assert manifest.total_records == 8960


def test_featurizer_fit(benchmark):
    featurizer = benchmark(fit_featurizer, SPEC)
    assert featurizer.is_fitted


def test_transform_into_reuses_buffers(benchmark):
    """Steady-state featurization into donated buffers — zero tensor
    allocations per batch (the counter-pinned satellite)."""
    featurizer = fit_featurizer(SPEC)
    sg = network_pool("bert_tiny").subgraphs[0]
    from repro.tensorir import SketchConfig, SketchGenerator

    batch = SketchGenerator(SketchConfig("cpu")).generate_many(
        sg, 256, stream("bench.dataset.transform")
    )
    cfg = featurizer.config
    X = np.zeros((256, cfg.seq_len, cfg.emb), dtype=np.float32)
    mask = np.zeros((256, cfg.seq_len), dtype=np.float32)
    featurizer.transform_into(batch, X, mask)  # warm the row memo

    out = benchmark(featurizer.transform_into, batch, X, mask)
    assert out[0].shape == (256, cfg.seq_len, cfg.emb)
    assert featurizer.cache_info()["rows_encoded"] > 0


def test_reader_gather_minibatch(benchmark, store):
    """One shuffled 512-row minibatch out of the memory-mapped store."""
    store_dir, manifest = store
    reader = ShardReader(store_dir)
    rng = stream("bench.dataset.gather")
    indices = rng.permutation(manifest.total_records)[:512]

    X, mask, label = benchmark(reader.gather, indices)
    assert X.shape[0] == mask.shape[0] == label.shape[0] == 512
