"""Training-loop throughput: the ISSUE 8 hot path.

One offline epoch is millions of ``train_step`` calls' worth of rows, so
the per-batch cost (gather into pooled buffers -> forward -> lambda-rank
-> backward -> Adam) is what bounds wall-clock training time.  Measured
here on a real built store with the smoke-train model geometry:

* ``train_step`` on a full packed batch — the headline records/sec
  (``make bench-save`` records the exact number into
  ``BENCH_training.json``);
* steady-state gather allocations: after warm-up, every arena probe for
  the wide X / label buffers must be a pool hit (the padding mask is
  deliberately fresh per batch — the attention bias cache is keyed by
  mask identity, so recycling the mask object would alias stale biases);
* a whole ``train_epoch`` for the end-to-end figure including loader
  shuffling and loss bookkeeping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tlp_model import TLPModel, TLPModelConfig
from repro.core.trainer import TrainConfig, Trainer
from repro.dataset.pipeline import build_dataset
from repro.dataset.reader import ShardReader
from repro.dataset.spec import DatasetSpec


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    spec = DatasetSpec(
        name="bench-training",
        networks=("bert_tiny", "resnet18", "mobilenet_v2"),
        platforms=("platinum-8272",),
        candidates_per_task=64,
        shard_size=4096,
        holdout_networks=("mobilenet_v2",),
    )
    root = tmp_path_factory.mktemp("bench-training") / "store"
    build_dataset(spec, root)
    return root


@pytest.fixture(scope="module")
def trainer(store):
    reader = ShardReader(store)
    emb = reader.manifest.schema.columns()["X"][1][-1]
    model = TLPModel(TLPModelConfig(emb=emb, hidden=48, n_heads=4,
                                    n_res_blocks=2,
                                    stream_name="bench.training.model"))
    return Trainer(model, reader, TrainConfig(
        epochs=4, batch_size=64, segment_size=16, lr=1e-3,
        stream_name="bench.training",
    ))


@pytest.fixture(scope="module")
def packed_batch(trainer):
    """The first full-size packed batch of epoch 0 (fixed geometry)."""
    for idx, gids in trainer.loader.iter_indices():
        if idx.shape[0] == trainer.config.batch_size:
            return idx, gids
    raise AssertionError("loader produced no full batch")


def test_train_step_batch64(benchmark, trainer, packed_batch):
    idx, gids = packed_batch
    loss = benchmark(trainer.train_step, idx, gids)
    assert np.isfinite(loss)


def test_train_step_steady_state_gathers_allocate_nothing(trainer, packed_batch):
    """After warm-up, the X / label gather buffers are pure pool hits."""
    idx, gids = packed_batch
    trainer.train_step(idx, gids)  # warm the arena for this geometry
    trainer._arena.reset_counters()
    for _ in range(3):
        trainer.train_step(idx, gids)
    assert trainer._arena.misses == 0
    assert trainer._arena.hits == 6  # X + label, three steps


def test_train_epoch_end_to_end(benchmark, trainer):
    mean_loss = benchmark.pedantic(trainer.train_epoch, rounds=1, iterations=1)
    assert np.isfinite(mean_loss)
