"""Measure the inference fast-path perf numbers and write the trajectory file.

``make bench-save`` runs this script after ``bench_save.py``; it times
the taped forward, the ``no_grad`` forward, and the fused ``predict``
path on a 1,024-schedule batch, plus the end-to-end
``CandidateScorer`` loop, and writes ``BENCH_nn_inference.json`` at the
repo root — the committed perf trajectory for the serving path
(ISSUE 4 acceptance: predict >= 3x the taped forward, bit-identical).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    CandidateScorer,
    PostprocessConfig,
    TLPFeaturizer,
    TLPModel,
    TLPModelConfig,
)
from repro.nn import no_grad  # noqa: E402
from repro.tensorir import SketchConfig, SketchGenerator, matmul_subgraph  # noqa: E402
from repro.utils.rng import stream  # noqa: E402
from repro.utils.timer import Timer, best_of, format_seconds  # noqa: E402

BATCH = 1024
TOP_K = 32
REPEATS = 5
OUT_PATH = REPO_ROOT / "BENCH_nn_inference.json"

_CONFIG = TLPModelConfig(emb=22, hidden=64, n_heads=4, n_res_blocks=2,
                         stream_name="bench.inference.model")


def main() -> int:
    gen = SketchGenerator(SketchConfig("cpu"))
    subgraph = matmul_subgraph(128, 128, 128)
    corpus = gen.generate_many(subgraph, BATCH, stream("bench.inference"))
    featurizer = TLPFeaturizer(PostprocessConfig()).fit(corpus)
    X, mask = featurizer.transform(corpus)
    model = TLPModel(_CONFIG).eval()

    taped_scores = model(X, mask).data
    t_taped = best_of(lambda: model(X, mask), REPEATS)

    def forward_no_grad():
        with no_grad():
            model(X, mask)

    forward_no_grad()
    t_no_grad = best_of(forward_no_grad, REPEATS)

    # Cold: first predict call builds every scratch buffer.
    model._arena.clear()
    with Timer() as t_cold:
        predict_scores = model.predict(X, mask)
    assert np.array_equal(predict_scores, taped_scores), \
        "predict() diverged from the taped forward"

    # Steady: arena warm — the serving regime.
    model._arena.reset_counters()
    t_predict = best_of(lambda: model.predict(X, mask), REPEATS)
    assert model._arena.misses == 0, model.scratch_info()

    scorer = CandidateScorer(model, featurizer, gen)
    scorer.score_topk(subgraph, corpus, TOP_K)  # warm caches end to end
    t_scorer = best_of(lambda: scorer.score_topk(subgraph, corpus, TOP_K), REPEATS)

    report = {
        "benchmark": "nn_inference",
        "batch": BATCH,
        "model": {"emb": _CONFIG.emb, "hidden": _CONFIG.hidden,
                  "n_heads": _CONFIG.n_heads, "n_res_blocks": _CONFIG.n_res_blocks},
        "scratch": model.scratch_info(),
        "timings_ms": {
            "forward_taped": round(t_taped * 1e3, 3),
            "forward_no_grad": round(t_no_grad * 1e3, 3),
            "predict_cold": round(t_cold.elapsed * 1e3, 3),
            "predict_steady": round(t_predict * 1e3, 3),
            "scorer_end_to_end": round(t_scorer * 1e3, 3),
        },
        "speedups": {
            "no_grad_vs_taped": round(t_taped / t_no_grad, 2),
            "predict_vs_taped": round(t_taped / t_predict, 2),
        },
        "throughput": {
            "predict_candidates_per_sec": round(BATCH / t_predict, 1),
            "scorer_candidates_per_sec": round(BATCH / t_scorer, 1),
        },
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {OUT_PATH}")
    for name, ms in report["timings_ms"].items():
        print(f"  {name:>24}: {format_seconds(ms / 1e3)}")
    for name, ratio in report["speedups"].items():
        print(f"  {name:>24}: {ratio}x")
    for name, value in report["throughput"].items():
        print(f"  {name:>28}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
