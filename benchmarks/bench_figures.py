"""Benchmarks regenerating the paper's figures (tiny scale)."""

from repro.experiments import figure6, figure9, figure10, figure11, figure12_13


def test_figure6_dataset_statistics(run_experiment):
    result = run_experiment(figure6)
    assert result["sequence_length_distribution"]
    assert "SP" in result["max_embedding_sizes"]
    assert result["collision"]["repetition_rate_pct"] < 50.0


def test_figure9_data_size_sweep(run_experiment):
    result = run_experiment(figure9)
    assert len(result["rows"]) >= 3  # fractions + MLP reference


def test_figure10_tuning_pipeline_time(run_experiment):
    result = run_experiment(figure10)
    assert result["mean_speedup"]["cpu"] is not None


def test_figure11_tuning_curves(run_experiment):
    result = run_experiment(figure11)
    assert result["curves"]
    for curve in result["curves"].values():
        assert len(curve["workload_latency"]) > 0


def test_figure12_13_search_speedups(run_experiment):
    result = run_experiment(figure12_13)
    assert result["figure12"]["rows"]
    assert result["figure13"]["rows"]
