"""Measure the simulated-hardware perf numbers and write the trajectory file.

``make bench-save`` runs this script after the feature-pipeline and
inference savers; it times ``measure_many`` on a 10,000-schedule batch
(the ISSUE 5 acceptance budget is 10 s), the feature-extraction share,
and the per-platform labelling sweep, and writes ``BENCH_simhw.json``
at the repo root.  The report also records the latency digest so the
perf trajectory doubles as a cross-machine determinism probe.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.simhw import ALL_PLATFORMS, PLATFORMS, measure_many  # noqa: E402
from repro.simhw.measure import extract_features  # noqa: E402
from repro.tensorir import SketchConfig, SketchGenerator, matmul_subgraph  # noqa: E402
from repro.utils.rng import stream  # noqa: E402
from repro.utils.timer import Timer, best_of, format_seconds  # noqa: E402

BATCH = 10_000
REPEATS = 3
OUT_PATH = REPO_ROOT / "BENCH_simhw.json"

_SUB = matmul_subgraph(128, 128, 128)
_INTEL = PLATFORMS["platinum-8272"]


def main() -> int:
    with Timer() as t_gen:
        cpu_corpus = SketchGenerator(SketchConfig("cpu")).generate_many(
            _SUB, BATCH, stream("bench.simhw.save.cpu"))
        gpu_corpus = SketchGenerator(SketchConfig("gpu")).generate_many(
            _SUB, BATCH, stream("bench.simhw.save.gpu"))

    t_extract = best_of(lambda: extract_features(_SUB, cpu_corpus, _INTEL), REPEATS)
    t_cpu = best_of(lambda: measure_many(_SUB, cpu_corpus, _INTEL), REPEATS)
    t_gpu = best_of(lambda: measure_many(_SUB, gpu_corpus, PLATFORMS["t4"]), REPEATS)

    digest = hashlib.sha256()
    with Timer() as t_sweep:
        for platform in ALL_PLATFORMS:
            corpus = cpu_corpus if platform.target == "cpu" else gpu_corpus
            latencies = measure_many(_SUB, corpus, platform)
            assert np.all(latencies > 0)
            digest.update(latencies.tobytes())

    report = {
        "benchmark": "simhw",
        "batch": BATCH,
        "platforms": len(ALL_PLATFORMS),
        "timings_ms": {
            "generate_2x10k": round(t_gen.elapsed * 1e3, 3),
            "extract_features_10k": round(t_extract * 1e3, 3),
            "measure_many_cpu_10k": round(t_cpu * 1e3, 3),
            "measure_many_gpu_10k": round(t_gpu * 1e3, 3),
            "sweep_all_platforms": round(t_sweep.elapsed * 1e3, 3),
        },
        "throughput": {
            "cpu_labels_per_sec": round(BATCH / t_cpu, 1),
            "gpu_labels_per_sec": round(BATCH / t_gpu, 1),
        },
        "budget": {"labels_10k_budget_s": 10.0, "labels_10k_measured_s": round(t_cpu, 4)},
        "latency_digest_sha256": digest.hexdigest(),
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {OUT_PATH}")
    for name, ms in report["timings_ms"].items():
        print(f"  {name:>24}: {format_seconds(ms / 1e3)}")
    for name, value in report["throughput"].items():
        print(f"  {name:>24}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
