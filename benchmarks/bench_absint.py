"""Abstract-interpreter benchmarks: static profiling throughput and the
Pruner-style draft-then-verify serving win.

The headline comparison: ``CandidateScorer.propose_topk`` with
``draft_keep=0.5`` must beat the full-predict path on wall clock while
sending at most half the candidates to ``TLPModel.predict`` and
preserving the full path's exact top-1 pick.  For the draft to be a
*meaningful* screen the model has to rank like the simulated hardware,
so the fixture briefly trains the TLP model on ``simhw`` labels (the
seeded recipe below is deterministic end to end); at ``hidden=256`` one
predict over 1,024 candidates costs ~0.7 s, which is the regime where a
free static draft pays for itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import absint
from repro.core.extractor import TLPFeaturizer
from repro.core.postprocess import PostprocessConfig
from repro.core.scoring import CandidateScorer
from repro.core.tlp_model import TLPModel, TLPModelConfig
from repro.nn import Adam, mse_loss
from repro.simhw import labels_from_latencies, measure_many
from repro.tensorir import SketchConfig, SketchGenerator, matmul_subgraph
from repro.utils.rng import stream
from repro.utils.timer import best_of

N_CANDIDATES = 1024
TOP_K = 16
DRAFT_KEEP = 0.5

_TRAIN = 512
_EPOCHS = 12
_BATCH = 64
_LR = 3e-3


def build_subgraph():
    return matmul_subgraph(128, 128, 128)


def build_trained_scorer(subgraph):
    """Featurizer + TLP model trained briefly on simhw platinum labels.

    Labels are standardized (ranking-invariant) so the regression head
    converges from its raw init scale within a few epochs; the point is
    rank correlation with the hardware model, not calibrated latencies.
    """
    gen = SketchGenerator(SketchConfig("cpu"))
    corpus = gen.generate_many(subgraph, N_CANDIDATES, stream("bench.absint.corpus"))
    featurizer = TLPFeaturizer(PostprocessConfig()).fit(corpus)
    model = TLPModel(TLPModelConfig(
        emb=featurizer.config.emb, hidden=256, n_heads=8, n_res_blocks=2,
        stream_name="bench.absint.model"))

    train = corpus[:_TRAIN]
    raw = labels_from_latencies(measure_many(subgraph, train, "platinum-8272"))
    labels = (raw - raw.mean()) / raw.std()
    X, M = featurizer.transform(train)
    opt = Adam(model.parameters(), lr=_LR)
    shuffle = stream("bench.absint.shuffle")
    for _ in range(_EPOCHS):
        order = shuffle.permutation(_TRAIN)
        for i in range(0, _TRAIN, _BATCH):
            b = order[i : i + _BATCH]
            opt.zero_grad()
            loss = mse_loss(model(X[b], M[b]), labels[b])
            loss.backward()
            opt.step()
    model.eval()
    return CandidateScorer(model, featurizer, gen)


@pytest.fixture(scope="module")
def subgraph():
    return build_subgraph()


@pytest.fixture(scope="module")
def scorer(subgraph):
    return build_trained_scorer(subgraph)


@pytest.fixture(scope="module")
def candidates(subgraph):
    gen = SketchGenerator(SketchConfig("cpu"))
    return gen.generate_many(subgraph, N_CANDIDATES,
                             stream("bench.absint.plane"))


def test_profile_many_throughput(benchmark, subgraph, candidates):
    """Static-feature plane extraction over the full candidate batch."""
    plane = benchmark(absint.profile_many, subgraph, candidates)
    assert plane.shape == (N_CANDIDATES, len(absint.STATIC_FEATURE_NAMES))
    assert np.isfinite(plane).all()


def test_draft_scores_throughput(benchmark, subgraph, candidates):
    """Analytical draft ranking of the full candidate batch."""
    draft = benchmark(absint.draft_scores, subgraph, candidates)
    assert draft.shape == (N_CANDIDATES,) and draft.max() == np.float32(1.0)


def test_draft_then_verify_speedup(benchmark, subgraph, scorer):
    """The acceptance gate: half the predicts, same top-1, faster."""
    rng_name = "bench.absint.round"

    def full():
        return scorer.propose_topk(subgraph, N_CANDIDATES, TOP_K,
                                   stream(rng_name))

    def drafted():
        return scorer.propose_topk(subgraph, N_CANDIDATES, TOP_K,
                                   stream(rng_name), draft_keep=DRAFT_KEEP)

    _, top_full = full()
    _, top_draft = benchmark.pedantic(drafted, rounds=1, iterations=1)

    # The draft screens — it must not change the winner or widen the
    # model's workload past the keep fraction.
    assert top_draft.n_predicted <= N_CANDIDATES // 2
    assert top_full.n_predicted == N_CANDIDATES
    assert top_full.indices[0] == top_draft.indices[0], (
        f"draft-then-verify changed the top-1 pick: "
        f"{top_full.indices[0]} -> {top_draft.indices[0]}")
    # Both rankings are real model scores, descending.
    assert (top_draft.scores[:-1] >= top_draft.scores[1:]).all()

    t_full = best_of(full, 3)
    t_draft = best_of(drafted, 3)
    speedup = t_full / t_draft
    # Recorded ~1.2x at hidden=256 (draft overhead ~0.25 s vs the ~0.35 s
    # of predict it saves); the floor is wide to stay robust to load.
    assert speedup > 1.05, (
        f"draft-then-verify no faster than full predict: "
        f"{t_full * 1e3:.0f} ms vs {t_draft * 1e3:.0f} ms ({speedup:.2f}x)")
    benchmark.extra_info["t_full_ms"] = t_full * 1e3
    benchmark.extra_info["t_draft_ms"] = t_draft * 1e3
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["n_predicted"] = int(top_draft.n_predicted)
