"""Measure dataset-factory throughput at scale and write BENCH_dataset.json.

``make bench-save`` runs this last: it builds a >= 1M-record store —
all 5 network pools (30 tasks) x 4,800 candidates x all 7 simulated
platforms = 1,008,000 records — on one core and records records/sec
against the ISSUE 7 floor of 5,000/s.

Memory flatness is measured the only way that is honest: two *separate
subprocess* builds (1/8-scale and full-scale) each report their own
``ru_maxrss``.  Streaming shards mean peak RSS is one candidate batch
plus one shard regardless of dataset size, so the full-scale build may
not grow its peak by more than a small constant factor over the
1/8-scale build.  The store digest is recorded so the perf trajectory
doubles as a cross-machine determinism probe.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_dataset.json"

ALL_PLATFORMS = (
    "platinum-8272", "e5-2673", "i7-10510u", "epyc-7452", "graviton2",
    "k80", "t4",
)
ALL_NETWORKS = ("resnet50", "resnet18", "mobilenet_v2", "bert_base", "bert_tiny")

#: 30 tasks x 4800 candidates x 7 platforms = 1,008,000 records.
FULL_CANDIDATES = 4800
SMALL_CANDIDATES = FULL_CANDIDATES // 8
SHARD_SIZE = 65536
FLOOR_RECORDS_PER_SEC = 5000.0
#: Full-scale peak RSS must stay within this factor of the 1/8-scale run.
RSS_FLATNESS_FACTOR = 1.35

_CHILD = r"""
import json, resource, sys, tempfile, time
sys.path.insert(0, sys.argv[1])
from pathlib import Path
from repro.dataset import DatasetSpec, build_dataset

candidates = int(sys.argv[2])
spec = DatasetSpec(
    name="bench-full",
    networks={networks!r},
    platforms={platforms!r},
    candidates_per_task=candidates,
    shard_size={shard_size},
    holdout_networks=("mobilenet_v2",),
)
with tempfile.TemporaryDirectory(prefix="repro-bench-dataset-") as tmp:
    t0 = time.perf_counter()
    manifest = build_dataset(spec, Path(tmp) / "store")
    elapsed = time.perf_counter() - t0
assert manifest.complete
print(json.dumps({{
    "records": manifest.total_records,
    "shards": len(manifest.shards),
    "seconds": round(elapsed, 3),
    "records_per_sec": round(manifest.total_records / elapsed, 1),
    "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "digest": manifest.store_digest(),
    "mean_seq_len": manifest.stats["mean_len"],
}}))
"""


def _run_build(candidates: int) -> dict:
    code = _CHILD.format(
        networks=ALL_NETWORKS, platforms=ALL_PLATFORMS, shard_size=SHARD_SIZE
    )
    proc = subprocess.run(
        [sys.executable, "-c", code, str(REPO_ROOT / "src"), str(candidates)],
        capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def main() -> int:
    print(f"building 1/8-scale store ({SMALL_CANDIDATES} candidates/task)...")
    small = _run_build(SMALL_CANDIDATES)
    print(f"  {small['records']} records in {small['seconds']}s "
          f"({small['records_per_sec']}/s, peak {small['ru_maxrss_kb']} kB)")

    print(f"building full-scale store ({FULL_CANDIDATES} candidates/task)...")
    full = _run_build(FULL_CANDIDATES)
    print(f"  {full['records']} records in {full['seconds']}s "
          f"({full['records_per_sec']}/s, peak {full['ru_maxrss_kb']} kB)")

    rss_ratio = full["ru_maxrss_kb"] / small["ru_maxrss_kb"]
    scale = full["records"] / small["records"]
    assert full["records"] >= 1_000_000, full["records"]
    assert full["records_per_sec"] >= FLOOR_RECORDS_PER_SEC, full
    assert rss_ratio <= RSS_FLATNESS_FACTOR, (
        f"peak RSS grew {rss_ratio:.2f}x on a {scale:.0f}x larger build — "
        "the pipeline is no longer streaming"
    )

    report = {
        "benchmark": "dataset",
        "networks": len(ALL_NETWORKS),
        "tasks": 30,
        "platforms": len(ALL_PLATFORMS),
        "candidates_per_task": FULL_CANDIDATES,
        "records": full["records"],
        "shards": full["shards"],
        "seconds": full["seconds"],
        "records_per_sec": full["records_per_sec"],
        "floor_records_per_sec": FLOOR_RECORDS_PER_SEC,
        "mean_seq_len": full["mean_seq_len"],
        "memory": {
            "small_records": small["records"],
            "small_peak_rss_kb": small["ru_maxrss_kb"],
            "full_peak_rss_kb": full["ru_maxrss_kb"],
            "rss_ratio_on_8x_build": round(rss_ratio, 3),
            "flatness_factor_budget": RSS_FLATNESS_FACTOR,
        },
        "store_digest_sha256": full["digest"],
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    print(f"  records_per_sec: {report['records_per_sec']} "
          f"(floor {FLOOR_RECORDS_PER_SEC})")
    print(f"  peak RSS ratio on 8x build: {report['memory']['rss_ratio_on_8x_build']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
