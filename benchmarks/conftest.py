"""Benchmark fixtures: tiny-scale experiment running.

Each paper table/figure has one benchmark that regenerates it at the
``tiny`` scale (datasets are disk-cached under ``data/`` so repeated runs
skip generation). These are end-to-end timings of the reproduction
pipeline, not micro-benchmarks; they run once per session
(``benchmark.pedantic`` with a single round).
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_experiment(benchmark):
    """Run an experiment's `run(scale='tiny')` once under the benchmark."""

    def _run(module):
        result = benchmark.pedantic(
            lambda: module.run(scale="tiny", verbose=False), rounds=1, iterations=1
        )
        assert result is not None
        return result

    return _run
