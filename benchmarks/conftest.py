"""Benchmark fixtures: tiny-scale experiment running.

Each paper table/figure has one benchmark that regenerates it at the
``tiny`` scale (datasets are disk-cached under ``data/`` so repeated runs
skip generation). These are end-to-end timings of the reproduction
pipeline, not micro-benchmarks; they run once per session
(``benchmark.pedantic`` with a single round).
"""

from __future__ import annotations

import importlib.util

import pytest

# Benchmarks exercise subsystems that land PR by PR; skip collecting the
# modules whose imports are not available yet so the tier-1 run stays green.
# Gates are per-module (finest missing piece), so landing one subsystem
# un-skips exactly the benchmarks it unblocks: bench_extractor needs only
# repro.core (present), while bench_micro's Figure-10 comparisons still
# wait on the hardware simulator, workloads, baselines, and the TLP model.
_REQUIRES = {
    "bench_micro.py": (
        "repro.core.tlp_model",
        "repro.simhw",
        "repro.workloads",
        "repro.baselines",
    ),
    "bench_extractor.py": ("repro.core",),
    "bench_simhw.py": ("repro.simhw",),
    "bench_nn.py": ("repro.nn", "repro.core.tlp_model"),
    "bench_inference.py": ("repro.nn.functional", "repro.core.tlp_model",
                           "repro.core.scoring"),
    "bench_absint.py": ("repro.analysis.absint", "repro.core.scoring",
                        "repro.simhw", "repro.nn"),
    "bench_training.py": ("repro.core.trainer", "repro.dataset", "repro.nn"),
    "bench_tables.py": ("repro.experiments",),
    "bench_figures.py": ("repro.experiments",),
}


def _missing(module: str) -> bool:
    try:
        return importlib.util.find_spec(module) is None
    except ModuleNotFoundError:
        return True


collect_ignore = [f for f, mods in _REQUIRES.items() if any(_missing(m) for m in mods)]


@pytest.fixture()
def run_experiment(benchmark):
    """Run an experiment's `run(scale='tiny')` once under the benchmark."""

    def _run(module):
        result = benchmark.pedantic(
            lambda: module.run(scale="tiny", verbose=False), rounds=1, iterations=1
        )
        assert result is not None
        return result

    return _run
