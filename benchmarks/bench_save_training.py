"""Measure training throughput and write BENCH_training.json.

``make bench-save`` runs this after the dataset benchmark: build a
mid-scale single-platform store (5 network pools, 96 candidates/task),
train the smoke-train model geometry for one warm-up epoch plus three
timed epochs, and record steady-state ``train_step`` throughput in
records/sec against the floor.  The floor is ~40% of the measured
number on the reference container — it exists to catch training-loop
regressions (a lost arena pool, a stray per-batch copy of the wide X
block), not to pin the headline.

Everything is stream-seeded, so the final-weights digest doubles as a
cross-machine determinism probe for the whole train loop.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
OUT_PATH = REPO_ROOT / "BENCH_training.json"

NETWORKS = ("bert_tiny", "resnet18", "resnet50", "bert_base", "mobilenet_v2")
CANDIDATES = 96
EPOCHS = 4  # 1 warm-up + 3 timed
FLOOR_RECORDS_PER_SEC = 1500.0


def main() -> int:
    from repro.core.tlp_model import TLPModel, TLPModelConfig
    from repro.core.trainer import TrainConfig, Trainer, _run_digest
    from repro.dataset.pipeline import build_dataset
    from repro.dataset.reader import ShardReader
    from repro.dataset.spec import DatasetSpec

    spec = DatasetSpec(
        name="bench-training",
        networks=NETWORKS,
        platforms=("platinum-8272",),
        candidates_per_task=CANDIDATES,
        shard_size=8192,
        holdout_networks=("mobilenet_v2",),
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-training-") as tmp:
        t0 = time.perf_counter()
        manifest = build_dataset(spec, Path(tmp) / "store")
        build_s = time.perf_counter() - t0
        print(f"store: {manifest.total_records} records in {build_s:.1f}s")

        reader = ShardReader(Path(tmp) / "store")
        emb = reader.manifest.schema.columns()["X"][1][-1]
        model = TLPModel(TLPModelConfig(emb=emb, hidden=48, n_heads=4,
                                        n_res_blocks=2))
        trainer = Trainer(model, reader, TrainConfig(
            epochs=EPOCHS, batch_size=64, segment_size=16, lr=1e-3,
        ))
        rows_per_epoch = int(trainer.train_indices.shape[0])

        trainer.fit(until=1)  # warm-up: arena buffers, mmap pages
        t0 = time.perf_counter()
        history = trainer.fit()
        train_s = time.perf_counter() - t0
        records_per_sec = rows_per_epoch * (EPOCHS - 1) / train_s
        report_eval = trainer.evaluate()

    losses = [row["loss"] for row in history]
    assert losses[-1] < losses[0], f"loss did not decrease: {losses}"
    assert records_per_sec >= FLOOR_RECORDS_PER_SEC, (
        f"train_step throughput {records_per_sec:.0f}/s under the "
        f"{FLOOR_RECORDS_PER_SEC}/s floor"
    )

    report = {
        "benchmark": "training",
        "networks": len(NETWORKS),
        "candidates_per_task": CANDIDATES,
        "store_records": manifest.total_records,
        "train_rows_per_epoch": rows_per_epoch,
        "batch_size": 64,
        "segment_size": 16,
        "model": {"hidden": 48, "n_heads": 4, "n_res_blocks": 2},
        "timed_epochs": EPOCHS - 1,
        "seconds": round(train_s, 3),
        "records_per_sec": round(records_per_sec, 1),
        "floor_records_per_sec": FLOOR_RECORDS_PER_SEC,
        "store_build_seconds": round(build_s, 3),
        "final_loss": round(losses[-1], 6),
        "holdout_top_k": {str(k): round(v, 4)
                          for k, v in report_eval["top_k"].items()},
        "random_top_k": {str(k): round(v, 4)
                         for k, v in report_eval["random_top_k"].items()},
        "run_digest_sha256": _run_digest(model, history),
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    print(f"  records_per_sec: {report['records_per_sec']} "
          f"(floor {FLOOR_RECORDS_PER_SEC})")
    print(f"  holdout top-k: {report['holdout_top_k']} "
          f"vs random {report['random_top_k']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
