"""Micro-benchmarks of the still-unbuilt simulated-hardware comparisons.

The headline micro-comparison mirrors Figure 10's mechanism: TLP feature
extraction reads the primitive sequence directly, while Ansor/TenSet
feature extraction must first lower the schedule to a tensor program —
so the TLP pipeline is measurably faster per candidate.

The extractor-only benchmarks live in ``bench_extractor.py`` and run
today; this module keeps the comparisons that need ``repro.simhw``,
``repro.workloads``, ``repro.baselines`` and the TLP model, and stays
import-gated (see ``conftest.py``) until those subsystems land.
"""

import pytest

from repro.baselines import extract_features_batch
from repro.core import PostprocessConfig, TLPFeaturizer
from repro.core.tlp_model import TLPConfig, TLPModel
from repro.simhw import get_platform, program_latency
from repro.tensorir import SketchConfig, SketchGenerator
from repro.utils.rng import stream
from repro.workloads import build_network


@pytest.fixture(scope="module")
def schedules():
    subgraph = build_network("resnet50")[2]
    gen = SketchGenerator(SketchConfig("cpu"))
    rng = stream("bench.micro.schedules")
    return gen.generate_many(subgraph, 64, rng)


def test_ansor_feature_extraction(benchmark, schedules):
    """Includes schedule lowering — the cost TLP avoids (Figure 10)."""
    feats, valid = benchmark(extract_features_batch, schedules)
    assert valid.all()


def test_schedule_application(benchmark, schedules):
    programs = benchmark(lambda: [s.apply() for s in schedules])
    assert len(programs) == 64


def test_latency_model_cpu(benchmark, schedules):
    platform = get_platform("platinum-8272")
    programs = [s.apply() for s in schedules]
    lats = benchmark(lambda: [program_latency(p, platform) for p in programs])
    assert all(l > 0 for l in lats)


def test_tlp_model_inference(benchmark, schedules):
    featurizer = TLPFeaturizer(PostprocessConfig())
    featurizer.fit(schedules)
    X, M = featurizer.transform(schedules)
    model = TLPModel(TLPConfig(hidden=128), seed=0)
    model.eval()
    scores = benchmark(model.predict, X, M)
    assert scores.shape == (64,)


def test_sketch_generation(benchmark):
    subgraph = build_network("resnet50")[2]
    gen = SketchGenerator(SketchConfig("cpu"))

    def sample():
        rng = stream("bench.micro.sketch")
        return [gen.generate(subgraph, rng) for _ in range(32)]

    out = benchmark(sample)
    assert len(out) == 32
