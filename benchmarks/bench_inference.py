"""Micro-benchmarks pinning the inference fast-path perf claims (ISSUE 4).

The claims, measured on a 1,024-schedule featurized batch of sampled
matmul schedules (the batch geometry one evolutionary round scores):

* tape-free ``TLPModel.predict`` is >= 3x faster than the taped
  autograd ``forward`` — and bit-identical to it;
* steady-state ``predict`` allocates no large buffers (every scratch
  probe hits the arena);
* the end-to-end ``CandidateScorer`` loop (verify -> featurize ->
  predict -> top-k) sustains serving-grade candidates/sec.

``make bench-save`` records the exact numbers into
``BENCH_nn_inference.json`` (measured 4.3x).  ``test_perf_claims``
asserts the ratio with a wide margin: the taped baseline's cost is
dominated by large-buffer allocation, whose price swings ~2x with host
memory state (hugepage availability), while the allocation-free
``predict`` is stable — so the in-suite floor is set below the worst
observed ratio and exists to catch fast-path regressions, not to pin
the headline number.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CandidateScorer,
    PostprocessConfig,
    TLPFeaturizer,
    TLPModel,
    TLPModelConfig,
)
from repro.nn import no_grad
from repro.tensorir import SketchConfig, SketchGenerator, matmul_subgraph
from repro.utils.rng import stream
from repro.utils.timer import best_of

BATCH = 1024

_CONFIG = TLPModelConfig(emb=22, hidden=64, n_heads=4, n_res_blocks=2,
                         stream_name="bench.inference.model")


@pytest.fixture(scope="module")
def corpus():
    gen = SketchGenerator(SketchConfig("cpu"))
    return gen.generate_many(matmul_subgraph(128, 128, 128), BATCH,
                             stream("bench.inference"))


@pytest.fixture(scope="module")
def featurizer(corpus):
    return TLPFeaturizer(PostprocessConfig()).fit(corpus)


@pytest.fixture(scope="module")
def batch(featurizer, corpus):
    return featurizer.transform(corpus)


@pytest.fixture(scope="module")
def model():
    return TLPModel(_CONFIG).eval()


def test_taped_forward_batch1024(benchmark, model, batch):
    """Baseline: the full autograd-taped forward pass."""
    X, mask = batch
    scores = benchmark(model, X, mask)
    assert scores.data.shape == (BATCH,)


def test_no_grad_forward_batch1024(benchmark, model, batch):
    """Taped ops without tape recording: intermediates freed eagerly."""
    X, mask = batch

    def run():
        with no_grad():
            return model(X, mask)

    scores = benchmark(run)
    assert scores.data.shape == (BATCH,)


def test_predict_batch1024(benchmark, model, batch):
    """The fused fast path; asserts bit-identity against the taped run."""
    X, mask = batch
    taped = model(X, mask).data
    scores = benchmark(model.predict, X, mask)
    assert np.array_equal(scores, taped)


def test_candidate_scorer_end_to_end(benchmark, model, featurizer, corpus):
    """verify -> featurize -> predict -> top-k over the full batch."""
    scorer = CandidateScorer(model, featurizer)
    subgraph = corpus[0].subgraph
    top = benchmark(scorer.score_topk, subgraph, corpus, 32)
    assert len(top.indices) == 32
    assert top.n_invalid == 0


def test_perf_claims(benchmark, model, batch):
    """Regression floor for the fast path (headline number: bench-save).

    The floor is 1.5x, well under the recorded 4.3x: when the host can
    back the taped path's ~6 MB intermediates with hugepages, taped
    allocation gets ~2x cheaper and the measured ratio dips toward 1.8
    even though ``predict``'s absolute time is unchanged.  A fast-path
    regression (e.g. accidental per-call allocation) would push the
    ratio toward 1.0 and still trip this.
    """
    X, mask = batch
    taped = model(X, mask).data

    def measure():
        model.predict(X, mask)  # warm the arena
        t_taped = best_of(lambda: model(X, mask), repeats=3)
        t_predict = best_of(lambda: model.predict(X, mask), repeats=3)
        return {"predict_speedup": t_taped / t_predict}

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert np.array_equal(model.predict(X, mask), taped)
    assert ratios["predict_speedup"] >= 1.5, ratios
