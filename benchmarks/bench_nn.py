"""Throughput of the TLP cost model on the numpy autograd substrate.

Times the Fig. 7 forward pass and the full forward+backward step on a
512-schedule batch of featurized matmul schedules — the batch geometry
a search round scores at once.  Absolute numbers track the numpy BLAS;
the benchmark's job is catching regressions in the autograd tape (extra
copies, accidental float64 upcasts, quadratic bookkeeping).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.core import PostprocessConfig, TLPFeaturizer, TLPModel, TLPModelConfig
from repro.tensorir import SketchConfig, SketchGenerator, matmul_subgraph
from repro.utils.rng import stream

BATCH = 512

_CONFIG = TLPModelConfig(emb=22, hidden=64, n_heads=4, n_res_blocks=2,
                         stream_name="bench.nn.model")


@pytest.fixture(scope="module")
def batch():
    gen = SketchGenerator(SketchConfig("cpu"))
    corpus = gen.generate_many(matmul_subgraph(128, 128, 128), BATCH, stream("bench.nn"))
    featurizer = TLPFeaturizer(PostprocessConfig()).fit(corpus)
    return featurizer.transform(corpus)


@pytest.fixture(scope="module")
def model():
    return TLPModel(_CONFIG)


def test_forward_batch512(benchmark, model, batch):
    X, mask = batch
    scores = benchmark(model, X, mask)
    assert scores.shape == (BATCH,)
    assert scores.data.dtype == np.float32


def test_forward_backward_batch512(benchmark, model, batch):
    X, mask = batch
    labels = stream("bench.nn.labels").random(BATCH).astype(np.float32)

    def step():
        model.zero_grad()
        loss = nn.lambda_rank_loss(model(X, mask), labels)
        loss.backward()
        return loss

    loss = benchmark(step)
    assert np.isfinite(float(loss.data))


def test_training_step_batch512(benchmark, model, batch):
    """One full optimizer step: forward, backward, Adam update."""
    X, mask = batch
    labels = stream("bench.nn.labels").random(BATCH).astype(np.float32)
    opt = nn.Adam(model.parameters(), lr=1e-4)

    def step():
        opt.zero_grad()
        loss = nn.lambda_rank_loss(model(X, mask), labels)
        loss.backward()
        opt.step()
        return loss

    loss = benchmark.pedantic(step, rounds=3, iterations=1)
    assert np.isfinite(float(loss.data))
