"""Micro-benchmarks pinning the feature-pipeline perf claims (ISSUE 2).

The claims, measured on a 1,024-sequence batch of sampled matmul
schedules:

* the vectorized ``TLPFeaturizer.transform`` is >= 5x faster than the
  naive per-primitive reference extractor;
* ``verify_many`` beats a Python loop of per-sequence ``verify`` calls.

``test_perf_claims`` asserts both ratios with wide margins (measured
~15x / ~6.5x / ~1.3x) so the suite stays robust on noisy machines;
``make bench-save`` records the exact numbers into
``BENCH_feature_pipeline.json``.
"""

from __future__ import annotations

import pytest

from repro.analysis.verifier import verify_many, verify_sequence
from repro.core import PostprocessConfig, TLPFeaturizer, reference_transform
from repro.tensorir import SketchConfig, SketchGenerator, matmul_subgraph
from repro.utils.rng import stream
from repro.utils.timer import best_of

BATCH = 1024


@pytest.fixture(scope="module")
def corpus():
    gen = SketchGenerator(SketchConfig("cpu"))
    return gen.generate_many(matmul_subgraph(128, 128, 128), BATCH, stream("bench.extractor"))


@pytest.fixture(scope="module")
def fitted(corpus):
    featurizer = TLPFeaturizer(PostprocessConfig())
    featurizer.fit(corpus)
    featurizer.transform(corpus)  # prime the row memo + sequence LRU
    return featurizer


def test_transform_vectorized(benchmark, fitted, corpus):
    """The shipped pipeline: row memo + sequence LRU warm (re-query mode)."""
    X, mask = benchmark(fitted.transform, corpus)
    assert X.shape == (BATCH, 25, 22)
    assert mask.shape == (BATCH, 25)


def test_transform_vectorized_uncached(benchmark, corpus):
    """Sequence LRU disabled: the steady-state batch-encode path."""
    featurizer = TLPFeaturizer(PostprocessConfig(), cache_size=0)
    featurizer.fit(corpus)
    featurizer.transform(corpus)  # row memo warm, like round >= 2 of a search
    X, _ = benchmark(featurizer.transform, corpus)
    assert X.shape == (BATCH, 25, 22)


def test_transform_reference(benchmark, fitted, corpus):
    """The naive per-primitive baseline (no caches, per-sequence crop/pad)."""
    X, _ = benchmark(reference_transform, fitted, corpus)
    assert X.shape == (BATCH, 25, 22)


def test_verify_loop(benchmark, corpus):
    subgraph = corpus[0].subgraph
    sequences = [s.primitives for s in corpus]
    out = benchmark(lambda: [verify_sequence(subgraph, seq) for seq in sequences])
    assert len(out) == BATCH


def test_verify_many(benchmark, corpus):
    subgraph = corpus[0].subgraph
    sequences = [s.primitives for s in corpus]
    out = benchmark(verify_many, subgraph, sequences)
    assert len(out) == BATCH


def test_perf_claims(benchmark, corpus):
    """Assert the ISSUE 2 acceptance ratios (margins well below measured)."""

    def measure():
        fitted = TLPFeaturizer(PostprocessConfig()).fit(corpus)
        fitted.transform(corpus)
        uncached = TLPFeaturizer(PostprocessConfig(), cache_size=0).fit(corpus)
        uncached.transform(corpus)
        t_reference = best_of(lambda: reference_transform(fitted, corpus), repeats=3)
        t_vectorized = best_of(lambda: fitted.transform(corpus), repeats=3)
        t_steady = best_of(lambda: uncached.transform(corpus), repeats=3)
        subgraph = corpus[0].subgraph
        sequences = [s.primitives for s in corpus]
        t_loop = best_of(lambda: [verify_sequence(subgraph, s) for s in sequences], repeats=3)
        t_many = best_of(lambda: verify_many(subgraph, sequences), repeats=3)
        return {
            "transform_speedup": t_reference / t_vectorized,
            "steady_speedup": t_reference / t_steady,
            "verify_speedup": t_loop / t_many,
        }

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert ratios["transform_speedup"] >= 5.0, ratios
    assert ratios["steady_speedup"] >= 3.0, ratios
    assert ratios["verify_speedup"] >= 1.05, ratios
