"""Micro-benchmarks pinning the simulated-hardware perf claims (ISSUE 5).

The acceptance claim: ``measure_many`` labels 10,000 verified schedules
on one platform in under 10 s on a single core.  In practice the batch
costing is two orders of magnitude inside that budget — the vectorized
``NestFeatures`` planes mean the per-schedule cost is ``Schedule.apply``
plus a constant share of a handful of ``[N, D]`` array expressions.
``make bench-save`` records the exact numbers into ``BENCH_simhw.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simhw import PLATFORMS, measure, measure_many
from repro.simhw.measure import extract_features
from repro.tensorir import SketchConfig, SketchGenerator, matmul_subgraph
from repro.utils.rng import stream
from repro.utils.timer import best_of

BATCH = 10_000
_SUB = matmul_subgraph(128, 128, 128)
_INTEL = PLATFORMS["platinum-8272"]


@pytest.fixture(scope="module")
def corpus():
    gen = SketchGenerator(SketchConfig("cpu"))
    return gen.generate_many(_SUB, BATCH, stream("bench.simhw"))


@pytest.fixture(scope="module")
def gpu_corpus():
    gen = SketchGenerator(SketchConfig("gpu"))
    return gen.generate_many(_SUB, BATCH, stream("bench.simhw.gpu"))


def test_measure_many_cpu(benchmark, corpus):
    latencies = benchmark(measure_many, _SUB, corpus, _INTEL)
    assert latencies.shape == (BATCH,) and np.all(latencies > 0)


def test_measure_many_gpu(benchmark, gpu_corpus):
    latencies = benchmark(measure_many, _SUB, gpu_corpus, PLATFORMS["t4"])
    assert latencies.shape == (BATCH,) and np.all(latencies > 0)


def test_feature_extraction_only(benchmark, corpus):
    """Schedule.apply + plane flattening — the non-vectorizable share."""
    features = benchmark(extract_features, _SUB, corpus, _INTEL)
    assert features.n == BATCH


def test_measure_loop_small(benchmark, corpus):
    """The per-schedule path, for the batch-vs-loop ratio (256 singles)."""
    subset = corpus[:256]
    out = benchmark(lambda: [measure(_SUB, s, _INTEL) for s in subset])
    assert len(out) == 256


def test_perf_claims(benchmark, corpus):
    """Assert the ISSUE 5 acceptance budget with a wide margin."""

    def measure_once():
        return best_of(lambda: measure_many(_SUB, corpus, _INTEL), repeats=3)

    seconds = benchmark.pedantic(measure_once, rounds=1, iterations=1)
    assert seconds < 10.0, f"10k labels took {seconds:.2f}s (budget 10s)"
