"""Single-field corruptions of valid schedules, keyed by the diagnostic
code the verifier must emit.  Shared by the unit tests (test_verifier)
and the hypothesis property tests (test_property_verifier).

Each mutator takes a valid :class:`Schedule` and returns a corrupted
primitive tuple, or ``None`` when the corruption does not apply to that
particular schedule (e.g. no reorder present to duplicate).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.tensorir import Primitive, PrimitiveKind, Schedule
from repro.tensorir import primitives as P

Mutator = Callable[[Schedule], Optional[tuple[Primitive, ...]]]


def _find(prims: tuple[Primitive, ...], kind: PrimitiveKind) -> int | None:
    for i, p in enumerate(prims):
        if p.kind is kind:
            return i
    return None


def _insert(prims: tuple[Primitive, ...], at: int, prim: Primitive) -> tuple[Primitive, ...]:
    return (*prims[:at], prim, *prims[at:])


def _replace(prims: tuple[Primitive, ...], at: int, prim: Primitive) -> tuple[Primitive, ...]:
    return (*prims[:at], prim, *prims[at + 1 :])


def bad_arity(s: Schedule):
    """CHW takes no axes; give it one."""
    return _insert(s.primitives, 0, Primitive(PrimitiveKind.CHW, axes=("bogus",)))


def zero_split_factor(s: Schedule):
    i = _find(s.primitives, PrimitiveKind.SP)
    if i is None:
        return None
    p = s.primitives[i]
    return _replace(s.primitives, i, dataclasses.replace(p, ints=(p.ints[0], 0, *p.ints[2:])))


def overflowing_split(s: Schedule):
    """Factors whose product pads far beyond the allowance."""
    i = _find(s.primitives, PrimitiveKind.SP)
    if i is None:
        return None
    p = s.primitives[i]
    extent = p.ints[0]
    return _replace(s.primitives, i, dataclasses.replace(p, ints=(extent, extent, extent)))


def duplicated_reorder_entry(s: Schedule):
    i = _find(s.primitives, PrimitiveKind.RE)
    if i is None:
        return None
    p = s.primitives[i]
    if len(p.axes) < 2:
        return None
    return _replace(s.primitives, i, dataclasses.replace(p, axes=(*p.axes[:-1], p.axes[0])))


def unknown_annotation(s: Schedule):
    return _insert(s.primitives, 0, P.annotate(s.subgraph.axes[0].name, "spaghetti"))


def gpu_bind_on_cpu(s: Schedule):
    if s.target == "gpu":
        return None
    return _insert(s.primitives, 0, P.annotate(s.subgraph.axes[0].name, "bind.threadIdx.x"))


def dangling_follow_split(s: Schedule):
    axis = s.subgraph.axes[0]
    return _insert(s.primitives, 0, P.follow_split(axis.name, axis.extent, 9999))


def fsp_forward_reference(s: Schedule):
    """FSP whose src_step_index points at a *later* SP step in the trace."""
    i = _find(s.primitives, PrimitiveKind.SP)
    if i is None:
        return None
    axis = s.subgraph.axes[0]
    # After inserting at the front, the SP sits at i + 1: a forward reference
    # to a real split step — exactly the hole the old contract let through.
    return _insert(s.primitives, 0, P.follow_split(axis.name, axis.extent, i + 1))


def fsp_self_reference(s: Schedule):
    """FSP referencing its own step index."""
    axis = s.subgraph.axes[0]
    return _insert(s.primitives, 0, P.follow_split(axis.name, axis.extent, 0))


def wrong_carried_extent(s: Schedule):
    i = _find(s.primitives, PrimitiveKind.SP)
    if i is None:
        return None
    p = s.primitives[i]
    return _replace(s.primitives, i, dataclasses.replace(p, ints=(p.ints[0] + 1, *p.ints[1:])))


def single_axis_fuse(s: Schedule):
    return _insert(s.primitives, 0, Primitive(PrimitiveKind.FU, axes=(s.subgraph.axes[0].name,)))


def undefined_axis(s: Schedule):
    return _insert(s.primitives, 0, P.annotate("ghost_axis", "unroll"))


def dead_axis(s: Schedule):
    """Reference the original axis right after the split that consumed it."""
    i = _find(s.primitives, PrimitiveKind.SP)
    if i is None:
        return None
    return _insert(s.primitives, i + 1, P.annotate(s.primitives[i].axes[0], "unroll"))


def rfactor_spatial(s: Schedule):
    spatial = s.subgraph.spatial_axes
    if not spatial:
        return None
    return _insert(s.primitives, 0, P.rfactor(spatial[0].name))


def double_annotation(s: Schedule):
    i = _find(s.primitives, PrimitiveKind.AN)
    if i is None:
        return None
    return _insert(s.primitives, i + 1, s.primitives[i])


def primitive_after_inline(s: Schedule):
    return _insert(s.primitives, 0, P.compute_inline())


#: (expected diagnostic code, corruption name, mutator)
CORRUPTIONS: list[tuple[str, str, Mutator]] = [
    ("E101", "bad_arity", bad_arity),
    ("E102", "zero_split_factor", zero_split_factor),
    ("E103", "overflowing_split", overflowing_split),
    ("E104", "duplicated_reorder_entry", duplicated_reorder_entry),
    ("E105", "unknown_annotation", unknown_annotation),
    ("E106", "gpu_bind_on_cpu", gpu_bind_on_cpu),
    ("E107", "dangling_follow_split", dangling_follow_split),
    ("E107", "fsp_forward_reference", fsp_forward_reference),
    ("E107", "fsp_self_reference", fsp_self_reference),
    ("E108", "wrong_carried_extent", wrong_carried_extent),
    ("E109", "single_axis_fuse", single_axis_fuse),
    ("E201", "undefined_axis", undefined_axis),
    ("E202", "dead_axis", dead_axis),
    ("E204", "rfactor_spatial", rfactor_spatial),
    ("E205", "double_annotation", double_annotation),
    ("E206", "primitive_after_inline", primitive_after_inline),
]
