"""repro.analysis.selfcheck — the AST lint, run for real over src/."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import selfcheck

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def rules(violations):
    return {v.rule for v in violations}


def test_shipped_tree_is_clean():
    violations = selfcheck.check_tree(SRC)
    assert violations == [], "\n".join(str(v) for v in violations)


def test_cli_exits_zero_on_clean_tree(capsys):
    assert selfcheck.main([str(SRC)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_exits_two_on_missing_path():
    assert selfcheck.main(["does/not/exist"]) == 2


def test_sc101_flags_global_np_random():
    src = "import numpy as np\nx = np.random.rand(3)\n"
    assert rules(selfcheck.check_source(src, "repro/tensorir/foo.py")) == {"SC101"}


def test_sc101_flags_numpy_random_imports():
    assert rules(
        selfcheck.check_source("from numpy.random import default_rng\n", "repro/a.py")
    ) == {"SC101"}
    assert rules(
        selfcheck.check_source("from numpy import random\n", "repro/a.py")
    ) == {"SC101"}


def test_sc101_allows_rng_module_and_generator_hints():
    src = "import numpy as np\nx = np.random.default_rng(0)\n"
    assert selfcheck.check_source(src, "src/repro/utils/rng.py") == []
    hint = "import numpy as np\ndef f(rng: np.random.Generator) -> None: ...\n"
    assert selfcheck.check_source(hint, "repro/tensorir/foo.py") == []


def test_sc102_flags_mutable_defaults():
    src = "def f(a, b=[], c={}):\n    return a\n"
    found = selfcheck.check_source(src, "repro/x.py")
    assert rules(found) == {"SC102"}
    assert len(found) == 2
    assert rules(selfcheck.check_source("def g(x=dict()):\n    return x\n", "repro/x.py")) == {
        "SC102"
    }


def test_sc102_allows_immutable_defaults():
    src = "def f(a=1, b=(), c='x', d=None):\n    return a\n"
    assert selfcheck.check_source(src, "repro/x.py") == []


def test_sc103_flags_float64_in_compute_paths_only():
    src = "import numpy as np\nx = np.zeros(3, dtype=np.float64)\n"
    assert rules(selfcheck.check_source(src, "repro/nn/layers.py")) == {"SC103"}
    assert rules(selfcheck.check_source(src, "repro/core/model.py")) == {"SC103"}
    assert selfcheck.check_source(src, "repro/dataset/io.py") == []
    literal = "x = {'dtype': 'float64'}\n"
    assert rules(selfcheck.check_source(literal, "repro/simhw/cpu.py")) == {"SC103"}


def test_sc104_flags_time_module_in_simhw_paths_only():
    assert rules(
        selfcheck.check_source("import time\n", "repro/simhw/measure.py")
    ) == {"SC104"}
    assert rules(
        selfcheck.check_source("from time import perf_counter\n", "repro/simhw/cpu_model.py")
    ) == {"SC104"}
    # Wall clock is fine everywhere else (the bench harness needs it).
    assert selfcheck.check_source("import time\n", "repro/utils/timer.py") == []
    assert selfcheck.check_source("import time\n", "repro/nn/optim.py") == []


def test_sc104_allows_timer_wrapper_import_in_simhw():
    # Importing the Timer context manager for a smoke harness is not a
    # wall-clock read in the measurement path itself.
    src = "from repro.utils.timer import Timer\n"
    assert selfcheck.check_source(src, "repro/simhw/measure.py") == []


def test_suppression_token():
    src = "import numpy as np\nx = np.random.rand(3)  # selfcheck: allow\n"
    assert selfcheck.check_source(src, "repro/x.py") == []


def test_unparseable_file_is_reported():
    found = selfcheck.check_source("def broken(:\n", "repro/x.py")
    assert len(found) == 1 and "unparseable" in found[0].message
    # Parse errors have their own code — SC101 is reserved for the
    # np.random rule (regression: they used to share a code).
    assert found[0].rule == "SC100"


def test_check_file_reads_utf8(tmp_path):
    # Non-ASCII comments and strings must lint identically everywhere,
    # independent of the platform's default encoding.
    target = tmp_path / "repro" / "módulo.py"
    target.parent.mkdir()
    target.write_text(
        "# síntesis — ñandú\nGREETING = 'héllo wörld'\n", encoding="utf-8"
    )
    assert selfcheck.check_file(target) == []
