"""Offline trainer acceptance: streamed lambda-rank training on a built
store, held-out top-k vs the exact random baseline, and bit-identical
checkpoint/resume at every epoch boundary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tlp_model import TLPModel, TLPModelConfig
from repro.core.trainer import TrainConfig, Trainer, _run_digest
from repro.dataset.pipeline import build_dataset
from repro.dataset.reader import ShardReader
from repro.dataset.spec import DatasetSpec

_NETWORKS = ("bert_tiny", "resnet18", "resnet50", "bert_base", "mobilenet_v2")


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """The smoke-train store: 5 network pools, one platform, mobilenet_v2
    held out.  Training diversity matters — a single-network training set
    does not transfer to an unseen family (measured while tuning the
    smoke config)."""
    spec = DatasetSpec(
        name="smoke-train",
        networks=_NETWORKS,
        platforms=("platinum-8272",),
        candidates_per_task=48,
        shard_size=2048,
        holdout_networks=("mobilenet_v2",),
    )
    root = tmp_path_factory.mktemp("trainer") / "store"
    build_dataset(spec, root)
    return root


def _make_trainer(store, **overrides):
    reader = ShardReader(store)
    emb = reader.manifest.schema.columns()["X"][1][-1]
    model = TLPModel(TLPModelConfig(emb=emb, hidden=48, n_heads=4, n_res_blocks=2))
    kw = dict(epochs=6, batch_size=64, segment_size=16, lr=1e-3)
    kw.update(overrides)
    return model, Trainer(model, reader, TrainConfig(**kw))


@pytest.fixture(scope="module")
def straight(store):
    """One uninterrupted fit — the reference run the resume tests diff
    against, and the source of the loss/top-k acceptance numbers."""
    model, trainer = _make_trainer(store)
    history = trainer.fit()
    report = trainer.evaluate()
    return {
        "digest": _run_digest(model, history),
        "history": history,
        "report": report,
    }


def test_fit_loss_strictly_decreases(straight):
    losses = [row["loss"] for row in straight["history"]]
    assert len(losses) == 6
    assert all(later < earlier for earlier, later in zip(losses, losses[1:])), losses


def test_fit_history_records_cosine_lr(straight):
    lrs = [row["lr"] for row in straight["history"]]
    assert lrs[0] == pytest.approx(1e-3)  # recorded before the epoch's step
    assert all(b < a for a, b in zip(lrs, lrs[1:]))


def test_holdout_top_k_beats_exact_random_baseline(straight):
    """The Table 6/7 criterion on held-out networks: the model's top-k
    picks find faster schedules than randomly sampling k candidates."""
    report = straight["report"]
    for k in (1, 5):
        assert report["top_k"][k] > report["random_top_k"][k], (k, report)
    assert report["top_k"][5] >= report["top_k"][1]
    assert 0 < report["n_groups"] <= report["n_records"]


@pytest.mark.parametrize("stop", [1, 3, 5])
def test_checkpoint_resume_is_bit_identical(store, straight, tmp_path, stop):
    """Kill at any epoch boundary, reload in a fresh process-equivalent
    (new model, new trainer, state from the .npz alone), finish — the
    final weights and full history match the uninterrupted run bit for
    bit."""
    ckpt = tmp_path / "train.npz"
    _, first = _make_trainer(store)
    first.fit(checkpoint_path=ckpt, until=stop)
    assert first.epochs_done == stop

    model_b, resumed = _make_trainer(store)
    resumed.load_checkpoint(ckpt)
    assert resumed.epochs_done == stop
    history = resumed.fit()
    assert _run_digest(model_b, history) == straight["digest"]
    assert history == straight["history"]


def test_fit_with_eval_every_records_top_k(store):
    _, trainer = _make_trainer(store, epochs=2, eval_every=1)
    history = trainer.fit()
    assert all("top_k" in row for row in history)
    assert set(history[0]["top_k"]) == {1, 5}


def test_checkpoint_rejects_foreign_or_truncated_files(store, tmp_path):
    _, trainer = _make_trainer(store)
    good = np.load(trainer.save_checkpoint(tmp_path / "ok.npz"))
    state = {k: good[k] for k in good.files}

    bad = dict(state)
    bad["rogue/key"] = np.zeros(1)
    np.savez(tmp_path / "rogue.npz", **bad)
    with pytest.raises(KeyError, match="unrecognized"):
        trainer.load_checkpoint(tmp_path / "rogue.npz")

    state.pop("meta")
    np.savez(tmp_path / "nometa.npz", **state)
    with pytest.raises(KeyError, match="meta"):
        trainer.load_checkpoint(tmp_path / "nometa.npz")


def test_platform_fractions_carve_the_training_split(store):
    """Table 9 scarce-target carving: each (task, platform) group keeps a
    seeded max(2, round(frac * n)) subset of its training rows."""
    _, full = _make_trainer(store)
    _, scarce = _make_trainer(store, platform_fractions={"platinum-8272": 0.1})
    assert np.all(np.isin(scarce.train_indices, full.train_indices))

    def counts(tr):
        gids = tr._gids[tr.train_indices]
        uniq, n = np.unique(gids, return_counts=True)
        return dict(zip(uniq.tolist(), n.tolist()))

    full_counts, scarce_counts = counts(full), counts(scarce)
    assert set(scarce_counts) == set(full_counts)  # no group vanishes
    for gid, n in full_counts.items():
        assert scarce_counts[gid] == max(2, int(round(0.1 * n)))
    # Seeded: the same config carves the same subset.
    _, again = _make_trainer(store, platform_fractions={"platinum-8272": 0.1})
    assert np.array_equal(again.train_indices, scarce.train_indices)


def test_platform_fractions_unknown_platform_fails_loudly(store):
    with pytest.raises(KeyError, match="t4"):
        _make_trainer(store, platform_fractions={"t4": 0.5})


def test_trainer_validates_model_and_platforms(store):
    reader = ShardReader(store)
    with pytest.raises(ValueError, match="emb"):
        Trainer(TLPModel(TLPModelConfig(emb=7, hidden=32, n_heads=2)), reader)
    with pytest.raises(KeyError, match="graviton2"):
        _make_trainer(store, platforms=("graviton2",))


def test_train_config_validation():
    with pytest.raises(ValueError, match="pairs"):
        TrainConfig(segment_size=1)
    with pytest.raises(ValueError, match="segment_size"):
        TrainConfig(batch_size=8, segment_size=16)
    with pytest.raises(ValueError, match="epochs"):
        TrainConfig(epochs=0)
    with pytest.raises(ValueError, match="eval_ks"):
        TrainConfig(eval_ks=(0,))
    with pytest.raises(ValueError, match="fraction"):
        TrainConfig(platform_fractions={"x": 0.0})
    with pytest.raises(ValueError, match="eval_every"):
        TrainConfig(eval_every=-1)
