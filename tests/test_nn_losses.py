"""MSE + lambda-rank: ranking semantics and gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    LambdaRankLoss,
    MSELoss,
    Tensor,
    assert_gradients_match,
    lambda_rank_loss,
    mse_loss,
)
from repro.utils.rng import stream

_RNG = stream("test.nn.losses")


def _pred(values):
    return Tensor(np.asarray(values, dtype=np.float32), requires_grad=True)


def test_mse_matches_numpy():
    p = _pred([1.0, 2.0, 3.0])
    t = np.array([1.5, 2.0, 1.0], dtype=np.float32)
    assert float(mse_loss(p, t).data) == pytest.approx(float(((p.data - t) ** 2).mean()))


def test_lambda_rank_rewards_correct_order():
    """Scoring in label order must cost less than scoring in reverse."""
    y = np.array([1.0, 0.8, 0.5, 0.2, 0.05], dtype=np.float32)
    good = lambda_rank_loss(_pred([5.0, 4.0, 3.0, 2.0, 1.0]), y)
    bad = lambda_rank_loss(_pred([1.0, 2.0, 3.0, 4.0, 5.0]), y)
    assert 0.0 < float(good.data) < float(bad.data)


def test_lambda_rank_degenerate_groups_are_zero_with_grad_path():
    for pred, y in [
        (_pred([1.0]), np.array([0.5], dtype=np.float32)),  # one candidate
        (_pred([1.0, 2.0]), np.array([0.7, 0.7], dtype=np.float32)),  # tied labels
        (_pred([1.0, 2.0]), np.zeros(2, dtype=np.float32)),  # maxDCG == 0
    ]:
        loss = lambda_rank_loss(pred, y)
        assert float(loss.data) == 0.0
        loss.backward()
        assert pred.grad is not None and np.allclose(pred.grad, 0.0)


def test_lambda_rank_shape_mismatch_raises():
    with pytest.raises(ValueError):
        lambda_rank_loss(_pred([1.0, 2.0]), np.zeros(3, dtype=np.float32))


def test_gradient_pushes_scores_toward_label_order():
    """One ascent step on -loss must raise the better item's score."""
    pred = _pred([0.0, 0.0, 0.0])
    y = np.array([1.0, 0.5, 0.1], dtype=np.float32)
    lambda_rank_loss(pred, y).backward()
    # descending gradient: best-labelled item gets the most negative grad
    assert pred.grad[0] < pred.grad[1] < pred.grad[2]


def test_loss_classes_delegate():
    p = _pred([2.0, 1.0])
    y = np.array([0.9, 0.1], dtype=np.float32)
    assert float(LambdaRankLoss()(p, y).data) == float(lambda_rank_loss(p, y).data)
    assert float(MSELoss()(p, y).data) == float(mse_loss(p, y).data)


@pytest.mark.gradcheck
def test_gradcheck_mse():
    p = _pred(_RNG.standard_normal(8).astype(np.float32))
    t = _RNG.standard_normal(8).astype(np.float32)
    assert_gradients_match(lambda: mse_loss(p, t), [p])


@pytest.mark.gradcheck
def test_gradcheck_lambda_rank():
    # well-separated scores so the eps-perturbation cannot flip the
    # predicted order (the sort permutation is a constant of the tape)
    p = _pred([2.0, 1.0, -0.5, 0.3, -1.4])
    y = np.array([0.9, 0.2, 0.6, 1.0, 0.1], dtype=np.float32)
    assert_gradients_match(lambda: lambda_rank_loss(p, y), [p], eps=5e-3)
