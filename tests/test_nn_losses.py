"""MSE + lambda-rank: ranking semantics and gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    LambdaRankLoss,
    MSELoss,
    Tensor,
    assert_gradients_match,
    lambda_rank_loss,
    lambda_rank_loss_grouped,
    mse_loss,
)
from repro.utils.rng import stream

_RNG = stream("test.nn.losses")


def _pred(values):
    return Tensor(np.asarray(values, dtype=np.float32), requires_grad=True)


def test_mse_matches_numpy():
    p = _pred([1.0, 2.0, 3.0])
    t = np.array([1.5, 2.0, 1.0], dtype=np.float32)
    assert float(mse_loss(p, t).data) == pytest.approx(float(((p.data - t) ** 2).mean()))


def test_lambda_rank_rewards_correct_order():
    """Scoring in label order must cost less than scoring in reverse."""
    y = np.array([1.0, 0.8, 0.5, 0.2, 0.05], dtype=np.float32)
    good = lambda_rank_loss(_pred([5.0, 4.0, 3.0, 2.0, 1.0]), y)
    bad = lambda_rank_loss(_pred([1.0, 2.0, 3.0, 4.0, 5.0]), y)
    assert 0.0 < float(good.data) < float(bad.data)


def test_lambda_rank_degenerate_groups_are_zero_with_grad_path():
    for pred, y in [
        (_pred([1.0]), np.array([0.5], dtype=np.float32)),  # one candidate
        (_pred([1.0, 2.0]), np.array([0.7, 0.7], dtype=np.float32)),  # tied labels
        (_pred([1.0, 2.0]), np.zeros(2, dtype=np.float32)),  # maxDCG == 0
    ]:
        loss = lambda_rank_loss(pred, y)
        assert float(loss.data) == 0.0
        loss.backward()
        assert pred.grad is not None and np.allclose(pred.grad, 0.0)


def test_lambda_rank_shape_mismatch_raises():
    with pytest.raises(ValueError):
        lambda_rank_loss(_pred([1.0, 2.0]), np.zeros(3, dtype=np.float32))


def test_gradient_pushes_scores_toward_label_order():
    """One ascent step on -loss must raise the better item's score."""
    pred = _pred([0.0, 0.0, 0.0])
    y = np.array([1.0, 0.5, 0.1], dtype=np.float32)
    lambda_rank_loss(pred, y).backward()
    # descending gradient: best-labelled item gets the most negative grad
    assert pred.grad[0] < pred.grad[1] < pred.grad[2]


def test_loss_classes_delegate():
    p = _pred([2.0, 1.0])
    y = np.array([0.9, 0.1], dtype=np.float32)
    assert float(LambdaRankLoss()(p, y).data) == float(lambda_rank_loss(p, y).data)
    assert float(MSELoss()(p, y).data) == float(mse_loss(p, y).data)


@pytest.mark.gradcheck
def test_gradcheck_mse():
    p = _pred(_RNG.standard_normal(8).astype(np.float32))
    t = _RNG.standard_normal(8).astype(np.float32)
    assert_gradients_match(lambda: mse_loss(p, t), [p])


@pytest.mark.gradcheck
def test_gradcheck_lambda_rank():
    # well-separated scores so the eps-perturbation cannot flip the
    # predicted order (the sort permutation is a constant of the tape)
    p = _pred([2.0, 1.0, -0.5, 0.3, -1.4])
    y = np.array([0.9, 0.2, 0.6, 1.0, 0.1], dtype=np.float32)
    assert_gradients_match(lambda: lambda_rank_loss(p, y), [p], eps=5e-3)


# -- grouped-batch conditions (what the trainer's packed batches hit) -----


def test_grouped_loss_matches_mean_of_per_group_losses():
    y = np.array([0.9, 0.2, 0.6, 1.0, 0.3, 0.8], dtype=np.float32)
    g = np.array([3, 3, 3, 7, 7, 7])
    scores = [2.0, -1.0, 0.5, 1.5, -0.3, 0.9]
    grouped = lambda_rank_loss_grouped(_pred(scores), y, g)
    a = lambda_rank_loss(_pred(scores[:3]), y[:3])
    b = lambda_rank_loss(_pred(scores[3:]), y[3:])
    expected = (float(a.data) + float(b.data)) / 2.0
    assert float(grouped.data) == pytest.approx(expected, rel=1e-6)


def test_grouped_loss_all_tied_predictions_still_learn():
    """All-equal scores (a freshly initialized model) must produce a
    finite positive loss and a gradient that separates the labels."""
    pred = _pred([0.0, 0.0, 0.0, 0.0])
    y = np.array([1.0, 0.4, 0.9, 0.2], dtype=np.float32)
    loss = lambda_rank_loss_grouped(pred, y, np.zeros(4, dtype=np.int64))
    assert np.isfinite(float(loss.data)) and float(loss.data) > 0.0
    loss.backward()
    assert pred.grad[0] < pred.grad[1]  # best label pushed up hardest


def test_grouped_loss_singleton_group_dilutes_nothing():
    """A size-1 group inside a batch contributes zero loss and does not
    change the divisor — the batch loss equals the other group's loss."""
    y = np.array([0.5, 0.9, 0.2, 0.7], dtype=np.float32)
    g = np.array([1, 2, 2, 2])
    scores = [3.0, 1.0, -0.5, 0.4]
    grouped = lambda_rank_loss_grouped(_pred(scores), y, g)
    alone = lambda_rank_loss(_pred(scores[1:]), y[1:])
    assert float(grouped.data) == pytest.approx(float(alone.data), rel=1e-6)
    # Gradient still flows to every row that has pairs; singleton gets 0.
    p = _pred(scores)
    lambda_rank_loss_grouped(p, y, g).backward()
    assert p.grad[0] == 0.0
    assert np.any(p.grad[1:] != 0.0)


def test_grouped_loss_all_degenerate_batch_is_zero_with_grad_path():
    pred = _pred([1.0, 2.0, 3.0])
    y = np.array([0.5, 0.7, 0.7], dtype=np.float32)  # singleton + tied pair
    loss = lambda_rank_loss_grouped(pred, y, np.array([0, 1, 1]))
    assert float(loss.data) == 0.0
    loss.backward()
    assert pred.grad is not None and np.allclose(pred.grad, 0.0)


def test_grouped_loss_rejects_non_contiguous_groups():
    pred = _pred([1.0, 2.0, 3.0, 4.0])
    y = np.array([0.9, 0.1, 0.8, 0.2], dtype=np.float32)
    with pytest.raises(ValueError, match="contiguous"):
        lambda_rank_loss_grouped(pred, y, np.array([5, 6, 5, 6]))


def test_grouped_loss_shape_mismatch_raises():
    with pytest.raises(ValueError, match="shape"):
        lambda_rank_loss_grouped(
            _pred([1.0, 2.0]), np.zeros(2, dtype=np.float32), np.zeros(3)
        )


@pytest.mark.gradcheck
def test_gradcheck_lambda_rank_sigma_not_one():
    """sigma scales inside softplus — an error there (e.g. applying it
    outside) survives sigma == 1 gradchecks; pin sigma = 2.5."""
    p = _pred([2.0, 1.0, -0.5, 0.3, -1.4])
    y = np.array([0.9, 0.2, 0.6, 1.0, 0.1], dtype=np.float32)
    assert_gradients_match(lambda: lambda_rank_loss(p, y, sigma=2.5), [p], eps=5e-3)


@pytest.mark.gradcheck
def test_gradcheck_lambda_rank_grouped():
    p = _pred([2.0, 1.0, -0.5, 0.3, -1.4, 1.8, -2.0])
    y = np.array([0.9, 0.2, 0.6, 1.0, 0.1, 0.7, 0.4], dtype=np.float32)
    g = np.array([0, 0, 0, 1, 1, 1, 2])  # two real groups + a singleton
    assert_gradients_match(
        lambda: lambda_rank_loss_grouped(p, y, g, sigma=1.5), [p], eps=5e-3
    )
