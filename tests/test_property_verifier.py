"""Hypothesis properties tying the verifier to the applier.

1. Soundness of acceptance: any sampler-generated sequence the verifier
   passes clean applies without exception.
2. Sensitivity: any single-field corruption of a valid sequence is
   flagged with the corruption's designated error code.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from corruptions import CORRUPTIONS
from repro.analysis import has_errors, verify_sequence, verify_schedule
from repro.tensorir import SketchConfig, SketchGenerator, sample_subgraph_pool
from repro.utils.rng import stream

_POOL = sample_subgraph_pool()


@st.composite
def schedules(draw):
    sg = draw(st.sampled_from(_POOL))
    target = draw(st.sampled_from(["cpu", "gpu"]))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = stream(f"property.{sg.name}.{target}.{seed}")
    return SketchGenerator(SketchConfig(target=target)).generate(sg, rng)


@settings(max_examples=80, deadline=None)
@given(schedule=schedules())
def test_verified_valid_sequences_always_apply(schedule):
    diags = verify_schedule(schedule)
    assert not has_errors(diags), [str(d) for d in diags]
    nest = schedule.apply()  # must not raise
    # Padding stays within the verifier's per-split allowance compounded
    # over the (few) padded splits; a loose sanity bound.
    if not nest.inlined:
        assert nest.padding_ratio(schedule.subgraph.total_points) < 2.0


@settings(max_examples=120, deadline=None)
@given(schedule=schedules(), corruption=st.sampled_from(CORRUPTIONS))
def test_single_field_corruptions_are_flagged(schedule, corruption):
    expected_code, name, mutator = corruption
    mutated = mutator(schedule)
    if mutated is None:  # corruption not applicable to this schedule shape
        return
    diags = verify_sequence(schedule.subgraph, mutated, schedule.target)
    assert expected_code in {d.code for d in diags}, (
        f"{name}: expected {expected_code}, got {[str(d) for d in diags]}"
    )
