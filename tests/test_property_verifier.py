"""Hypothesis properties tying the verifier to the applier.

1. Soundness of acceptance: any sampler-generated sequence the verifier
   passes clean applies without exception.
2. Sensitivity: any single-field corruption of a valid sequence is
   flagged with the corruption's designated error code.
3. FSP-reference agreement: perturbing a follow-split's src_step_index
   never opens a gap between the verifier and the applier — a clean
   verdict still applies, and an E107 verdict still fails to apply.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from corruptions import CORRUPTIONS
from repro.analysis import has_errors, verify_sequence, verify_schedule
from repro.tensorir import (
    PrimitiveKind,
    Schedule,
    ScheduleError,
    SketchConfig,
    SketchGenerator,
    sample_subgraph_pool,
)
from repro.tensorir import primitives as P
from repro.utils.rng import stream

_POOL = sample_subgraph_pool()


@st.composite
def schedules(draw):
    sg = draw(st.sampled_from(_POOL))
    target = draw(st.sampled_from(["cpu", "gpu"]))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = stream(f"property.{sg.name}.{target}.{seed}")
    return SketchGenerator(SketchConfig(target=target)).generate(sg, rng)


@settings(max_examples=80, deadline=None)
@given(schedule=schedules())
def test_verified_valid_sequences_always_apply(schedule):
    diags = verify_schedule(schedule)
    assert not has_errors(diags), [str(d) for d in diags]
    nest = schedule.apply()  # must not raise
    # Padding stays within the verifier's per-split allowance compounded
    # over the (few) padded splits; a loose sanity bound.
    if not nest.inlined:
        assert nest.padding_ratio(schedule.subgraph.total_points) < 2.0


@st.composite
def fsp_perturbed_schedules(draw):
    """A sampled schedule with one FSP whose src_step_index is rewritten
    to an arbitrary value (out of range, self, forward, or backward)."""
    schedule = draw(schedules())
    prims = schedule.primitives
    fsp_at = [i for i, p in enumerate(prims) if p.kind is PrimitiveKind.FSP]
    if fsp_at:
        at = draw(st.sampled_from(fsp_at))
    else:
        # No FSP sampled: graft one onto the front so every example
        # exercises the reference rule.
        axis = schedule.subgraph.axes[0]
        prims = (P.follow_split(axis.name, axis.extent, 0), *prims)
        at = 0
    new_src = draw(st.integers(min_value=-2, max_value=len(prims) + 2))
    fsp = prims[at]
    fsp = dataclasses.replace(fsp, ints=(fsp.ints[0], new_src))
    return Schedule(schedule.subgraph, (*prims[:at], fsp, *prims[at + 1 :]), schedule.target)


@settings(max_examples=120, deadline=None)
@given(schedule=fsp_perturbed_schedules())
def test_fsp_reference_perturbations_keep_verifier_applier_agreement(schedule):
    diags = verify_schedule(schedule)
    codes = {d.code for d in diags}
    if not has_errors(diags):
        schedule.apply()  # both accept
    elif "E107" in codes:
        with pytest.raises(ScheduleError):
            schedule.apply()  # both reject
    # Remaining cases carry non-E107 errors (e.g. E103 when the followed
    # factors overpad the axis): the verifier is deliberately stricter than
    # the applier there, so no agreement claim on those.


@settings(max_examples=120, deadline=None)
@given(schedule=schedules(), corruption=st.sampled_from(CORRUPTIONS))
def test_single_field_corruptions_are_flagged(schedule, corruption):
    expected_code, name, mutator = corruption
    mutated = mutator(schedule)
    if mutated is None:  # corruption not applicable to this schedule shape
        return
    diags = verify_sequence(schedule.subgraph, mutated, schedule.target)
    assert expected_code in {d.code for d in diags}, (
        f"{name}: expected {expected_code}, got {[str(d) for d in diags]}"
    )
