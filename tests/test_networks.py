"""Network subgraph pools: registry integrity and pool structure."""

from __future__ import annotations

import pytest

from repro.tensorir import NETWORK_POOLS, NetworkPool, network_names, network_pool
from repro.tensorir.subgraph import Axis, Subgraph


def test_registry_names_match_pools():
    assert network_names() == tuple(NETWORK_POOLS)
    for name in network_names():
        pool = network_pool(name)
        assert pool.name == name
        assert len(pool) == len(pool.subgraphs) >= 5


def test_unknown_pool_raises_with_known_names():
    with pytest.raises(KeyError, match="resnet50"):
        network_pool("alexnet")


def test_pools_have_distinct_subgraph_names_within():
    for name in network_names():
        pool = network_pool(name)
        names = [sg.name for sg in pool.subgraphs]
        assert len(set(names)) == len(names)


def test_every_family_is_represented():
    families = {network_pool(n).family for n in network_names()}
    assert families == {"resnet", "mobilenet", "bert"}


def test_families_differ_in_program_character():
    """The holdout shift is real: resnet pools are conv-dominated, bert
    pools matmul-dominated — different axis-count distributions."""
    def mean_axes(pool: NetworkPool) -> float:
        return sum(len(sg.axes) for sg in pool.subgraphs) / len(pool)

    assert mean_axes(network_pool("resnet50")) > mean_axes(network_pool("bert_base"))


def test_pool_rejects_duplicate_subgraphs_and_emptiness():
    sg = Subgraph("dup", (Axis("i", 8),))
    with pytest.raises(ValueError, match="repeats"):
        NetworkPool(name="bad", family="resnet", subgraphs=(sg, sg))
    with pytest.raises(ValueError, match="no subgraphs"):
        NetworkPool(name="empty", family="bert", subgraphs=())
