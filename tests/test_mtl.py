"""MTL-TLP: shared-trunk multi-head model semantics, and the Table 9
acceptance — with a scarce target platform, a same-ISA auxiliary
platform transfers more than a cross-ISA one."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mtl import MTLTLPModel
from repro.core.tlp_model import TLPModel, TLPModelConfig
from repro.core.trainer import TrainConfig, Trainer
from repro.dataset.pipeline import build_dataset
from repro.dataset.reader import ShardReader
from repro.dataset.spec import DatasetSpec
from repro.nn.losses import lambda_rank_loss_grouped
from repro.nn.tensor import no_grad
from repro.utils.rng import stream

_CFG = TLPModelConfig(emb=22, hidden=32, n_heads=2, n_res_blocks=1)
_RNG = stream("test.core.mtl")


def _batch(n=6, seq=5):
    X = (_RNG.standard_normal((n, seq, _CFG.emb)) * 0.5).astype(np.float32)
    mask = np.ones((n, seq), dtype=np.float32)
    mask[:, seq - 1] = 0.0  # one padded position, like real featurizer output
    return X, mask


def test_trunk_is_bit_identical_to_plain_tlp_model():
    """Single-task and MTL runs start from the same trunk init: every
    trunk parameter (streams are named, not positional) matches a plain
    TLPModel built from the same config, bit for bit."""
    mtl = MTLTLPModel(("a", "b"), _CFG)
    plain = TLPModel(_CFG)
    mtl_state = {k: v for k, v in mtl.state_dict().items() if k.startswith("trunk.")}
    plain_state = plain.state_dict()
    assert set(mtl_state) == {f"trunk.{k}" for k in plain_state}
    for name, arr in plain_state.items():
        assert np.array_equal(mtl_state[f"trunk.{name}"], arr), name


def test_heads_differ_from_each_other_and_from_trunk_head():
    mtl = MTLTLPModel(("a", "b"), _CFG)
    w0, w1 = mtl.heads[0].weight.data, mtl.heads[1].weight.data
    assert not np.array_equal(w0, w1)
    assert not np.array_equal(w0, mtl.trunk.head.weight.data)


def test_masked_forward_equals_per_row_head_scores():
    """Row i of the mixed-platform forward is exactly head pids[i]'s
    score for row i — the other heads' masked contributions are exact
    zeros, not small numbers."""
    mtl = MTLTLPModel(("a", "b", "c"), _CFG)
    mtl.eval()
    X, mask = _batch(n=7)
    pids = np.array([0, 2, 1, 0, 2, 2, 1])
    with no_grad():
        pooled = mtl.trunk.pool_features(X, mask)
        per_head = [h(pooled).data.reshape(-1) for h in mtl.heads]
    expected = np.array([per_head[p][i] for i, p in enumerate(pids)],
                        dtype=np.float32)
    assert np.array_equal(mtl.predict(X, mask, pids), expected)


def test_absent_head_sees_no_compute_and_no_grad():
    """A batch with rows for head 0 only must leave head 1's parameters
    with no gradient at all (so the optimizer skips them), while the
    shared trunk still learns from every row."""
    mtl = MTLTLPModel(("a", "b"), _CFG)
    X, mask = _batch(n=4)
    y = _RNG.random(4).astype(np.float32)
    loss = lambda_rank_loss_grouped(
        mtl.forward(X, mask, np.zeros(4, dtype=np.int64)), y,
        np.zeros(4, dtype=np.int64),
    )
    loss.backward()
    assert mtl.heads[0].weight.grad is not None
    assert mtl.heads[1].weight.grad is None
    assert mtl.trunk.up1.weight.grad is not None
    assert mtl.trunk.head.weight.grad is None  # trunk's own head: untrained


def test_predict_restores_training_mode():
    mtl = MTLTLPModel(("a",), _CFG)
    mtl.train()
    mtl.predict(*_batch(n=2), np.zeros(2, dtype=np.int64))
    assert mtl.training
    mtl.eval()
    mtl.predict(*_batch(n=2), np.zeros(2, dtype=np.int64))
    assert not mtl.training


def test_validation():
    with pytest.raises(ValueError, match="at least one"):
        MTLTLPModel((), _CFG)
    with pytest.raises(ValueError, match="duplicate"):
        MTLTLPModel(("a", "a"), _CFG)
    mtl = MTLTLPModel(("a", "b"), _CFG)
    with pytest.raises(KeyError, match="not in model platforms"):
        mtl.head_index("t4")
    assert mtl.head_index("b") == 1
    X, mask = _batch(n=3)
    with pytest.raises(ValueError, match="rows"):
        mtl.forward(X, mask, np.zeros(2, dtype=np.int64))
    with pytest.raises(IndexError, match="out of range"):
        mtl.forward(X, mask, np.array([0, 1, 2]))


# -- Table 9 on simhw: same-ISA aux transfers more than cross-ISA ---------


@pytest.fixture(scope="module")
def mtl_store(tmp_path_factory):
    """Target x86 platform plus one same-ISA (e5-2673) and one cross-ISA
    (t4, cuda) candidate auxiliary; two held-out networks so the top-k
    mean is over enough groups to separate the two runs."""
    spec = DatasetSpec(
        name="mtl-train",
        networks=("bert_tiny", "resnet18", "resnet50", "bert_base",
                  "mobilenet_v2"),
        platforms=("platinum-8272", "e5-2673", "t4"),
        candidates_per_task=64,
        shard_size=4096,
        holdout_networks=("mobilenet_v2", "resnet50"),
    )
    root = tmp_path_factory.mktemp("mtl") / "store"
    build_dataset(spec, root)
    return root


def _train_with_aux(store, aux):
    """Scarce platinum-8272 target (5% of training rows) + full-size aux
    platform; evaluate held-out top-k on the target platform only."""
    reader = ShardReader(store)
    emb = reader.manifest.schema.columns()["X"][1][-1]
    model = MTLTLPModel(
        ("platinum-8272", aux),
        TLPModelConfig(emb=emb, hidden=48, n_heads=4, n_res_blocks=2),
    )
    trainer = Trainer(model, reader, TrainConfig(
        epochs=10, batch_size=64, segment_size=16, lr=1e-3,
        platform_fractions={"platinum-8272": 0.05},
    ))
    trainer.fit()
    return trainer.evaluate(platforms=("platinum-8272",))


def test_same_isa_aux_beats_cross_isa_aux(mtl_store):
    """The paper's Table 9 shape on the simhw substrate: with scarce
    target data, an auxiliary platform of the same ISA family lifts
    held-out top-1 and top-5 above a cross-ISA auxiliary (simhw CPU
    families share rank structure that the cuda platforms do not)."""
    same = _train_with_aux(mtl_store, "e5-2673")
    cross = _train_with_aux(mtl_store, "t4")
    for k in (1, 5):
        assert same["top_k"][k] > cross["top_k"][k], (k, same, cross)
    # And same-ISA MTL is genuinely useful, not merely less bad:
    assert same["top_k"][5] > same["random_top_k"][5]
