"""repro.tensorir.sampler — every generated sequence is verifier-clean."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import InvalidScheduleError, has_errors, verify_schedule
from repro.tensorir import (
    PrimitiveKind,
    Schedule,
    SketchConfig,
    SketchGenerator,
    sample_schedule,
    sample_subgraph_pool,
)
from repro.tensorir import primitives as P
from repro.utils.rng import stream


@pytest.mark.parametrize("target", ["cpu", "gpu"])
def test_sampler_output_is_always_verifier_clean(target):
    """The acceptance bar: 100% of sampler-generated sequences verify clean."""
    gen = SketchGenerator(SketchConfig(target=target))
    for sg in sample_subgraph_pool():
        rng = stream(f"test.sampler.{sg.name}.{target}")
        for _ in range(25):
            schedule = gen.generate(sg, rng)
            diags = verify_schedule(schedule)
            assert not has_errors(diags), (sg.name, [str(d) for d in diags])
            nest = schedule.apply()
            if not nest.inlined:
                assert nest.depth >= len(sg.axes)


def test_sampling_is_deterministic_under_a_seeded_stream():
    sg = sample_subgraph_pool()[0]
    gen = SketchGenerator(SketchConfig())
    a = gen.generate(sg, stream("test.det"))
    b = gen.generate(sg, stream("test.det"))
    assert a.primitives == b.primitives


def test_sampler_exercises_the_primitive_vocabulary():
    """Across many samples the sampler should emit most primitive kinds."""
    seen: set[PrimitiveKind] = set()
    for target in ("cpu", "gpu"):
        gen = SketchGenerator(SketchConfig(target=target))
        for sg in sample_subgraph_pool():
            rng = stream(f"test.vocab.{sg.name}.{target}")
            for _ in range(30):
                for prim in gen.generate(sg, rng).primitives:
                    seen.add(PrimitiveKind(prim.kind))
    assert {
        PrimitiveKind.SP,
        PrimitiveKind.RE,
        PrimitiveKind.FU,
        PrimitiveKind.AN,
        PrimitiveKind.PR,
        PrimitiveKind.FSP,
        PrimitiveKind.CHW,
        PrimitiveKind.RF,
        PrimitiveKind.CI,
        PrimitiveKind.CA,
    } <= seen


def test_gpu_schedules_bind_threads():
    sg = sample_subgraph_pool()[0]
    gen = SketchGenerator(SketchConfig(target="gpu"))
    schedule = gen.generate(sg, stream("test.gpu.bind"))
    binds = [p for p in schedule.primitives if p.kind is PrimitiveKind.AN and p.attr.startswith("bind.")]
    assert binds, "GPU sketches must bind at least one thread axis"


def test_generate_is_fail_closed(monkeypatch, matmul):
    """If the sampler ever emits an invalid sequence, generate() raises
    instead of letting the sequence poison downstream consumers."""
    from repro.tensorir import sampler as sampler_mod

    def broken_sample(self, subgraph, rng):
        return Schedule(subgraph, (P.rfactor(subgraph.spatial_axes[0].name),))

    monkeypatch.setattr(sampler_mod.ScheduleSampler, "sample", broken_sample)
    gen = SketchGenerator(SketchConfig())
    with pytest.raises(InvalidScheduleError):
        gen.generate(matmul, stream("test.failclosed"))


def test_sample_schedule_convenience(matmul):
    s = sample_schedule(matmul, "cpu")
    assert s.target == "cpu"
    assert not has_errors(verify_schedule(s))
    assert s.apply() is not None


def test_bad_target_rejected():
    with pytest.raises(ValueError):
        SketchConfig(target="tpu")
