"""repro.tensorir — subgraphs, primitives, and the schedule applier."""

from __future__ import annotations

import pytest

from repro.tensorir import (
    Axis,
    LoopKind,
    PrimitiveKind,
    Schedule,
    ScheduleError,
    Subgraph,
    divisors,
    matmul_subgraph,
    sample_subgraph_pool,
    split_parts,
)
from repro.tensorir import primitives as P


def test_eleven_primitive_kinds():
    assert len(PrimitiveKind) == 11
    assert {k.value for k in PrimitiveKind} == {
        "SP", "RE", "FU", "AN", "PR", "FSP", "CA", "CHW", "RF", "CI", "CP",
    }


def test_subgraph_structure():
    sg = matmul_subgraph(64, 32, 16)
    assert [a.name for a in sg.spatial_axes] == ["i", "j"]
    assert [a.name for a in sg.reduction_axes] == ["k"]
    assert sg.total_points == 64 * 32 * 16
    with pytest.raises(KeyError):
        sg.axis("nope")


def test_subgraph_rejects_bad_axes():
    with pytest.raises(ValueError):
        Axis("i", 0)
    with pytest.raises(ValueError):
        Subgraph("dup", (Axis("i", 4), Axis("i", 8)))


def test_split_parts_pads_with_ceil_division():
    assert split_parts(128, (4, 8)) == (4, 4, 8)
    assert split_parts(100, (3,)) == (34, 3)  # padded: 34 * 3 = 102 >= 100


def test_divisors():
    assert divisors(12) == [1, 2, 3, 4, 6, 12]
    assert divisors(1) == [1]


def test_apply_valid_schedule(valid_schedule):
    nest = valid_schedule.apply()
    assert nest.names == ["i.0@j.0", "i.1", "j.1", "k.0", "i.2", "j.2", "k.1"]
    assert nest.loop("i.0@j.0").kind is LoopKind.PARALLEL
    assert nest.loop("j.2").kind is LoopKind.VECTORIZED
    assert nest.loop("k.0").is_reduction
    assert nest.loop("i.0@j.0").pragmas == (("auto_unroll_max_step", 16),)
    # 4*4*8 = 128 per spatial axis, 4*32 = 128 reduction: no padding.
    assert nest.total_iterations() == 128 ** 3
    assert nest.padding_ratio(valid_schedule.subgraph.total_points) == 1.0


def test_apply_rejects_dead_axis(matmul):
    s = Schedule(matmul, (P.split("i", 128, (8,)), P.annotate("i", "parallel")))
    with pytest.raises(ScheduleError, match="not live"):
        s.apply()


def test_apply_rejects_incomplete_reorder(matmul):
    s = Schedule(matmul, (P.reorder(("i", "j")),))
    with pytest.raises(ScheduleError, match="permutation"):
        s.apply()


def test_apply_rejects_nonadjacent_fuse(matmul):
    s = Schedule(matmul, (P.fuse(("i", "k")),))
    with pytest.raises(ScheduleError, match="adjacent"):
        s.apply()


def test_apply_rejects_bind_on_cpu(matmul):
    s = Schedule(matmul, (P.annotate("i", "bind.blockIdx.x"),), target="cpu")
    with pytest.raises(ScheduleError, match="GPU bind"):
        s.apply()


def test_apply_rejects_rfactor_of_spatial(matmul):
    s = Schedule(matmul, (P.rfactor("i"),))
    with pytest.raises(ScheduleError, match="non-reduction"):
        s.apply()


def test_apply_rejects_primitive_after_inline():
    from repro.tensorir import elementwise_subgraph

    sg = elementwise_subgraph(64)
    s = Schedule(sg, (P.compute_inline(), P.annotate("i", "parallel")))
    with pytest.raises(ScheduleError, match="compute-inline"):
        s.apply()


def test_apply_rejects_fsp_forward_reference(matmul):
    # The ISSUE 3 repro: the applier must refuse factors from a step that
    # has not executed yet.
    s = Schedule(matmul, (P.follow_split("j", 128, 1), P.split("i", 128, (4,))))
    with pytest.raises(ScheduleError, match="strictly earlier"):
        s.apply()


def test_apply_rejects_fsp_self_reference(matmul):
    s = Schedule(matmul, (P.follow_split("j", 128, 0),))
    with pytest.raises(ScheduleError, match="strictly earlier"):
        s.apply()


def test_follow_split_mirrors_source_factors(matmul):
    s = Schedule(
        matmul,
        (
            P.split("i", 128, (4, 8)),
            P.follow_split("j", 128, 0),
        ),
    )
    nest = s.apply()
    assert nest.names == ["i.0", "i.1", "i.2", "j.0", "j.1", "j.2", "k"]
    assert [nest.loop(n).extent for n in ("j.0", "j.1", "j.2")] == [4, 4, 8]


def test_sample_pool_is_diverse():
    pool = sample_subgraph_pool()
    assert len(pool) >= 5
    assert any(sg.reduction_axes for sg in pool)
    assert any(not sg.reduction_axes for sg in pool)
