"""repro.utils.timer: the bench-save measurement layer."""

from __future__ import annotations

import time

import pytest

from repro.utils.timer import Timer, best_of, format_seconds


def test_timer_measures_elapsed_wall_clock():
    with Timer() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.01
    # Final once exited: stable across reads.
    assert t.elapsed == t.elapsed


def test_timer_reads_while_running():
    with Timer() as t:
        first = t.elapsed
        time.sleep(0.005)
        second = t.elapsed
    assert 0 <= first <= second <= t.elapsed


def test_timer_is_reusable():
    t = Timer()
    with t:
        pass
    short = t.elapsed
    with t:
        time.sleep(0.01)
    assert t.elapsed >= 0.01 > short


def test_timer_unentered_raises():
    with pytest.raises(RuntimeError, match="never entered"):
        Timer().elapsed


def test_best_of_returns_min_and_runs_repeats_times():
    calls = []
    best = best_of(lambda: calls.append(len(calls)), repeats=4)
    assert len(calls) == 4
    assert best >= 0.0


def test_best_of_rejects_zero_repeats():
    with pytest.raises(ValueError):
        best_of(lambda: None, repeats=0)


def test_format_seconds_scales_units():
    assert format_seconds(1.234) == "1.23s"
    assert format_seconds(0.004567) == "4.57ms"
    assert format_seconds(0.000789) == "789us"


def test_format_seconds_clamps_negative_durations():
    # perf_counter skew can make a delta marginally negative; never render
    # a signed duration like "-500000us".
    assert format_seconds(-0.5) == "0us"
    assert format_seconds(-1e-9) == "0us"


def test_format_seconds_zero():
    assert format_seconds(0.0) == "0us"


def test_format_seconds_tiny_positive_rounds_to_zero_us():
    assert format_seconds(1e-9) == "0us"
    assert format_seconds(9e-7) == "1us"


def test_format_seconds_promotes_unit_at_rounding_boundary():
    # Durations that round up to 1000 of the smaller unit must promote to
    # the next unit instead of rendering "1000us" / "1000.00ms".
    assert format_seconds(9.999e-4) == "1.00ms"
    assert format_seconds(0.999999) == "1.00s"
    assert format_seconds(0.9999951) == "1.00s"


def test_format_seconds_just_under_boundary_keeps_small_unit():
    assert format_seconds(9.994e-4) == "999us"
    assert format_seconds(0.9999) == "999.90ms"


def test_format_seconds_exact_boundaries():
    assert format_seconds(1e-3) == "1.00ms"
    assert format_seconds(1.0) == "1.00s"
