"""The Fig. 7 TLP cost model: shapes, masking, reproducibility, and the
ISSUE 3 smoke-training acceptance (strictly decreasing lambda-rank loss
over 5 epochs, bit-reproducible from the rng streams)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.core import TABLE4_CROPPED, TLPFeaturizer, TLPModel, TLPModelConfig
from repro.tensorir import SketchConfig, SketchGenerator, sample_subgraph_pool
from repro.utils.rng import stream

_SMALL = TLPModelConfig(emb=22, hidden=32, n_heads=2, n_res_blocks=2)


@pytest.fixture(scope="module")
def featurized():
    """A featurized corpus: 8 sampled schedules per pool subgraph."""
    pool = sample_subgraph_pool()
    gen = SketchGenerator(SketchConfig("cpu"))
    rng = stream("test.tlp_model.corpus")
    corpus = [gen.generate(sg, rng) for sg in pool for _ in range(8)]
    featurizer = TLPFeaturizer(TABLE4_CROPPED).fit(corpus)
    return featurizer.transform(corpus)


def _labels(X: np.ndarray) -> np.ndarray:
    """Deterministic stand-in for ``min_latency / latency`` in (0, 1]:
    a seeded projection of the mean feature row, min-max normalized."""
    w = stream("test.tlp_model.labels").standard_normal(X.shape[-1]).astype(np.float32)
    raw = X.mean(axis=1) @ w
    span = float(raw.max() - raw.min())
    return ((raw - raw.min()) / np.float32(span + 1e-6)).astype(np.float32)


def test_config_validation():
    with pytest.raises(ValueError):
        TLPModelConfig(hidden=30, n_heads=8)
    with pytest.raises(ValueError):
        TLPModelConfig(emb=0)
    with pytest.raises(ValueError):
        TLPModelConfig(n_res_blocks=-1)


def test_forward_consumes_extractor_output_directly(featurized):
    X, mask = featurized
    scores = TLPModel(_SMALL)(X, mask)
    assert scores.shape == (X.shape[0],)
    assert scores.data.dtype == np.float32


def test_forward_validates_geometry(featurized):
    X, mask = featurized
    model = TLPModel(_SMALL)
    with pytest.raises(ValueError):
        model(X[:, :, :-1], mask)
    with pytest.raises(ValueError):
        model(X, mask[:-1])


def test_equal_configs_build_bit_identical_models(featurized):
    X, mask = featurized
    a, b = TLPModel(_SMALL), TLPModel(_SMALL)
    for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
        assert na == nb and np.array_equal(pa.data, pb.data)
    assert np.array_equal(a(X, mask).data, b(X, mask).data)


def test_scores_ignore_padding_row_content(featurized):
    """Padded rows are masked out of attention and the pooled sum, so
    their feature content must not affect any schedule's score."""
    X, mask = featurized
    assert (mask == 0.0).any(), "corpus has no padded rows to test with"
    model = TLPModel(_SMALL)
    base = model(X, mask).data
    noisy = X + (1.0 - mask[:, :, None]) * 17.0
    assert np.allclose(model(noisy, mask).data, base, atol=1e-4)


def test_default_config_matches_paper_geometry():
    model = TLPModel()
    assert model.config == TLPModelConfig()
    assert model.config.hidden == 256 and model.config.n_heads == 8
    assert model.up1.in_features == 22
    assert len(model.res_blocks) == 2
    assert model.head.out_features == 1


def _train_once(X, mask):
    model = TLPModel(_SMALL)
    labels = _labels(X)
    opt = nn.Adam(model.parameters(), lr=1e-3)
    sched = nn.CosineLR(opt, total_epochs=5, min_lr=1e-4)
    loader = nn.BatchLoader(X, mask, labels, batch_size=16,
                            stream_name="test.tlp_model.loader")
    epoch_losses = []
    for _ in range(5):
        total, batches = 0.0, 0
        for Xb, mb, yb in loader:
            opt.zero_grad()
            loss = nn.lambda_rank_loss(model(Xb, mb), yb)
            loss.backward()
            opt.step()
            total += float(loss.data)
            batches += 1
        epoch_losses.append(total / batches)
        sched.step()
    return epoch_losses


def test_smoke_training_loss_strictly_decreases_and_reproduces(featurized):
    X, mask = featurized
    first = _train_once(X, mask)
    assert all(later < earlier for earlier, later in zip(first, first[1:])), first
    # every stream (weights, shuffles, labels) is named and seeded, so an
    # identical rerun reproduces the trajectory bit for bit
    second = _train_once(X, mask)
    assert first == second


@pytest.mark.gradcheck
def test_gradcheck_full_model():
    tiny = TLPModelConfig(emb=22, hidden=8, n_heads=2, n_res_blocks=1,
                          stream_name="test.tlp_model.gc")
    model = TLPModel(tiny)
    # Keep the whole network on one smooth piece: small inputs plus
    # positive bias nudges hold every relu preactivation away from its
    # kink under the finite-difference perturbations, and the MSE head is
    # smooth where lambda-rank's sort permutation is not (lambda-rank has
    # its own score-controlled gradcheck in test_nn_losses).
    for linear in (model.up1, model.up2, model.res_blocks[0].fc):
        linear.weight.data *= np.float32(0.2)
        linear.bias.data += np.float32(1.0)
    model.head.weight.data *= np.float32(0.05)  # keep the loss O(1)
    rng = stream("test.tlp_model.gc.data")
    Xs = (rng.standard_normal((2, 6, 22)) * 0.1).astype(np.float32)
    ms = np.ones((2, 6), dtype=np.float32)
    ms[1, 4:] = 0.0
    labels = rng.random(2).astype(np.float32)

    def loss_fn():
        return nn.mse_loss(model(Xs, ms), labels)

    # q/k projections are excluded: their end-to-end gradients are ~4
    # orders of magnitude below the v-path here, under the float32
    # finite-difference noise floor.  The attention layer's own gradcheck
    # (test_nn_attention) pins them with a well-conditioned loss.
    tensors = [p for name, p in model.named_parameters()
               if "q_proj" not in name and "k_proj" not in name]
    nn.assert_gradients_match(loss_fn, tensors, eps=5e-3)
