"""Multi-head self-attention: masking semantics + gradcheck."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import MultiHeadSelfAttention, Tensor, assert_gradients_match
from repro.utils.rng import stream

_RNG = stream("test.nn.attention")


def _x(shape, scale=0.5):
    return Tensor((_RNG.standard_normal(shape) * scale).astype(np.float32), requires_grad=True)


def test_output_shape_and_head_divisibility():
    att = MultiHeadSelfAttention(8, 4, rng=stream("t.att.shape"))
    assert att(_x((3, 6, 8))).shape == (3, 6, 8)
    with pytest.raises(ValueError):
        MultiHeadSelfAttention(8, 3)


def test_masked_positions_receive_zero_attention_weight():
    """Real-row outputs must not change when padded-row features change."""
    att = MultiHeadSelfAttention(8, 2, rng=stream("t.att.mask"))
    x = _RNG.standard_normal((2, 5, 8)).astype(np.float32)
    mask = np.ones((2, 5), dtype=np.float32)
    mask[:, 3:] = 0.0
    base = att(Tensor(x), mask).data
    perturbed = x.copy()
    perturbed[:, 3:, :] += _RNG.standard_normal((2, 2, 8)).astype(np.float32) * 10.0
    out = att(Tensor(perturbed), mask).data
    assert np.allclose(base[:, :3, :], out[:, :3, :], atol=1e-5)
    # all-ones mask is a no-op relative to no mask at all
    full = att(Tensor(x), np.ones((2, 5), dtype=np.float32)).data
    assert np.allclose(full, att(Tensor(x)).data, atol=1e-6)


def test_construction_is_reproducible_from_stream():
    a = MultiHeadSelfAttention(8, 2, rng=stream("t.att.repro"))
    b = MultiHeadSelfAttention(8, 2, rng=stream("t.att.repro"))
    for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
        assert na == nb and np.array_equal(pa.data, pb.data)


@pytest.mark.gradcheck
def test_gradcheck_attention_with_mask():
    att = MultiHeadSelfAttention(4, 2, rng=stream("t.att.gc"))
    x = _x((2, 3, 4))
    mask = np.ones((2, 3), dtype=np.float32)
    mask[1, 2] = 0.0
    tensors = [x] + list(att.parameters())
    assert_gradients_match(lambda: (att(x, mask) ** 2).mean(), tensors)
