"""Layers + module registry: semantics, reproducibility, gradchecks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    ResidualBlock,
    Sequential,
    Tensor,
    assert_gradients_match,
)
from repro.utils.rng import stream

_RNG = stream("test.nn.layers")


def _x(shape, scale=1.0):
    return Tensor((_RNG.standard_normal(shape) * scale).astype(np.float32), requires_grad=True)


# -- module registry ---------------------------------------------------


def test_named_parameters_walks_nested_modules_and_lists():
    model = Sequential(Linear(4, 8, rng=stream("t.l1")), ReLU(), ResidualBlock(8, rng=stream("t.l2")))
    names = dict(model.named_parameters())
    assert set(names) == {
        "steps.0.weight", "steps.0.bias", "steps.2.fc.weight", "steps.2.fc.bias",
    }
    assert model.num_parameters() == 4 * 8 + 8 + 8 * 8 + 8


def test_state_dict_round_trip_and_shape_validation():
    src = Linear(3, 5, rng=stream("t.sd.a"))
    dst = Linear(3, 5, rng=stream("t.sd.b"))
    assert not np.array_equal(src.weight.data, dst.weight.data)
    dst.load_state_dict(src.state_dict())
    assert np.array_equal(src.weight.data, dst.weight.data)
    with pytest.raises(ValueError):
        Linear(3, 4).load_state_dict(src.state_dict())


def test_train_eval_toggles_recursively():
    model = Sequential(Dropout(0.5, rng=stream("t.te")), ResidualBlock(4))
    model.eval()
    assert all(not m.training for m in model.modules())
    model.train()
    assert all(m.training for m in model.modules())


def test_zero_grad_clears_all_parameters():
    lin = Linear(2, 2, rng=stream("t.zg"))
    (lin(_x((3, 2))) ** 2).sum().backward()
    assert lin.weight.grad is not None
    lin.zero_grad()
    assert lin.weight.grad is None and lin.bias.grad is None


def test_same_rng_stream_gives_bit_identical_weights():
    a = Linear(6, 6, rng=stream("t.repro.lin"))
    b = Linear(6, 6, rng=stream("t.repro.lin"))
    assert np.array_equal(a.weight.data, b.weight.data)


# -- layer semantics ---------------------------------------------------


def test_linear_broadcasts_over_leading_axes():
    lin = Linear(4, 2, rng=stream("t.lin3d"))
    out = lin(_x((5, 7, 4)))
    assert out.shape == (5, 7, 2)
    raw = _RNG.standard_normal((3, 4)).astype(np.float32)
    flat = lin(Tensor(raw))
    assert np.allclose(flat.data, raw @ lin.weight.data + lin.bias.data, atol=1e-6)


def test_linear_without_bias_has_no_bias_parameter():
    lin = Linear(3, 3, bias=False, rng=stream("t.nobias"))
    assert lin.bias is None and len(list(lin.parameters())) == 1


def test_layernorm_normalizes_last_axis():
    ln = LayerNorm(16)
    out = ln(_x((4, 16), scale=5.0))
    assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-5)
    assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-3)


def test_dropout_eval_is_identity_and_train_rescales():
    x = Tensor(np.ones((64, 64), dtype=np.float32))
    drop = Dropout(0.5, rng=stream("t.drop"))
    drop.eval()
    assert np.array_equal(drop(x).data, x.data)
    drop.train()
    out = drop(x).data
    kept = out != 0.0
    assert 0.3 < kept.mean() < 0.7  # ~half survive
    assert np.allclose(out[kept], 2.0)  # inverted scaling
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_residual_block_preserves_shape_and_identity_path():
    block = ResidualBlock(8, rng=stream("t.res"))
    x = _x((3, 8))
    out = block(x)
    assert out.shape == x.shape
    # the skip connection passes gradients even where relu is dead
    out.sum().backward()
    assert np.abs(x.grad).min() > 0.0


# -- gradchecks --------------------------------------------------------


@pytest.mark.gradcheck
def test_gradcheck_linear():
    lin = Linear(4, 3, rng=stream("t.gc.lin"))
    x = _x((5, 4))
    assert_gradients_match(lambda: (lin(x) ** 2).mean(), [x, lin.weight, lin.bias])


@pytest.mark.gradcheck
def test_gradcheck_layernorm():
    ln = LayerNorm(6)
    x = _x((4, 6), scale=2.0)
    assert_gradients_match(lambda: (ln(x).tanh()).sum(), [x, ln.gamma, ln.beta])


@pytest.mark.gradcheck
def test_gradcheck_residual_block():
    # offset the preactivation away from relu kinks for clean differences
    block = ResidualBlock(4, rng=stream("t.gc.res"))
    block.fc.bias.data += np.float32(3.0)
    x = _x((3, 4), scale=0.3)
    assert_gradients_match(lambda: (block(x) ** 2).mean(), [x] + list(block.parameters()))


@pytest.mark.gradcheck
def test_gradcheck_dropout_fixed_mask():
    # freeze one realized mask and check gradients through the scaling
    drop = Dropout(0.5, rng=stream("t.gc.drop"))
    x = _x((4, 4))
    mask = (stream("t.gc.drop.mask").random((4, 4)) >= 0.5).astype(np.float32)
    assert_gradients_match(lambda: (x * (mask / np.float32(0.5))).sum(), [x])
    assert drop.p == 0.5
