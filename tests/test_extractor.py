"""Properties of the batch feature-extraction pipeline (repro.core).

The load-bearing claims, each pinned by a hypothesis property:

1. ``transform`` is deterministic — across repeated calls on one
   featurizer and across independently fitted featurizers.
2. The vectorized batch path is *bit-identical* to the naive
   per-primitive reference extractor, for both Table 4 geometries.
3. ``crop_pad`` preserves the kept prefix exactly and zeroes the rest,
   at 25x22 and 54x40.
4. Sequence-LRU hits return arrays bit-identical to a fresh encode.
5. Fail-closed: every sampler-generated sequence the extractor is fed
   passes the batch verifier with no errors.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import has_errors, verify_many
from repro.core import (
    N_KINDS,
    TABLE4_CROPPED,
    TABLE4_UNCROPPED,
    PostprocessConfig,
    TLPFeaturizer,
    abstract,
    crop_pad,
    reference_transform,
)
from repro.tensorir import SketchConfig, SketchGenerator, sample_subgraph_pool
from repro.utils.rng import stream

_POOL = sample_subgraph_pool()
_GEN = SketchGenerator(SketchConfig("cpu"))
_CORPUS = [
    schedule
    for sg in _POOL
    for schedule in _GEN.generate_many(sg, 6, stream(f"test.extractor.{sg.name}"))
]
_CONFIGS = (TABLE4_CROPPED, TABLE4_UNCROPPED)
_FITTED = {cfg: TLPFeaturizer(cfg).fit(_CORPUS) for cfg in _CONFIGS}

batches = st.lists(st.sampled_from(_CORPUS), min_size=1, max_size=16)


@settings(max_examples=40, deadline=None)
@given(batch=batches)
def test_transform_is_deterministic(batch):
    fitted = _FITTED[TABLE4_CROPPED]
    X1, M1 = fitted.transform(batch)
    X2, M2 = fitted.transform(batch)
    assert np.array_equal(X1, X2) and np.array_equal(M1, M2)
    # An independently fitted featurizer agrees bit-for-bit: the vocab is
    # built in sorted order, so fitting is order- and instance-independent.
    fresh = TLPFeaturizer(TABLE4_CROPPED).fit(list(reversed(_CORPUS)))
    X3, M3 = fresh.transform(batch)
    assert np.array_equal(X1, X3) and np.array_equal(M1, M3)


@settings(max_examples=40, deadline=None)
@given(batch=batches, config=st.sampled_from(_CONFIGS))
def test_batch_matches_naive_reference(batch, config):
    featurizer = _FITTED[config]
    X, M = featurizer.transform(batch)
    X_ref, M_ref = reference_transform(featurizer, batch)
    assert X.dtype == X_ref.dtype == np.float32
    assert np.array_equal(X, X_ref)
    assert np.array_equal(M, M_ref)


@settings(max_examples=80, deadline=None)
@given(
    length=st.integers(min_value=1, max_value=60),
    width=st.integers(min_value=1, max_value=48),
    seed=st.integers(min_value=0, max_value=2**16),
    config=st.sampled_from(_CONFIGS),
)
def test_crop_pad_preserves_prefix(length, width, seed, config):
    rows = (
        stream(f"test.croppad.{seed}")
        .standard_normal((length, width))
        .astype(np.float32)
    )
    out, kept = crop_pad(rows, config)
    kept_rows = min(length, config.seq_len)
    kept_cols = min(width, config.emb)
    assert kept == kept_rows
    assert out.shape == (config.seq_len, config.emb)
    assert np.array_equal(out[:kept_rows, :kept_cols], rows[:kept_rows, :kept_cols])
    assert not out[kept_rows:].any()
    assert not out[:, kept_cols:].any()


@settings(max_examples=25, deadline=None)
@given(batch=batches)
def test_cache_hits_are_bit_identical(batch):
    cached = TLPFeaturizer(TABLE4_CROPPED, cache_size=64).fit(_CORPUS)
    X1, M1 = cached.transform(batch)
    hits_before = cached.cache_info()["hits"]
    X2, M2 = cached.transform(batch)
    # Every probe of the second pass hits the sequence LRU...
    assert cached.cache_info()["hits"] == hits_before + len(batch)
    assert np.array_equal(X1, X2) and np.array_equal(M1, M2)
    # ...and the cached arrays equal an encode with the LRU disabled.
    uncached = TLPFeaturizer(TABLE4_CROPPED, cache_size=0).fit(_CORPUS)
    X3, M3 = uncached.transform(batch)
    assert uncached.cache_info()["size"] == 0
    assert np.array_equal(X1, X3) and np.array_equal(M1, M3)


@settings(max_examples=20, deadline=None)
@given(sg=st.sampled_from(_POOL), seed=st.integers(min_value=0, max_value=2**16))
def test_extractor_inputs_pass_verifier_fail_closed(sg, seed):
    """generate_many output — the extractor's feed — is verified clean."""
    schedules = _GEN.generate_many(sg, 4, stream(f"test.failclosed.{sg.name}.{seed}"))
    diag_lists = verify_many(sg, [s.primitives for s in schedules])
    assert len(diag_lists) == len(schedules)
    assert all(not has_errors(diags) for diags in diag_lists)


# -- direct (non-property) edge cases -----------------------------------


def test_transform_before_fit_raises():
    with pytest.raises(RuntimeError, match="before fit"):
        TLPFeaturizer().transform(_CORPUS[:1])


def test_fit_empty_corpus_raises():
    with pytest.raises(ValueError, match="non-empty"):
        TLPFeaturizer().fit([])


def test_degenerate_geometry_raises():
    with pytest.raises(ValueError):
        PostprocessConfig(seq_len=0, emb=22)


def test_sequence_lru_stays_bounded():
    featurizer = TLPFeaturizer(TABLE4_CROPPED, cache_size=8).fit(_CORPUS)
    featurizer.transform(_CORPUS)
    assert featurizer.cache_info()["size"] <= 8


def test_disabled_cache_reports_no_hits_or_misses():
    # cache_size=0 means there is no LRU to hit *or* miss: the counters
    # must stay at zero instead of recording every encode as a "miss".
    featurizer = TLPFeaturizer(TABLE4_CROPPED, cache_size=0).fit(_CORPUS)
    featurizer.transform(_CORPUS)
    featurizer.transform(_CORPUS)  # re-query: still not a hit or a miss
    info = featurizer.cache_info()
    assert info["hits"] == 0
    assert info["misses"] == 0
    assert info["size"] == 0
    assert info["capacity"] == 0
    # The per-primitive row memo is independent of the LRU and stays warm.
    assert info["row_memo_size"] > 0


def test_enabled_cache_counts_misses_then_hits():
    featurizer = TLPFeaturizer(TABLE4_CROPPED, cache_size=64).fit(_CORPUS)
    # Dedupe by content: a repeated sequence would hit on its first pass.
    batch = list({s.primitives: s for s in _CORPUS[:16]}.values())
    featurizer.transform(batch)
    info = featurizer.cache_info()
    assert info["misses"] == len(batch)
    assert info["hits"] == 0
    featurizer.transform(batch)
    info = featurizer.cache_info()
    assert info["misses"] == len(batch)
    assert info["hits"] == len(batch)


def test_row_layout_leads_with_one_hot_kind():
    fitted = _FITTED[TABLE4_CROPPED]
    schedule = _CORPUS[0]
    X, mask = fitted.transform([schedule])
    kept = int(mask[0].sum())
    assert kept == min(len(schedule.primitives), TABLE4_CROPPED.seq_len)
    for j in range(kept):
        one_hot = X[0, j, :N_KINDS]
        assert one_hot.sum() == 1.0
        assert one_hot[abstract(schedule.primitives[j]).kind_index] == 1.0


# -- buffer donation (transform_into) -----------------------------------


def _buffers(cfg, n):
    X = np.full((n, cfg.seq_len, cfg.emb), np.nan, dtype=np.float32)
    mask = np.full((n, cfg.seq_len), np.nan, dtype=np.float32)
    return X, mask


@settings(max_examples=25, deadline=None)
@given(batch=batches)
def test_transform_into_is_bit_identical_to_transform(batch):
    fitted = _FITTED[TABLE4_CROPPED]
    X_ref, mask_ref = fitted.transform(batch)
    X_buf, mask_buf = _buffers(TABLE4_CROPPED, len(batch) + 3)  # oversized ok
    X, mask = fitted.transform_into(batch, X_buf, mask_buf)
    assert X.shape == X_ref.shape and mask.shape == mask_ref.shape
    assert X.tobytes() == X_ref.tobytes()
    assert mask.tobytes() == mask_ref.tobytes()
    # The returned views alias the donated buffers — no new tensors.
    assert X.base is X_buf and mask.base is mask_buf


def test_transform_into_steady_state_allocates_zero_rows():
    """The zero-alloc pin: after a warm-up pass every primitive row is
    memoized, so a second pass over the same buffers materializes no new
    row arrays (``rows_encoded`` frozen) and grows no caches."""
    featurizer = TLPFeaturizer(TABLE4_CROPPED, cache_size=0).fit(_CORPUS)
    batch = _CORPUS[:12]
    X_buf, mask_buf = _buffers(TABLE4_CROPPED, len(batch))
    featurizer.transform_into(batch, X_buf, mask_buf)
    warm = featurizer.cache_info()
    first = (X_buf.tobytes(), mask_buf.tobytes())
    featurizer.transform_into(batch, X_buf, mask_buf)
    steady = featurizer.cache_info()
    assert steady["rows_encoded"] == warm["rows_encoded"]
    assert steady["row_memo_size"] == warm["row_memo_size"]
    assert (X_buf.tobytes(), mask_buf.tobytes()) == first
    # The LRU was never consulted: buffer donation bypasses it entirely.
    assert steady["hits"] == 0 and steady["misses"] == 0


def test_transform_into_overwrites_stale_buffer_contents():
    fitted = _FITTED[TABLE4_CROPPED]
    long_batch = sorted(_CORPUS, key=lambda s: -len(s.primitives))[:4]
    short_batch = sorted(_CORPUS, key=lambda s: len(s.primitives))[:4]
    X_buf, mask_buf = _buffers(TABLE4_CROPPED, 4)
    fitted.transform_into(long_batch, X_buf, mask_buf)
    fitted.transform_into(short_batch, X_buf, mask_buf)
    X_ref, mask_ref = fitted.transform(short_batch)
    assert X_buf.tobytes() == X_ref.tobytes()
    assert mask_buf.tobytes() == mask_ref.tobytes()


def test_transform_into_validates_buffers():
    fitted = _FITTED[TABLE4_CROPPED]
    batch = _CORPUS[:4]
    good_X, good_mask = _buffers(TABLE4_CROPPED, 4)
    with pytest.raises(ValueError, match="buffer"):
        fitted.transform_into(batch, good_X[:2], good_mask)  # too few rows
    bad_X, _ = _buffers(TABLE4_UNCROPPED, 4)
    with pytest.raises(ValueError, match="buffer"):
        fitted.transform_into(batch, bad_X, good_mask)  # wrong geometry
    with pytest.raises(ValueError, match="float32"):
        fitted.transform_into(batch, good_X.astype(np.float64), good_mask)
    unfitted = TLPFeaturizer(TABLE4_CROPPED)
    with pytest.raises(RuntimeError):
        unfitted.transform_into(batch, good_X, good_mask)


def test_cache_clear_resets_counters_and_caches():
    featurizer = TLPFeaturizer(TABLE4_CROPPED, cache_size=32).fit(_CORPUS)
    featurizer.transform(_CORPUS[:8])
    featurizer.transform(_CORPUS[:8])
    info = featurizer.cache_info()
    assert info["rows_encoded"] > 0 and info["row_memo_size"] > 0
    assert info["hits"] > 0 and info["size"] > 0
    featurizer.cache_clear()
    cleared = featurizer.cache_info()
    assert cleared == {
        "hits": 0,
        "misses": 0,
        "size": 0,
        "capacity": 32,
        "row_memo_size": 0,
        "rows_encoded": 0,
    }
    # Still fitted and still correct after the clear.
    X_a, _ = featurizer.transform(_CORPUS[:8])
    X_b, _ = _FITTED[TABLE4_CROPPED].transform(_CORPUS[:8])
    assert X_a.tobytes() == X_b.tobytes()


def test_refit_clears_stale_state():
    featurizer = TLPFeaturizer(TABLE4_CROPPED, cache_size=32).fit(_CORPUS)
    featurizer.transform(_CORPUS[:8])
    featurizer.fit(_CORPUS)
    info = featurizer.cache_info()
    assert info["size"] == 0 and info["row_memo_size"] == 0
    assert info["rows_encoded"] == 0
