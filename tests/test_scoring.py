"""The candidate-scoring service (repro.core.scoring).

The load-bearing claims:

* only statically *verified* candidates are ever scored — a corrupted
  candidate is excluded from the ranking and counted in ``n_invalid``,
  never silently ranked;
* the ranking is deterministic (stable sort, earlier index wins ties)
  and bit-reproducible across scorer instances;
* the scorer refuses an unfitted featurizer at construction, loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from corruptions import zero_split_factor
from repro.core import (
    CandidateScorer,
    PostprocessConfig,
    ScoredTopK,
    TLPFeaturizer,
    TLPModel,
    TLPModelConfig,
)
from repro.tensorir import SketchConfig, SketchGenerator, matmul_subgraph
from repro.utils.rng import stream

_N = 24


@pytest.fixture(scope="module")
def subgraph():
    return matmul_subgraph(128, 128, 128)


@pytest.fixture(scope="module")
def corpus(subgraph):
    gen = SketchGenerator(SketchConfig("cpu"))
    return gen.generate_many(subgraph, _N, stream("test.scoring.corpus"))


@pytest.fixture(scope="module")
def featurizer(corpus):
    return TLPFeaturizer(PostprocessConfig()).fit(corpus)


@pytest.fixture(scope="module")
def scorer(featurizer):
    model = TLPModel(TLPModelConfig(
        emb=featurizer.config.emb, hidden=16, n_heads=2, n_res_blocks=1,
        stream_name="test.scoring.model")).eval()
    return CandidateScorer(model, featurizer,
                           SketchGenerator(SketchConfig("cpu")))


def test_rejects_unfitted_featurizer(scorer):
    with pytest.raises(ValueError, match="fitted"):
        CandidateScorer(scorer.model, TLPFeaturizer(PostprocessConfig()))


def test_score_matches_predict(scorer, corpus):
    X, mask = scorer.featurizer.transform(corpus)
    direct = scorer.model.predict(X, mask)
    assert np.array_equal(scorer.score(corpus), direct)
    # and the taped forward agrees bit for bit (the serving contract)
    assert np.array_equal(direct, scorer.model(X, mask).data)


def test_topk_ranks_all_valid_candidates(scorer, subgraph, corpus):
    top = scorer.score_topk(subgraph, corpus, k=5)
    assert isinstance(top, ScoredTopK)
    assert top.n_candidates == _N and top.n_invalid == 0 and top.n_scored == _N
    assert top.indices.dtype == np.int64 and top.scores.dtype == np.float32
    assert len(top.indices) == 5
    # descending, and exactly the argsort of the full score vector
    scores = scorer.score(corpus)
    assert np.array_equal(top.indices, np.argsort(-scores, kind="stable")[:5])
    assert np.array_equal(top.scores, scores[top.indices])


def test_topk_excludes_invalid_candidates(scorer, subgraph, corpus):
    corrupted = zero_split_factor(corpus[3])
    assert corrupted is not None
    candidates = list(corpus)
    candidates[3] = corrupted
    top = scorer.score_topk(subgraph, candidates, k=len(candidates))
    assert top.n_invalid == 1
    assert top.n_scored == _N - 1
    assert 3 not in top.indices  # the corrupted slot can never be ranked
    assert len(top.indices) == _N - 1
    # indices point into the ORIGINAL list, skipping only the bad slot
    assert set(top.indices.tolist()) == set(range(_N)) - {3}


def test_topk_all_invalid_returns_empty(scorer, subgraph, corpus):
    corrupted = zero_split_factor(corpus[0])
    top = scorer.score_topk(subgraph, [corrupted, corrupted], k=2)
    assert top.n_candidates == 2 and top.n_invalid == 2 and top.n_scored == 0
    assert top.indices.size == 0 and top.scores.size == 0


def test_topk_is_deterministic_across_instances(scorer, featurizer,
                                                subgraph, corpus):
    fresh = CandidateScorer(
        TLPModel(TLPModelConfig(
            emb=featurizer.config.emb, hidden=16, n_heads=2, n_res_blocks=1,
            stream_name="test.scoring.model")).eval(),
        featurizer)
    a = scorer.score_topk(subgraph, corpus, k=7)
    b = fresh.score_topk(subgraph, corpus, k=7)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.scores, b.scores)


def test_propose_topk_round(scorer, subgraph):
    schedules, top = scorer.propose_topk(subgraph, n=12, k=4,
                                         rng=stream("test.scoring.propose"))
    assert len(schedules) == 12
    assert top.n_candidates == 12 and top.n_invalid == 0
    assert len(top.indices) == 4
    # sampler output is verified by construction: score_topk agrees
    rerank = scorer.score_topk(subgraph, schedules, k=4)
    assert np.array_equal(rerank.indices, top.indices)
    assert np.array_equal(rerank.scores, top.scores)


def test_propose_without_generator_fails(scorer, featurizer, subgraph):
    bare = CandidateScorer(scorer.model, featurizer)
    with pytest.raises(ValueError, match="SketchGenerator"):
        bare.propose_topk(subgraph, n=2, k=1, rng=stream("test.scoring.bare"))


def test_k_must_be_positive(scorer, subgraph, corpus):
    with pytest.raises(ValueError, match="k must be"):
        scorer.score_topk(subgraph, corpus, k=0)
    with pytest.raises(ValueError, match="k must be"):
        scorer.propose_topk(subgraph, n=2, k=0, rng=stream("test.scoring.k"))


def test_n_must_be_positive(scorer, subgraph):
    with pytest.raises(ValueError, match="n must be"):
        scorer.propose_topk(subgraph, n=0, k=1, rng=stream("test.scoring.n"))


def test_propose_topk_counts_generator_output_not_request(scorer, subgraph):
    """Regression: n_candidates was hard-coded to the requested n; it must
    report what the generator actually produced so n_scored stays honest."""

    class ShortGenerator:
        def __init__(self, inner):
            self.inner = inner

        def generate_many(self, subgraph, n, rng):
            return self.inner.generate_many(subgraph, n, rng)[: n - 2]

    short = CandidateScorer(scorer.model, scorer.featurizer,
                            ShortGenerator(scorer.generator))
    schedules, top = short.propose_topk(subgraph, n=8, k=3,
                                        rng=stream("test.scoring.short"))
    assert len(schedules) == 6
    assert top.n_candidates == 6  # not the requested 8
    assert top.n_invalid == 0 and top.n_scored == 6
    assert len(top.indices) == 3


# -- draft-then-verify (Pruner-style static screening) -----------------------


def test_draft_keep_one_is_bit_identical_to_full_path(scorer, subgraph):
    _, full = scorer.propose_topk(subgraph, n=_N, k=5,
                                  rng=stream("test.scoring.draft"))
    _, drafted = scorer.propose_topk(subgraph, n=_N, k=5,
                                     rng=stream("test.scoring.draft"),
                                     draft_keep=1.0)
    assert np.array_equal(full.indices, drafted.indices)
    assert np.array_equal(full.scores, drafted.scores)
    assert full.n_predicted == drafted.n_predicted == _N


def test_draft_keep_bounds_model_calls(scorer, subgraph):
    _, top = scorer.propose_topk(subgraph, n=_N, k=3,
                                 rng=stream("test.scoring.draft.half"),
                                 draft_keep=0.5)
    assert top.n_predicted == _N // 2
    assert top.n_candidates == _N and top.n_invalid == 0
    assert len(top.indices) == 3
    # The returned scores are real model scores of the kept candidates.
    assert (top.scores[:-1] >= top.scores[1:]).all()


def test_draft_keep_never_shrinks_below_k(scorer, subgraph):
    _, top = scorer.propose_topk(subgraph, n=6, k=5,
                                 rng=stream("test.scoring.draft.floor"),
                                 draft_keep=0.01)
    assert top.n_predicted == 5  # max(ceil(0.01*6), min(k, n)) = k
    assert len(top.indices) == 5


def test_draft_keep_validation(scorer, subgraph):
    for bad in (0.0, -0.5, 1.5):
        with pytest.raises(ValueError, match="draft_keep"):
            scorer.propose_topk(subgraph, n=4, k=2,
                                rng=stream("test.scoring.draft.bad"),
                                draft_keep=bad)


def test_n_predicted_tracks_valid_subset_in_score_topk(scorer, subgraph, corpus):
    top = scorer.score_topk(subgraph, corpus, k=5)
    assert top.n_predicted == _N
    corrupted = zero_split_factor(corpus[0])
    mixed = [corrupted if corrupted is not None else corpus[0], *corpus[1:]]
    top = scorer.score_topk(subgraph, mixed, k=5)
    assert top.n_predicted == top.n_scored == _N - top.n_invalid
