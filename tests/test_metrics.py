"""Top-k best-found latency ratio (Table 6/7) and its exact random baseline."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.metrics import (
    random_top_k_score,
    random_top_k_scores_grouped,
    top_k_score,
    top_k_scores_grouped,
)
from repro.utils.rng import stream

_RNG = stream("test.core.metrics")


def test_perfect_model_scores_one():
    lat = np.array([4.0, 1.0, 2.0, 8.0], dtype=np.float32)
    scores = 1.0 / lat  # higher score = faster, perfectly informed
    assert top_k_score(scores, lat, 1) == pytest.approx(1.0)
    assert top_k_score(scores, lat, 3) == pytest.approx(1.0)


def test_top_k_is_best_over_exactly_k_picks():
    lat = np.array([1.0, 2.0, 4.0, 8.0])
    scores = np.array([0.0, 1.0, 3.0, 2.0])  # ranks: idx2, idx3, idx1, idx0
    assert top_k_score(scores, lat, 1) == pytest.approx(1.0 / 4.0)
    assert top_k_score(scores, lat, 2) == pytest.approx(1.0 / 4.0)  # {2,3}
    assert top_k_score(scores, lat, 3) == pytest.approx(1.0 / 2.0)  # +{1}
    assert top_k_score(scores, lat, 4) == pytest.approx(1.0)


def test_score_ties_break_by_index_stably():
    lat = np.array([2.0, 1.0, 4.0])
    scores = np.zeros(3)
    # stable argsort on -scores keeps index order: pick 0 first
    assert top_k_score(scores, lat, 1) == pytest.approx(1.0 / 2.0)


def test_top_k_validates_inputs():
    lat = np.array([1.0, 2.0])
    with pytest.raises(ValueError, match="k"):
        top_k_score(np.zeros(2), lat, 0)
    with pytest.raises(ValueError, match="shape"):
        top_k_score(np.zeros(3), lat, 1)
    with pytest.raises(ValueError, match="positive"):
        top_k_score(np.zeros(2), np.array([1.0, 0.0]), 1)
    with pytest.raises(ValueError):
        top_k_score(np.zeros(0), np.zeros(0), 1)


@pytest.mark.parametrize("n,k", [(5, 1), (5, 2), (6, 3), (7, 5)])
def test_random_baseline_matches_brute_force_enumeration(n, k):
    """The closed form equals the literal average over all C(n, k) subsets."""
    lat = np.sort(_RNG.random(n).astype(np.float64) + 0.1)
    best = lat.min()
    brute = float(np.mean([
        best / min(lat[list(combo)])
        for combo in itertools.combinations(range(n), k)
    ]))
    assert random_top_k_score(lat, k) == pytest.approx(brute, rel=1e-12)


def test_random_baseline_k_geq_n_is_one():
    lat = np.array([3.0, 1.0, 2.0])
    assert random_top_k_score(lat, 3) == 1.0
    assert random_top_k_score(lat, 10) == 1.0


def test_random_baseline_improves_with_k():
    lat = _RNG.random(20) + 0.05
    scores = [random_top_k_score(lat, k) for k in (1, 2, 5, 10, 20)]
    assert all(b > a for a, b in zip(scores, scores[1:]))
    assert scores[-1] == 1.0


def test_grouped_means_match_per_group_scores():
    lat = np.array([1.0, 2.0, 4.0, 3.0, 1.5, 6.0], dtype=np.float32)
    scores = np.array([0.5, 0.1, 0.9, 0.2, 0.8, 0.3], dtype=np.float32)
    gids = np.array([4, 4, 4, 9, 9, 9])
    got = top_k_scores_grouped(scores, lat, gids, ks=(1, 2))
    for k in (1, 2):
        expected = (top_k_score(scores[:3], lat[:3], k)
                    + top_k_score(scores[3:], lat[3:], k)) / 2.0
        assert got[k] == pytest.approx(expected)
    rand = random_top_k_scores_grouped(lat, gids, ks=(1, 2))
    for k in (1, 2):
        expected = (random_top_k_score(lat[:3], k)
                    + random_top_k_score(lat[3:], k)) / 2.0
        assert rand[k] == pytest.approx(expected)


def test_grouped_rejects_non_contiguous_and_empty():
    lat = np.array([1.0, 2.0, 3.0, 4.0])
    with pytest.raises(ValueError, match="contiguous"):
        top_k_scores_grouped(np.zeros(4), lat, np.array([1, 2, 1, 2]))
    with pytest.raises(ValueError, match="no groups"):
        top_k_scores_grouped(np.zeros(0), np.zeros(0), np.zeros(0))
    with pytest.raises(ValueError, match="shape"):
        random_top_k_scores_grouped(lat, np.zeros(3))


def test_informed_model_beats_random_baseline_on_average():
    """Sanity link between the two halves: a noisy-but-informed scorer
    must land above the random baseline, an anti-informed one below."""
    lat = _RNG.random(64).astype(np.float64) + 0.1
    informed = -lat + 0.05 * _RNG.standard_normal(64)
    rand = random_top_k_score(lat, 5)
    assert top_k_score(informed, lat, 5) > rand
    assert top_k_score(-informed, lat, 5) < rand
