"""repro.simhw — the deterministic simulated-hardware latency substrate.

The load-bearing claims, in paper order:

* **Schedule sensitivity** (DESIGN.md §2): good tiling, an innermost
  vectorized loop, an outer parallel loop, and moderate unrolling lower
  latency; power-of-two middle extents (the W301 smell) and
  over-unrolling raise it.  A cost model trained on these labels has
  something real to learn from the primitive sequence alone.
* **Table 9 domain-shift structure**: rankings rank-correlate strongly
  (Spearman > 0.7) within one ISA family and visibly less across
  families, with per-platform latency scales that differ.
* **Determinism**: a measurement is a pure function of (subgraph,
  primitive sequence, platform, root seed) — bit-identical after the
  quirk-stream caches are dropped and re-derived, and across separate
  processes (the digest subprocess test).
* **Throughput**: ``measure_many`` labels 10k verified schedules on one
  platform in far under the 10 s budget.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.stats import spearmanr

from repro.simhw import (
    ALL_PLATFORMS,
    CPU_PLATFORMS,
    GPU_PLATFORMS,
    ISA_FAMILIES,
    PLATFORMS,
    Platform,
    get_platform,
    labels_from_latencies,
    measure,
    measure_labels,
    measure_many,
)
from repro.simhw.cache import NestFeatures, conflict_counts
from repro.simhw.gpu_model import occupancy_efficiency
from repro.simhw.measure import _quirk_unit
from repro.tensorir import Schedule, SketchConfig, SketchGenerator, matmul_subgraph
from repro.tensorir import primitives as P
from repro.utils.rng import stream

REPO_ROOT = Path(__file__).resolve().parent.parent

_SUB = matmul_subgraph(128, 128, 128)
_INTEL = PLATFORMS["platinum-8272"]
_T4 = PLATFORMS["t4"]


def _cpu_latency(*prims, platform=_INTEL, subgraph=_SUB):
    return measure(subgraph, Schedule(subgraph, prims, target="cpu"), platform).latency


def _gpu_latency(*prims, platform=_T4, subgraph=_SUB):
    return measure(subgraph, Schedule(subgraph, prims, target="gpu"), platform).latency


@pytest.fixture(scope="module")
def cpu_corpus():
    gen = SketchGenerator(SketchConfig("cpu"))
    return gen.generate_many(_SUB, 400, stream("test.simhw.cpu_corpus"))


@pytest.fixture(scope="module")
def gpu_corpus():
    gen = SketchGenerator(SketchConfig("gpu"))
    return gen.generate_many(_SUB, 400, stream("test.simhw.gpu_corpus"))


# -- platforms ---------------------------------------------------------------


def test_registry_has_the_seven_tenset_platforms():
    assert len(ALL_PLATFORMS) == 7
    assert len(CPU_PLATFORMS) == 5 and len(GPU_PLATFORMS) == 2
    assert set(ISA_FAMILIES) == {"x86", "aarch64", "cuda"}
    assert len(ISA_FAMILIES["x86"]) == 4
    assert get_platform("t4") is _T4
    assert get_platform(_INTEL) is _INTEL
    with pytest.raises(KeyError, match="unknown platform"):
        get_platform("a100")


def test_platform_validation():
    with pytest.raises(ValueError, match="target"):
        Platform(name="x", isa="x86", vendor="intel", target="tpu",
                 freq_ghz=1.0, cores=1, vector_width=1, flops_per_cycle=1.0,
                 cache_kb=(32.0,), cache_bw=(8.0,), mem_parallel_scale=1.0,
                 parallel_task_cycles=0.0, conflict_penalty=0.0, unroll_cap=16,
                 unroll_gain=0.0, icache_penalty=0.0,
                 quirk_isa_scale=0.0, quirk_platform_scale=0.0)
    with pytest.raises(ValueError, match="lengths differ"):
        Platform(name="x", isa="x86", vendor="intel", target="cpu",
                 freq_ghz=1.0, cores=1, vector_width=1, flops_per_cycle=1.0,
                 cache_kb=(32.0, 64.0), cache_bw=(8.0,), mem_parallel_scale=1.0,
                 parallel_task_cycles=0.0, conflict_penalty=0.0, unroll_cap=16,
                 unroll_gain=0.0, icache_penalty=0.0,
                 quirk_isa_scale=0.0, quirk_platform_scale=0.0)


def test_target_mismatch_is_rejected():
    gpu_schedule = Schedule(_SUB, (), target="gpu")
    with pytest.raises(ValueError, match="targets"):
        measure(_SUB, gpu_schedule, _INTEL)
    with pytest.raises(ValueError, match="targets"):
        measure_many(_SUB, [Schedule(_SUB, (), target="cpu")], "k80")


# -- schedule sensitivity (the paper-shaped properties) ----------------------


def test_vectorizing_the_innermost_loop_lowers_latency():
    base = _cpu_latency()
    vec = _cpu_latency(P.split("j", 128, (16,)), P.annotate("j.1", "vectorize"))
    assert vec < base


def test_parallelizing_the_outer_loop_lowers_latency():
    base = _cpu_latency()
    par = _cpu_latency(P.annotate("i", "parallel"))
    assert par < base
    # ... and scales with the core count: the 26-core part gains more
    # than the 4-core laptop chip from the identical schedule.
    laptop = PLATFORMS["i7-10510u"]
    gain_server = base / par
    gain_laptop = _cpu_latency(platform=laptop) / _cpu_latency(
        P.annotate("i", "parallel"), platform=laptop
    )
    assert gain_server > gain_laptop


def test_cache_tiling_lowers_latency():
    base = _cpu_latency()
    tiled = _cpu_latency(
        P.split("i", 128, (8,)), P.split("j", 128, (8,)),
        P.reorder(("i.0", "j.0", "i.1", "j.1", "k")),
    )
    assert tiled < base


def test_moderate_unroll_helps_and_over_unroll_hurts():
    good = _cpu_latency(P.pragma("i", "auto_unroll_max_step", 64))
    over = _cpu_latency(P.pragma("i", "auto_unroll_max_step", 4096))
    assert good < _cpu_latency()
    assert over > good


def test_pow2_middle_extent_conflict_raises_latency():
    # 8320 factors as 80 x 104 (conflict-free) or 64 x 130 (one pow2 >= 64
    # middle extent — exactly what the verifier's W301 flags).  Same
    # iteration count, same padding; only the conflict term differs.
    sub = matmul_subgraph(128, 8320, 128)
    clean = measure(sub, Schedule(sub, (P.split("j", 8320, (104,)),)), _INTEL)
    confl = measure(sub, Schedule(sub, (P.split("j", 8320, (130,)),)), _INTEL)
    assert clean.conflict_factor == pytest.approx(1.0)
    assert confl.conflict_factor > 1.0
    assert confl.latency > clean.latency


def test_conflict_counts_exempt_outermost_and_innermost():
    nests = [
        Schedule(_SUB, ()).apply(),                          # i=128, j=128, k=128
        Schedule(_SUB, (P.split("j", 128, (2,)),)).apply(),  # middle j.0 = 64
    ]
    counts = conflict_counts(NestFeatures.from_nests(_SUB, nests))
    # Nest 0: only the middle loop j=128 counts (i outermost, k innermost).
    assert counts.tolist() == [1.0, 1.0]


def test_gpu_thread_binding_lowers_latency():
    unbound = _gpu_latency()
    bound = _gpu_latency(
        P.split("i", 128, (64,)),
        P.annotate("i.0", "bind.blockIdx.x"),
        P.annotate("i.1", "bind.threadIdx.x"),
    )
    more_blocks = _gpu_latency(
        P.split("i", 128, (64,)),
        P.annotate("i.0", "bind.blockIdx.x"),
        P.annotate("i.1", "bind.threadIdx.x"),
        P.split("j", 128, (1,)),
        P.annotate("j.0", "bind.blockIdx.y"),
    )
    assert bound < unbound
    assert more_blocks < bound  # filling more SMs raises occupancy


def test_gpu_warp_alignment_and_occupancy_saturation():
    grid = np.array([40.0], dtype=np.float32)
    full, _ = occupancy_efficiency(grid, np.array([64.0], np.float32), _T4)
    ragged, _ = occupancy_efficiency(grid, np.array([33.0], np.float32), _T4)
    assert full[0] == pytest.approx(1.0)
    assert ragged[0] == pytest.approx(33.0 / 64.0)
    # occupancy efficiency saturates: doubling an already-full device
    # changes nothing.
    _, occ_full = occupancy_efficiency(
        np.array([1e6], np.float32), np.array([1024.0], np.float32), _T4
    )
    assert occ_full[0] == pytest.approx(1.0)


# -- Table 9 structure -------------------------------------------------------


def test_latency_scales_differ_across_platforms(cpu_corpus):
    medians = {
        p.name: float(np.median(measure_many(_SUB, cpu_corpus, p)))
        for p in CPU_PLATFORMS
    }
    assert len({round(m, 9) for m in medians.values()}) == len(medians)


def test_rankings_correlate_within_isa_family(cpu_corpus, gpu_corpus):
    lat = {p.name: measure_many(_SUB, cpu_corpus, p) for p in CPU_PLATFORMS}
    for i, a in enumerate(CPU_PLATFORMS):
        for b in CPU_PLATFORMS[i + 1:]:
            if a.isa == b.isa:
                r = spearmanr(lat[a.name], lat[b.name]).statistic
                assert r > 0.7, f"{a.name} vs {b.name}: spearman {r:.3f}"
    glat = {p.name: measure_many(_SUB, gpu_corpus, p) for p in GPU_PLATFORMS}
    assert spearmanr(glat["k80"], glat["t4"]).statistic > 0.7


def test_rankings_drift_across_isa_families(cpu_corpus):
    lat = {p.name: measure_many(_SUB, cpu_corpus, p) for p in CPU_PLATFORMS}
    within, across = [], []
    for i, a in enumerate(CPU_PLATFORMS):
        for b in CPU_PLATFORMS[i + 1:]:
            r = spearmanr(lat[a.name], lat[b.name]).statistic
            (within if a.isa == b.isa else across).append(r)
    # Every cross-family pair correlates less than every within-family
    # pair — the domain shift MTL-TLP exploits is real and directional.
    assert max(across) < min(within)


# -- determinism -------------------------------------------------------------


def test_measure_many_matches_a_loop_of_measure(cpu_corpus):
    batch = measure_many(_SUB, cpu_corpus[:64], _INTEL)
    singles = np.array(
        [measure(_SUB, s, _INTEL).latency for s in cpu_corpus[:64]], dtype=np.float32
    )
    assert np.array_equal(batch, singles)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    root_seed=st.integers(min_value=0, max_value=8),
    name=st.sampled_from([p.name for p in CPU_PLATFORMS]),
)
def test_measure_is_bit_identical_after_state_rederivation(seed, root_seed, name):
    """A fresh process has no rng-stream or quirk cache — dropping the
    memoized quirk draws and re-deriving every stream must reproduce the
    latency bit-for-bit."""
    gen = SketchGenerator(SketchConfig("cpu"))
    schedule = gen.generate(_SUB, stream(f"test.simhw.prop.{seed}"))
    first = measure(_SUB, schedule, name, root_seed=root_seed).latency
    _quirk_unit.cache_clear()
    second = measure(_SUB, schedule, name, root_seed=root_seed).latency
    assert np.float32(first).tobytes() == np.float32(second).tobytes()


def test_root_seed_changes_quirks_only_deterministically():
    schedule = Schedule(_SUB, (P.annotate("i", "parallel"),))
    a = measure(_SUB, schedule, _INTEL, root_seed=0)
    b = measure(_SUB, schedule, _INTEL, root_seed=1)
    assert a.latency != b.latency
    assert a.compute_cycles == b.compute_cycles  # the model itself is seed-free
    assert a.latency == measure(_SUB, schedule, _INTEL, root_seed=0).latency


def test_digest_is_identical_across_processes():
    cmd = [sys.executable, "-m", "repro.simhw.measure", "--digest"]
    env_path = str(REPO_ROOT / "src")
    runs = [
        subprocess.run(cmd, capture_output=True, text=True, check=True,
                       cwd=REPO_ROOT, env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"})
        for _ in range(2)
    ]
    digests = {r.stdout.strip() for r in runs}
    assert len(digests) == 1 and len(digests.pop()) == 64


# -- labels + throughput -----------------------------------------------------


def test_labels_are_min_normalized_into_unit_interval(cpu_corpus):
    latencies, labels = measure_labels(_SUB, cpu_corpus, "epyc-7452")
    assert labels.dtype == np.float32
    assert labels.max() == np.float32(1.0)
    assert np.all((labels > 0) & (labels <= 1))
    assert np.array_equal(labels, labels_from_latencies(latencies))
    best = int(np.argmin(latencies))
    assert labels[best] == np.float32(1.0)


def test_labels_reject_nonpositive_and_pass_empty():
    with pytest.raises(ValueError, match="positive"):
        labels_from_latencies(np.array([1.0, 0.0], dtype=np.float32))
    assert labels_from_latencies(np.array([], dtype=np.float32)).size == 0


def test_measure_many_labels_10k_schedules_in_budget():
    gen = SketchGenerator(SketchConfig("cpu"))
    schedules = gen.generate_many(_SUB, 10_000, stream("test.simhw.10k"))
    start = time.perf_counter()
    latencies = measure_many(_SUB, schedules, _INTEL)
    elapsed = time.perf_counter() - start
    assert latencies.shape == (10_000,) and np.all(latencies > 0)
    assert elapsed < 10.0, f"measure_many took {elapsed:.2f}s for 10k schedules"
