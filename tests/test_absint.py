"""repro.analysis.absint — the schedule abstract interpreter.

The load-bearing contract is differential (DESIGN.md §8): on every
verifier-clean sequence the abstract nest concretizes to *exactly* what
``Schedule.apply()`` builds (per step, via the traces), and the static
``NestFeatures`` are bit-identical to featurizing the applied nests; on
every verifier-rejected sequence the interpreter raises
:class:`AbsIntError`.  Around that sit unit tests for the interval
domain, the static feature plane, the draft scores, and the W304–W306
smells the verifier now emits from absint facts.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from corruptions import CORRUPTIONS
from repro.analysis import absint, has_errors, verify_schedule, verify_sequence
from repro.analysis.absint import AbsIntError, Interval, StaticProfile
from repro.analysis.verifier import VerifierConfig
from repro.simhw.platform import ALL_PLATFORMS
from repro.tensorir import SketchConfig, SketchGenerator, sample_subgraph_pool
from repro.tensorir import primitives as P
from repro.tensorir.subgraph import elementwise_subgraph, matmul_subgraph
from repro.utils.rng import stream

_POOL = sample_subgraph_pool()


@st.composite
def schedules(draw):
    sg = draw(st.sampled_from(_POOL))
    target = draw(st.sampled_from(["cpu", "gpu"]))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = stream(f"absint.property.{sg.name}.{target}.{seed}")
    return SketchGenerator(SketchConfig(target=target)).generate(sg, rng)


# -- the interval domain -----------------------------------------------------


def test_interval_validation_and_algebra():
    assert Interval(3, 3).exact
    assert not Interval(2, 4).exact
    assert Interval(2, 3) * Interval(4, 5) == Interval(8, 15)
    with pytest.raises(ValueError):
        Interval(0, 1)
    with pytest.raises(ValueError):
        Interval(4, 2)


def test_padded_split_attributes_remainder_to_first_inner_level():
    # 10 split by (4,): outer ceil(10/4)=3, padded 12, the last outer
    # iteration covers only 2 useful points — so the inner trip interval
    # is [2, 4] and the useful floor is 3*2=6 of 12 padded points.
    sg = elementwise_subgraph(10)
    prof = absint.profile(sg, (P.split("i", 10, (4,)),))
    assert prof.extents() == (3, 4)
    assert [l.trip for l in prof.loops] == [Interval(3, 3), Interval(2, 4)]
    assert prof.padded_points() == 12 and prof.useful_points() == 6
    assert prof.padding_ratio() == pytest.approx(1.2)


def test_exact_split_keeps_exact_intervals():
    sg = elementwise_subgraph(64)
    prof = absint.profile(sg, (P.split("i", 64, (8, 4)),))
    assert prof.extents() == (2, 8, 4)
    assert all(l.trip.exact for l in prof.loops)
    assert prof.useful_points() == prof.padded_points() == 64


def test_absint_error_carries_step_index():
    sg = matmul_subgraph()
    with pytest.raises(AbsIntError) as err:
        absint.profile(sg, (P.split("i", 999, (8,)),))
    assert err.value.step == 0 and "step 0" in str(err.value)


# -- the differential property (both directions) -----------------------------


@settings(max_examples=60, deadline=None)
@given(schedule=schedules())
def test_clean_sequences_profile_and_match_the_applier(schedule):
    diags = verify_schedule(schedule)
    assert not has_errors(diags)
    prof = absint.profile(
        schedule.subgraph, schedule, schedule.target, trace=True
    )
    assert isinstance(prof, StaticProfile)
    # Final nests identical — loops (name/extent/kind/tag/pragmas/
    # rfactored) and stage state, via LoopNest equality.
    assert prof.to_nest() == schedule.apply()
    # Per-step name/extent snapshots identical too.
    applied = [
        tuple((l.name, l.extent) for l in snap.loops)
        for snap in schedule.apply_trace()
    ]
    assert list(prof.trace) == applied
    row = prof.features()
    assert row.shape == (len(absint.STATIC_FEATURE_NAMES),)
    assert np.isfinite(row).all()


@settings(max_examples=60, deadline=None)
@given(schedule=schedules(), corruption=st.sampled_from(CORRUPTIONS))
def test_rejected_sequences_raise_and_warned_ones_do_not(schedule, corruption):
    _code, _name, mutator = corruption
    mutated = mutator(schedule)
    if mutated is None:
        return
    diags = verify_sequence(schedule.subgraph, mutated, schedule.target)
    if has_errors(diags):
        with pytest.raises(AbsIntError):
            absint.profile(schedule.subgraph, mutated, schedule.target)
    else:
        # Warning-only corruptions stay interpretable — absint rejection
        # must exactly track *error* diagnostics, not smells.
        absint.profile(schedule.subgraph, mutated, schedule.target)


def test_nest_features_bit_identical_to_applied_path():
    from repro.simhw.cache import NestFeatures

    sg = matmul_subgraph()
    gen = SketchGenerator(SketchConfig("cpu"))
    batch = gen.generate_many(sg, 48, stream("absint.nestfeat"))
    profiles = [absint.profile(sg, s) for s in batch]
    static = absint.nest_features(sg, profiles)
    applied = NestFeatures.from_nests(sg, [s.apply() for s in batch])
    for field in ("depth", "extents", "kinds", "is_reduction", "tags",
                  "padded_points", "domain_points", "flops_per_point",
                  "unroll_step", "cache_write", "compute_at", "inlined",
                  "rfactored"):
        assert np.array_equal(getattr(static, field), getattr(applied, field)), field
    assert static.signatures == applied.signatures


# -- static feature plane and draft scores -----------------------------------


def test_profile_many_plane_shape_and_dtype():
    sg = matmul_subgraph()
    gen = SketchGenerator(SketchConfig("cpu"))
    batch = gen.generate_many(sg, 32, stream("absint.plane"))
    plane = absint.profile_many(sg, batch)
    assert plane.shape == (32, len(absint.STATIC_FEATURE_NAMES))
    assert plane.dtype == np.float32
    assert np.isfinite(plane).all()
    depth_col = absint.STATIC_FEATURE_NAMES.index("depth")
    assert (plane[:, depth_col] >= 1).all()


def test_gpu_grid_geometry_from_bind_tags():
    sg = matmul_subgraph()
    seq = (
        P.split("i", 128, (16,)),
        P.annotate("i.0", "bind.blockIdx.x"),
        P.annotate("i.1", "bind.threadIdx.x"),
    )
    prof = absint.profile(sg, seq, "gpu")
    assert prof.grid_geometry() == (8, 16)
    row = prof.features()
    names = absint.STATIC_FEATURE_NAMES
    assert row[names.index("grid_blocks")] == 8.0
    assert row[names.index("threads_per_block")] == 16.0


def test_draft_scores_are_normalized_and_deterministic():
    sg = matmul_subgraph()
    gen = SketchGenerator(SketchConfig("cpu"))
    batch = gen.generate_many(sg, 64, stream("absint.draft"))
    a = absint.draft_scores(sg, batch)
    b = absint.draft_scores(sg, batch)
    assert np.array_equal(a, b)
    assert a.dtype == np.float32 and a.shape == (64,)
    assert a.max() == np.float32(1.0)
    assert (a > 0).all() and (a <= 1.0).all()
    assert absint.draft_scores(sg, []).shape == (0,)


def test_reference_thresholds_come_from_worst_platform():
    for target in ("cpu", "gpu"):
        plats = [p for p in ALL_PLATFORMS if p.target == target]
        assert absint.reference_platform(target) is plats[0]
        assert absint.reference_llc_kb(target) == min(p.cache_kb[-1] for p in plats)
        assert absint.reference_min_cores(target) == min(p.cores for p in plats)
        assert absint.reference_unroll_budget(target) == min(p.unroll_cap for p in plats)
    with pytest.raises(ValueError):
        absint.reference_platform("tpu")


# -- W304–W306: the absint-backed verifier smells ----------------------------


def codes(diags):
    return {d.code for d in diags}


def test_w304_fires_on_oversized_outer_tile():
    # One outer iteration touches 65536*65536 points; the reuse model
    # puts that working set (~10 MB) past the 8 MB i7 LLC.
    sg = matmul_subgraph(4, 65536, 65536)
    diags = verify_sequence(sg, ())
    w304 = [d for d in diags if d.code == "W304"]
    assert len(w304) == 1 and w304[0].primitive_index == -1
    # A small matmul's outer tile fits comfortably.
    assert "W304" not in codes(verify_sequence(matmul_subgraph(), ()))


def test_w304_threshold_override():
    cfg = VerifierConfig(footprint_llc_kb=1.0)  # absurdly small LLC
    assert "W304" in codes(verify_sequence(matmul_subgraph(), (), config=cfg))


def test_w305_fires_on_thin_parallel_axis():
    sg = matmul_subgraph()
    seq = (P.split("i", 128, (64,)), P.annotate("i.0", "parallel"))
    diags = verify_sequence(sg, seq)
    w305 = [d for d in diags if d.code == "W305"]
    assert len(w305) == 1
    assert w305[0].primitive_index == 1 and w305[0].axis == "i.0"
    # A wide parallel axis is fine.
    wide = (P.split("i", 128, (8,)), P.annotate("i.0", "parallel"))
    assert "W305" not in codes(verify_sequence(sg, wide))


def test_w306_fires_on_unroll_with_huge_static_body():
    sg = matmul_subgraph()
    diags = verify_sequence(sg, (P.annotate("i", "unroll"),))
    w306 = [d for d in diags if d.code == "W306"]
    assert len(w306) == 1 and w306[0].primitive_index == 0
    # Unrolling a small *innermost* loop stays under the icache budget
    # (the body is the whole loop suffix, so the subgraph must be thin).
    thin = elementwise_subgraph(4096)
    small = (P.split("i", 4096, (8,)), P.annotate("i.1", "unroll"))
    assert "W306" not in codes(verify_sequence(thin, small))


def test_w306_skips_axes_later_fused_away():
    sg = matmul_subgraph()
    seq = (P.annotate("i", "unroll"), P.fuse(("i", "j")))
    diags = verify_sequence(sg, seq)
    assert not has_errors(diags)
    assert "W306" not in codes(diags)


def test_smells_gated_off_on_errors_and_by_config():
    sg = matmul_subgraph()
    # An erroring sequence gets no absint smells piled on top.
    bad = (P.annotate("i", "unroll"), P.split("i", 999, (8,)))
    bad_diags = verify_sequence(sg, bad)
    assert has_errors(bad_diags)
    assert not codes(bad_diags) & {"W304", "W305", "W306"}
    # And the config switch disables them wholesale.
    cfg = VerifierConfig(absint_smells=False)
    diags = verify_sequence(sg, (P.annotate("i", "unroll"),), config=cfg)
    assert "W306" not in codes(diags)


def test_smell_diagnostics_empty_on_uninterpretable_sequence():
    sg = matmul_subgraph()
    assert absint.smell_diagnostics(sg, (P.split("i", 999, (8,)),)) == []


def test_working_set_matches_simhw_reuse_model():
    from repro.simhw.cache import BYTES_PER_POINT, REUSE_EXPONENT

    t = 12345.0
    assert absint.working_set_bytes(t) == BYTES_PER_POINT * t ** REUSE_EXPONENT
    assert math.log2(absint.working_set_bytes(1.0)) == 2.0
