"""DatasetSpec validation and the deterministic row plan."""

from __future__ import annotations

import pytest

from repro.dataset import DatasetSpec, enumerate_tasks, plan_batches, total_records
from repro.dataset.spec import candidate_stream, fit_stream
from repro.simhw import PLATFORMS
from repro.tensorir import network_pool

ALL = tuple(PLATFORMS)


def spec(**kw) -> DatasetSpec:
    base = dict(
        name="t",
        networks=("bert_tiny", "resnet18"),
        platforms=("platinum-8272", "graviton2", "t4"),
        candidates_per_task=8,
        shard_size=32,
    )
    base.update(kw)
    return DatasetSpec(**base)


# -- validation ---------------------------------------------------------


@pytest.mark.parametrize(
    "kw, match",
    [
        (dict(name="bad name"), "name"),
        (dict(networks=()), "at least one network"),
        (dict(networks=("bert_tiny", "bert_tiny")), "duplicate networks"),
        (dict(platforms=()), "at least one platform"),
        (dict(platforms=("platinum-8272", "platinum-8272")), "duplicate platforms"),
        (dict(platforms=("tpu-v4",)), "unknown platform"),
        (dict(holdout_networks=("resnet50",)), "holdout"),
        (dict(candidates_per_task=0), "candidates_per_task"),
        (dict(shard_size=0), "shard_size"),
    ],
)
def test_spec_validation(kw, match):
    with pytest.raises((ValueError, KeyError), match=match):
        spec(**kw)


def test_spec_rejects_unknown_network():
    with pytest.raises(KeyError, match="unknown network pool"):
        spec(networks=("vgg19",))


def test_spec_round_trips_through_dict():
    s = spec(holdout_networks=("resnet18",), root_seed=7)
    assert DatasetSpec.from_dict(s.to_dict()) == s


def test_split_of():
    s = spec(holdout_networks=("resnet18",))
    assert s.split_of("resnet18") == "holdout"
    assert s.split_of("bert_tiny") == "train"
    with pytest.raises(ValueError):
        s.split_of("resnet50")


# -- plan ---------------------------------------------------------------


def test_tasks_enumerate_in_canonical_order():
    s = spec()
    tasks = enumerate_tasks(s)
    assert [t.task_id for t in tasks] == list(range(len(tasks)))
    n_bert = len(network_pool("bert_tiny"))
    assert all(t.network == "bert_tiny" for t in tasks[:n_bert])
    assert all(t.network == "resnet18" for t in tasks[n_bert:])


def test_plan_rows_are_contiguous_and_partition_the_store():
    s = spec()
    plans = plan_batches(s)
    row = 0
    for plan in plans:
        assert plan.row_start == row
        assert plan.n_rows == s.candidates_per_task * len(plan.platform_ids)
        row = plan.row_end
    assert row == total_records(s)
    # 2 CPU + 1 GPU platform: every task gets one batch per target.
    n_tasks = len(enumerate_tasks(s))
    assert len(plans) == 2 * n_tasks
    assert row == n_tasks * s.candidates_per_task * 3


def test_plan_skips_targets_without_platforms():
    cpu_only = spec(platforms=("platinum-8272", "epyc-7452"))
    assert all(p.target == "cpu" for p in plan_batches(cpu_only))
    gpu_only = spec(platforms=("t4", "k80"))
    assert all(p.target == "gpu" for p in plan_batches(gpu_only))


def test_platform_ids_preserve_spec_order():
    s = spec(platforms=("t4", "platinum-8272", "graviton2"))
    assert s.platform_ids_for_target("gpu") == (0,)
    assert s.platform_ids_for_target("cpu") == (1, 2)


def test_stream_names_are_batch_private():
    s = spec()
    tasks = enumerate_tasks(s)
    names = {
        candidate_stream(s, t, target)
        for t in tasks
        for target in ("cpu", "gpu")
    } | {fit_stream(s, t, target) for t in tasks for target in ("cpu", "gpu")}
    assert len(names) == 4 * len(tasks)  # all distinct


def test_all_platform_spec_is_valid():
    s = spec(platforms=ALL)
    assert len(s.platform_ids_for_target("cpu")) == 5
    assert len(s.platform_ids_for_target("gpu")) == 2
