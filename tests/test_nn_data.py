"""BatchLoader: batching geometry, seeded shuffles, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import BatchLoader
from repro.utils.rng import stream

_N, _L, _F = 23, 5, 4
_RNG = stream("test.nn.data")
_X = _RNG.standard_normal((_N, _L, _F)).astype(np.float32)
_MASK = (_RNG.random((_N, _L)) < 0.8).astype(np.float32)
_Y = _RNG.random(_N).astype(np.float32)


def test_batches_cover_every_row_exactly_once():
    loader = BatchLoader(_X, _MASK, _Y, batch_size=8, stream_name="t.data.cover")
    rows = []
    for Xb, mb, yb in loader:
        assert Xb.shape[1:] == (_L, _F) and mb.shape[1:] == (_L,)
        assert Xb.shape[0] == mb.shape[0] == yb.shape[0]
        rows.extend(Xb[:, 0, 0].tolist())
    assert len(rows) == _N
    assert sorted(rows) == sorted(_X[:, 0, 0].tolist())
    assert len(loader) == 3


def test_drop_last_only_yields_full_batches():
    loader = BatchLoader(_X, _MASK, batch_size=8, drop_last=True, stream_name="t.data.drop")
    batches = list(loader)
    assert len(batches) == len(loader) == 2
    assert all(Xb.shape[0] == 8 for Xb, _ in batches)


def test_unshuffled_loader_preserves_order_and_omits_labels():
    loader = BatchLoader(_X, _MASK, batch_size=100, shuffle=False)
    (out,) = [b for b in loader]
    Xb, mb = out
    assert np.array_equal(Xb, _X) and np.array_equal(mb, _MASK)


def test_same_stream_name_gives_identical_epoch_order():
    a = BatchLoader(_X, _MASK, _Y, batch_size=8, stream_name="t.data.seeded")
    b = BatchLoader(_X, _MASK, _Y, batch_size=8, stream_name="t.data.seeded")
    for _ in range(3):  # permutation sequence matches epoch by epoch
        for (Xa, _, ya), (Xb, _, yb) in zip(a, b):
            assert np.array_equal(Xa, Xb) and np.array_equal(ya, yb)


def test_epochs_reshuffle_within_one_loader():
    loader = BatchLoader(_X, _MASK, batch_size=100, stream_name="t.data.reshuffle")
    first = next(iter(loader))[0]
    second = next(iter(loader))[0]
    assert not np.array_equal(first, second)


@pytest.mark.parametrize("drop_last", [False, True])
@pytest.mark.parametrize("shuffle", [False, True])
@pytest.mark.parametrize("n", [24, 23, 5])  # n % 8 == 0, nonzero, n < batch
def test_batch_geometry_across_drop_last_shuffle_and_remainder(n, shuffle, drop_last):
    """Regression: __iter__ had a second, unreachable drop_last guard that
    could drift from len(); the batch count is now the single source of
    truth.  Every (drop_last, shuffle, remainder) cell must agree with it."""
    bs = 8
    X = np.arange(n, dtype=np.float32)[:, None, None] * np.ones((1, _L, _F), np.float32)
    mask = np.ones((n, _L), dtype=np.float32)
    loader = BatchLoader(X, mask, batch_size=bs, shuffle=shuffle,
                         drop_last=drop_last, stream_name=f"t.data.geom.{n}")
    batches = list(loader)
    assert len(batches) == len(loader) == (n // bs if drop_last else -(-n // bs))
    if drop_last:
        assert all(Xb.shape[0] == bs for Xb, _ in batches)
    else:
        sizes = [Xb.shape[0] for Xb, _ in batches]
        assert sizes[:-1] == [bs] * (len(sizes) - 1) if sizes else True
        assert sum(sizes) == n
        rows = sorted(x for Xb, _ in batches for x in Xb[:, 0, 0].tolist())
        assert rows == list(range(n))  # every row exactly once


def test_epoch_order_is_bit_reproducible_across_loaders():
    a = BatchLoader(_X, _MASK, _Y, batch_size=7, stream_name="t.data.bits")
    b = BatchLoader(_X, _MASK, _Y, batch_size=7, stream_name="t.data.bits")
    for _ in range(3):
        ea = [batch for batch in a]
        eb = [batch for batch in b]
        assert len(ea) == len(eb)
        for ta, tb in zip(ea, eb):
            for xa, xb in zip(ta, tb):
                assert xa.tobytes() == xb.tobytes()  # bit-identical


def test_loader_validates_inputs():
    with pytest.raises(ValueError):
        BatchLoader(_X, _MASK[:-1])
    with pytest.raises(ValueError):
        BatchLoader(_X, _MASK, _Y[:-1])
    with pytest.raises(ValueError):
        BatchLoader(_X, _MASK, batch_size=0)
