"""BatchLoader: batching geometry, seeded shuffles, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import BatchLoader
from repro.utils.rng import stream

_N, _L, _F = 23, 5, 4
_RNG = stream("test.nn.data")
_X = _RNG.standard_normal((_N, _L, _F)).astype(np.float32)
_MASK = (_RNG.random((_N, _L)) < 0.8).astype(np.float32)
_Y = _RNG.random(_N).astype(np.float32)


def test_batches_cover_every_row_exactly_once():
    loader = BatchLoader(_X, _MASK, _Y, batch_size=8, stream_name="t.data.cover")
    rows = []
    for Xb, mb, yb in loader:
        assert Xb.shape[1:] == (_L, _F) and mb.shape[1:] == (_L,)
        assert Xb.shape[0] == mb.shape[0] == yb.shape[0]
        rows.extend(Xb[:, 0, 0].tolist())
    assert len(rows) == _N
    assert sorted(rows) == sorted(_X[:, 0, 0].tolist())
    assert len(loader) == 3


def test_drop_last_only_yields_full_batches():
    loader = BatchLoader(_X, _MASK, batch_size=8, drop_last=True, stream_name="t.data.drop")
    batches = list(loader)
    assert len(batches) == len(loader) == 2
    assert all(Xb.shape[0] == 8 for Xb, _ in batches)


def test_unshuffled_loader_preserves_order_and_omits_labels():
    loader = BatchLoader(_X, _MASK, batch_size=100, shuffle=False)
    (out,) = [b for b in loader]
    Xb, mb = out
    assert np.array_equal(Xb, _X) and np.array_equal(mb, _MASK)


def test_same_stream_name_gives_identical_epoch_order():
    a = BatchLoader(_X, _MASK, _Y, batch_size=8, stream_name="t.data.seeded")
    b = BatchLoader(_X, _MASK, _Y, batch_size=8, stream_name="t.data.seeded")
    for _ in range(3):  # permutation sequence matches epoch by epoch
        for (Xa, _, ya), (Xb, _, yb) in zip(a, b):
            assert np.array_equal(Xa, Xb) and np.array_equal(ya, yb)


def test_epochs_reshuffle_within_one_loader():
    loader = BatchLoader(_X, _MASK, batch_size=100, stream_name="t.data.reshuffle")
    first = next(iter(loader))[0]
    second = next(iter(loader))[0]
    assert not np.array_equal(first, second)


def test_loader_validates_inputs():
    with pytest.raises(ValueError):
        BatchLoader(_X, _MASK[:-1])
    with pytest.raises(ValueError):
        BatchLoader(_X, _MASK, _Y[:-1])
    with pytest.raises(ValueError):
        BatchLoader(_X, _MASK, batch_size=0)
