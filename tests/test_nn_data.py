"""BatchLoader: batching geometry, seeded shuffles, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import ArraySource, BatchLoader, GroupedBatchLoader, RecordSource
from repro.utils.rng import stream

_N, _L, _F = 23, 5, 4
_RNG = stream("test.nn.data")
_X = _RNG.standard_normal((_N, _L, _F)).astype(np.float32)
_MASK = (_RNG.random((_N, _L)) < 0.8).astype(np.float32)
_Y = _RNG.random(_N).astype(np.float32)


def test_batches_cover_every_row_exactly_once():
    loader = BatchLoader(_X, _MASK, _Y, batch_size=8, stream_name="t.data.cover")
    rows = []
    for Xb, mb, yb in loader:
        assert Xb.shape[1:] == (_L, _F) and mb.shape[1:] == (_L,)
        assert Xb.shape[0] == mb.shape[0] == yb.shape[0]
        rows.extend(Xb[:, 0, 0].tolist())
    assert len(rows) == _N
    assert sorted(rows) == sorted(_X[:, 0, 0].tolist())
    assert len(loader) == 3


def test_drop_last_only_yields_full_batches():
    loader = BatchLoader(_X, _MASK, batch_size=8, drop_last=True, stream_name="t.data.drop")
    batches = list(loader)
    assert len(batches) == len(loader) == 2
    assert all(Xb.shape[0] == 8 for Xb, _ in batches)


def test_unshuffled_loader_preserves_order_and_omits_labels():
    loader = BatchLoader(_X, _MASK, batch_size=100, shuffle=False)
    (out,) = [b for b in loader]
    Xb, mb = out
    assert np.array_equal(Xb, _X) and np.array_equal(mb, _MASK)


def test_same_stream_name_gives_identical_epoch_order():
    a = BatchLoader(_X, _MASK, _Y, batch_size=8, stream_name="t.data.seeded")
    b = BatchLoader(_X, _MASK, _Y, batch_size=8, stream_name="t.data.seeded")
    for _ in range(3):  # permutation sequence matches epoch by epoch
        for (Xa, _, ya), (Xb, _, yb) in zip(a, b):
            assert np.array_equal(Xa, Xb) and np.array_equal(ya, yb)


def test_epochs_reshuffle_within_one_loader():
    loader = BatchLoader(_X, _MASK, batch_size=100, stream_name="t.data.reshuffle")
    first = next(iter(loader))[0]
    second = next(iter(loader))[0]
    assert not np.array_equal(first, second)


@pytest.mark.parametrize("drop_last", [False, True])
@pytest.mark.parametrize("shuffle", [False, True])
@pytest.mark.parametrize("n", [24, 23, 5])  # n % 8 == 0, nonzero, n < batch
def test_batch_geometry_across_drop_last_shuffle_and_remainder(n, shuffle, drop_last):
    """Regression: __iter__ had a second, unreachable drop_last guard that
    could drift from len(); the batch count is now the single source of
    truth.  Every (drop_last, shuffle, remainder) cell must agree with it."""
    bs = 8
    X = np.arange(n, dtype=np.float32)[:, None, None] * np.ones((1, _L, _F), np.float32)
    mask = np.ones((n, _L), dtype=np.float32)
    loader = BatchLoader(X, mask, batch_size=bs, shuffle=shuffle,
                         drop_last=drop_last, stream_name=f"t.data.geom.{n}")
    batches = list(loader)
    assert len(batches) == len(loader) == (n // bs if drop_last else -(-n // bs))
    if drop_last:
        assert all(Xb.shape[0] == bs for Xb, _ in batches)
    else:
        sizes = [Xb.shape[0] for Xb, _ in batches]
        assert sizes[:-1] == [bs] * (len(sizes) - 1) if sizes else True
        assert sum(sizes) == n
        rows = sorted(x for Xb, _ in batches for x in Xb[:, 0, 0].tolist())
        assert rows == list(range(n))  # every row exactly once


def test_epoch_order_is_bit_reproducible_across_loaders():
    a = BatchLoader(_X, _MASK, _Y, batch_size=7, stream_name="t.data.bits")
    b = BatchLoader(_X, _MASK, _Y, batch_size=7, stream_name="t.data.bits")
    for _ in range(3):
        ea = [batch for batch in a]
        eb = [batch for batch in b]
        assert len(ea) == len(eb)
        for ta, tb in zip(ea, eb):
            for xa, xb in zip(ta, tb):
                assert xa.tobytes() == xb.tobytes()  # bit-identical


def test_loader_validates_inputs():
    with pytest.raises(ValueError):
        BatchLoader(_X, _MASK[:-1])
    with pytest.raises(ValueError):
        BatchLoader(_X, _MASK, _Y[:-1])
    with pytest.raises(ValueError):
        BatchLoader(_X, _MASK, batch_size=0)


# -- lazily-indexed record sources --------------------------------------


class _CountingSource:
    """A minimal lazy RecordSource that records every gather request."""

    def __init__(self, X, mask, y):
        self.X, self.mask, self.y = X, mask, y
        self.requests: list[np.ndarray] = []

    def __len__(self) -> int:
        return self.X.shape[0]

    def __getitem__(self, indices):
        indices = np.asarray(indices)
        self.requests.append(indices)
        return self.X[indices], self.mask[indices], self.y[indices]


def test_array_source_satisfies_protocol():
    source = ArraySource(_X, _MASK, _Y)
    assert isinstance(source, RecordSource)
    assert isinstance(_CountingSource(_X, _MASK, _Y), RecordSource)
    assert len(source) == _N
    Xb, mb, yb = source[np.asarray([2, 0, 2])]
    assert np.array_equal(Xb, _X[[2, 0, 2]])
    assert np.array_equal(mb, _MASK[[2, 0, 2]])
    assert np.array_equal(yb, _Y[[2, 0, 2]])


def test_loader_over_source_matches_loader_over_arrays():
    """Bit-identical epochs: the lazy-source path must shuffle and slice
    exactly like the array path (same stream, same permutation)."""
    lazy = BatchLoader(
        _CountingSource(_X, _MASK, _Y), batch_size=7, stream_name="t.data.src"
    )
    eager = BatchLoader(_X, _MASK, _Y, batch_size=7, stream_name="t.data.src")
    assert len(lazy) == len(eager)
    for lazy_batch, eager_batch in zip(lazy, eager):
        for a, b in zip(lazy_batch, eager_batch):
            assert a.tobytes() == b.tobytes()


def test_source_loader_gathers_one_batch_at_a_time():
    source = _CountingSource(_X, _MASK, _Y)
    loader = BatchLoader(source, batch_size=8, shuffle=False)
    list(loader)
    assert [len(r) for r in source.requests] == [8, 8, 7]
    assert np.array_equal(np.concatenate(source.requests), np.arange(_N))


def test_source_epoch_order_is_bit_reproducible():
    source = _CountingSource(_X, _MASK, _Y)
    loader = BatchLoader(source, batch_size=6, stream_name="t.data.src.repro")
    a = [y.tobytes() for _, _, y in loader]
    source2 = _CountingSource(_X, _MASK, _Y)
    loader2 = BatchLoader(source2, batch_size=6, stream_name="t.data.src.repro")
    b = [y.tobytes() for _, _, y in loader2]
    assert a == b
    assert [r.tolist() for r in source.requests] == [
        r.tolist() for r in source2.requests
    ]


def test_two_tuple_sources_iterate_without_labels():
    class _Unlabeled:
        def __len__(self):
            return _N

        def __getitem__(self, indices):
            return _X[np.asarray(indices)], _MASK[np.asarray(indices)]

    batches = list(BatchLoader(_Unlabeled(), batch_size=10, shuffle=False))
    assert all(len(b) == 2 for b in batches)
    assert sum(b[0].shape[0] for b in batches) == _N


def test_source_loader_validates_inputs():
    with pytest.raises(ValueError, match="mask"):
        BatchLoader(_X)  # raw array needs an explicit mask
    with pytest.raises(ValueError, match="labels"):
        BatchLoader(_CountingSource(_X, _MASK, _Y), labels=_Y)
    with pytest.raises(TypeError):
        BatchLoader(object())  # neither array nor RecordSource


# -- GroupedBatchLoader ---------------------------------------------------


def _grouped_fixture(n_groups=5, rows_per_group=13, seed_name="t.data.grp"):
    rng = stream(seed_name)
    n = n_groups * rows_per_group
    X = rng.standard_normal((n, _L, _F)).astype(np.float32)
    mask = np.ones((n, _L), dtype=np.float32)
    y = rng.random(n).astype(np.float32)
    gids = np.repeat(np.arange(10, 10 + n_groups), rows_per_group)
    # Scatter rows so groups are NOT contiguous in the source.
    perm = rng.permutation(n)
    return ArraySource(X[perm], mask[perm], y[perm]), gids[perm]


def test_grouped_loader_batches_are_group_contiguous_and_cover_epoch():
    source, gids = _grouped_fixture()
    loader = GroupedBatchLoader(source, gids, batch_size=24, segment_size=8,
                                stream_name="t.grp.cover")
    seen = []
    for idx, bg in loader.iter_indices():
        assert idx.shape == bg.shape and idx.dtype == np.int64
        assert idx.shape[0] <= 24
        # every group's rows are one contiguous run
        changes = np.flatnonzero(np.diff(bg) != 0) + 1
        run_ids = bg[np.concatenate(([0], changes))]
        assert np.unique(run_ids).shape[0] == run_ids.shape[0]
        # group labels are truthful
        assert np.array_equal(gids[idx], bg)
        seen.extend(idx.tolist())
    assert sorted(seen) == list(range(len(source)))


def test_grouped_loader_iter_yields_source_arrays_plus_groups():
    source, gids = _grouped_fixture(seed_name="t.grp.iter")
    loader = GroupedBatchLoader(source, gids, batch_size=16, segment_size=8,
                                stream_name="t.grp.iter.loader")
    batch = next(iter(loader))
    X, mask, y, bg = batch
    assert X.shape[0] == mask.shape[0] == y.shape[0] == bg.shape[0]


def test_grouped_loader_segments_never_split_below_pair_size():
    """Packing keeps whole segments: a batch never receives a partial
    segment, so group runs inside a batch have >= min(group, segment)
    rows except for genuine remainder chunks."""
    source, gids = _grouped_fixture(n_groups=3, rows_per_group=9,
                                    seed_name="t.grp.seg")
    loader = GroupedBatchLoader(source, gids, batch_size=8, segment_size=4,
                                stream_name="t.grp.seg.loader")
    # 9 rows -> segments of 4, 4, 1 per group; batches pack whole segments.
    sizes = [idx.shape[0] for idx, _ in loader.iter_indices()]
    assert sum(sizes) == 27
    assert all(s <= 8 for s in sizes)


def test_grouped_loader_epoch_resume_is_bit_identical():
    """Epoch k is a pure function of (stream name, k): a fresh loader
    fast-forwarded via load_state_dict replays the interrupted run."""
    source, gids = _grouped_fixture(seed_name="t.grp.resume")
    mk = lambda: GroupedBatchLoader(source, gids, batch_size=16, segment_size=8,
                                    stream_name="t.grp.resume.loader")
    full = mk()
    epochs = [[(i.tobytes(), g.tobytes()) for i, g in full.iter_indices()]
              for _ in range(4)]
    resumed = mk()
    resumed.load_state_dict({"epoch": np.int64(2)})
    replay = [[(i.tobytes(), g.tobytes()) for i, g in resumed.iter_indices()]
              for _ in range(2)]
    assert replay == epochs[2:]
    assert resumed.epoch == 4


def test_grouped_loader_epoch_advances_only_on_full_consumption():
    source, gids = _grouped_fixture(seed_name="t.grp.partial")
    loader = GroupedBatchLoader(source, gids, batch_size=16, segment_size=8,
                                stream_name="t.grp.partial.loader")
    it = loader.iter_indices()
    next(it)
    assert loader.epoch == 0  # abandoned mid-epoch: counter untouched
    list(loader.iter_indices())
    assert loader.epoch == 1


def test_grouped_loader_validates_geometry():
    source, gids = _grouped_fixture(seed_name="t.grp.valid")
    with pytest.raises(ValueError, match="batch_size"):
        GroupedBatchLoader(source, gids, batch_size=4, segment_size=8)
    with pytest.raises(ValueError, match="segment_size"):
        GroupedBatchLoader(source, gids, batch_size=4, segment_size=0)
    with pytest.raises(ValueError, match="group_ids"):
        GroupedBatchLoader(source, gids[:-1])
    with pytest.raises(TypeError):
        GroupedBatchLoader(object(), gids)
