"""The fused inference kernels (repro.nn.functional).

Two contracts:

1. Bit-identity — every fused kernel reproduces its taped layer's
   float32 output exactly, bit for bit (the serving path must rank
   candidates identically to the training-time forward).
2. Allocation discipline — the :class:`ScratchArena` pools buffers by
   (name, shape), so a warm call sequence allocates nothing, and the
   hit/miss counters prove it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import MaskBiasCache, ScratchArena
from repro.nn import functional as F
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import LayerNorm, Linear, ResidualBlock
from repro.nn.tensor import Tensor, softmax
from repro.utils.rng import stream

_RNG = stream("test.nn.functional")


def _x(*shape):
    return _RNG.standard_normal(shape).astype(np.float32)


# -- ScratchArena ------------------------------------------------------


def test_arena_pools_by_name_and_shape():
    arena = ScratchArena()
    a = arena.take("a", (4, 3))
    assert arena.misses == 1 and arena.hits == 0
    assert arena.take("a", (4, 3)) is a  # same key -> pooled buffer
    assert arena.hits == 1
    b = arena.take("b", (4, 3))  # same shape, different site -> no alias
    assert b is not a
    c = arena.take("a", (2, 3))  # same site, different shape -> new buffer
    assert c is not a
    assert arena.misses == 3
    assert arena.n_buffers == 3
    assert arena.nbytes == (12 + 12 + 6) * 4


def test_arena_reset_and_clear():
    arena = ScratchArena()
    arena.take("a", (8,))
    arena.take("a", (8,))
    arena.reset_counters()
    assert (arena.hits, arena.misses) == (0, 0)
    assert arena.n_buffers == 1  # counters reset, buffers kept
    arena.clear()
    assert arena.n_buffers == 0
    assert arena.take("a", (8,)) is not None
    assert arena.misses == 1


# -- mask bias ---------------------------------------------------------


def test_additive_mask_bias_values_and_shape():
    mask = np.array([[1, 1, 0], [1, 0, 0]], dtype=np.float32)
    bias = F.additive_mask_bias(mask)
    assert bias.shape == (2, 1, 1, 3)
    assert bias.dtype == np.float32
    expected = (mask - np.float32(1.0)) * F.MASK_PENALTY
    assert np.array_equal(bias.reshape(2, 3), expected)


def test_mask_bias_cache_memoizes_by_identity():
    cache = MaskBiasCache()
    mask = np.array([[1.0, 0.0]], dtype=np.float32)
    bias1 = cache.get(mask)
    bias2 = cache.get(mask)
    assert bias2 is bias1 and cache.hits == 1 and cache.misses == 1
    # A different mask object of the same shape recomputes into the
    # held buffer — zero steady-state allocation.
    other = np.array([[0.0, 1.0]], dtype=np.float32)
    bias3 = cache.get(other)
    assert bias3 is bias1  # same buffer, new contents
    assert np.array_equal(bias3, F.additive_mask_bias(other))
    assert cache.misses == 2
    # New geometry allocates a fresh buffer.
    wide = np.ones((1, 5), dtype=np.float32)
    assert cache.get(wide).shape == (1, 1, 1, 5)


def test_attention_module_shares_the_cache():
    att = MultiHeadSelfAttention(8, 2, rng=stream("test.nn.functional.att"))
    mask = np.ones((2, 3), dtype=np.float32)
    assert att.mask_bias(mask) is att.mask_bias(mask)


# -- kernel bit-identity against the taped layers ----------------------


def test_linear_kernel_matches_taped_linear():
    arena = ScratchArena()
    layer = Linear(6, 10, rng=stream("test.nn.functional.linear"))
    x = _x(4, 5, 6)
    taped = layer(Tensor(x)).data
    fused = F.linear(arena, "lin", x, layer.weight.data, layer.bias.data)
    assert np.array_equal(fused, taped)
    taped_relu = layer(Tensor(x)).relu().data
    fused_relu = F.linear(arena, "lin", x, layer.weight.data, layer.bias.data,
                          relu=True)
    assert np.array_equal(fused_relu, taped_relu)


def test_layer_norm_kernel_matches_taped_layer_norm():
    arena = ScratchArena()
    layer = LayerNorm(12)
    layer.gamma.data = _x(12)
    layer.beta.data = _x(12)
    x = _x(3, 5, 12)
    taped = layer(Tensor(x)).data
    fused = F.layer_norm(arena, "ln", x.copy(), layer.gamma.data,
                         layer.beta.data, layer.eps)
    assert np.array_equal(fused, taped)


def test_residual_kernel_matches_taped_residual_block():
    arena = ScratchArena()
    block = ResidualBlock(8, rng=stream("test.nn.functional.res"))
    x = _x(4, 3, 8)
    taped = block(Tensor(x)).data
    fused = F.residual_relu_linear(arena, "res", x, block.fc.weight.data,
                                   block.fc.bias.data)
    assert np.array_equal(fused, taped)


@pytest.mark.parametrize("length", [1, 2, 7, 25])
def test_softmax_kernel_matches_taped_softmax(length):
    arena = ScratchArena()
    x = _x(3, 2, 4, length)
    taped = softmax(Tensor(x), axis=-1).data
    fused = F.softmax_(x.copy(), arena, "sm")
    assert np.array_equal(fused, taped)


@pytest.mark.parametrize("length", list(range(1, 12)) + [25, 54])
def test_pairwise_rowmax_matches_amax(length):
    """The block-halving max must agree with np.amax for every length
    (max is order-independent — any combination tree, same bits)."""
    arena = ScratchArena()
    v = _x(16, length)
    out = np.empty((16, 1), dtype=np.float32)
    F._pairwise_rowmax(v, arena, "m", out)
    assert np.array_equal(out, np.amax(v, axis=1, keepdims=True))


def test_attention_kernel_matches_taped_attention():
    arena = ScratchArena()
    att = MultiHeadSelfAttention(16, 4, rng=stream("test.nn.functional.mha"))
    x = _x(3, 6, 16)
    mask = (_RNG.random((3, 6)) < 0.7).astype(np.float32)
    taped = att(Tensor(x), mask).data

    dim = att.dim
    qkv_w = np.empty((dim, 3 * dim), dtype=np.float32)
    qkv_b = np.empty(3 * dim, dtype=np.float32)
    for i, proj in enumerate((att.q_proj, att.k_proj, att.v_proj)):
        qkv_w[:, i * dim:(i + 1) * dim] = proj.weight.data
        qkv_b[i * dim:(i + 1) * dim] = proj.bias.data
    bias = F.additive_mask_bias(mask)
    fused = F.attention(arena, "mha", x, qkv_w, qkv_b,
                        att.out_proj.weight.data, att.out_proj.bias.data,
                        att.n_heads, mask_bias=bias)
    assert np.array_equal(fused, taped)


def test_attention_kernel_rejects_bad_heads():
    with pytest.raises(ValueError):
        F.attention(ScratchArena(), "bad", _x(1, 2, 6), _x(6, 18), _x(18),
                    _x(6, 6), _x(6), n_heads=4)


def test_masked_sum_pool_matches_taped_pool():
    arena = ScratchArena()
    x = _x(4, 5, 8)
    mask = (_RNG.random((4, 5)) < 0.6).astype(np.float32)
    t = Tensor(x)
    taped = (t * mask.reshape(4, 5, 1)).sum(axis=1).data
    fused = F.masked_sum_pool(arena, "pool", x.copy(), mask)
    assert np.array_equal(fused, taped)


# -- warm kernels allocate nothing -------------------------------------


def test_warm_kernel_sequence_is_all_hits():
    arena = ScratchArena()
    layer = Linear(6, 6, rng=stream("test.nn.functional.warm"))
    x = _x(4, 6)
    for _ in range(2):  # first pass populates, second must hit
        F.linear(arena, "warm", x, layer.weight.data, layer.bias.data)
    arena.reset_counters()
    F.linear(arena, "warm", x, layer.weight.data, layer.bias.data)
    assert arena.misses == 0 and arena.hits == 1


# -- property: fused linear == taped across geometries -----------------


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 6),
    length=st.integers(1, 5),
    d_in=st.integers(1, 9),
    d_out=st.integers(1, 9),
    relu=st.booleans(),
)
def test_linear_bit_identity_property(n, length, d_in, d_out, relu):
    rng = stream(f"test.nn.functional.prop.{d_in}.{d_out}")
    layer = Linear(d_in, d_out, rng=rng)
    x = rng.standard_normal((n, length, d_in)).astype(np.float32)
    taped = layer(Tensor(x))
    if relu:
        taped = taped.relu()
    fused = F.linear(ScratchArena(), "p", x, layer.weight.data,
                     layer.bias.data, relu=relu)
    assert np.array_equal(fused, taped.data)
