"""End-to-end dataset factory invariants on a small store.

The heavy contracts: the single-pass pipeline's columns are
bit-identical to the compose-by-hand path (``generate_many`` ->
``measure_many`` / ``profile_many`` / ``transform``), labels normalize
per (task, platform), the store is a pure function of (spec, root
seed), and the manifest journals exactly what is on disk.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.absint import profile_many
from repro.dataset import (
    DatasetSpec,
    Manifest,
    ShardReader,
    build_dataset,
    enumerate_tasks,
    plan_batches,
)
from repro.dataset.pipeline import DatasetError, fit_featurizer
from repro.dataset.shards import COLUMN_NAMES, verify_shard
from repro.dataset.spec import candidate_stream
from repro.simhw import measure_many
from repro.tensorir import SketchConfig, SketchGenerator
from repro.utils.rng import seed_for, stream


def small_spec(**kw) -> DatasetSpec:
    base = dict(
        name="t-pipe",
        networks=("bert_tiny",),
        platforms=("platinum-8272", "graviton2", "t4"),
        candidates_per_task=16,
        shard_size=64,
        holdout_networks=(),
    )
    base.update(kw)
    return DatasetSpec(**base)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    spec = small_spec()
    store_dir = tmp_path_factory.mktemp("store")
    manifest = build_dataset(spec, store_dir)
    return spec, store_dir, manifest


# -- store shape --------------------------------------------------------


def test_manifest_matches_disk(store):
    spec, store_dir, manifest = store
    assert manifest.complete
    assert manifest.records_done() == manifest.total_records
    # 5 tasks x 16 candidates x 3 platforms = 240 records in 64-row shards.
    assert manifest.total_records == 240
    assert [s.n_records for s in manifest.shards] == [64, 64, 64, 48]
    for rec in manifest.shards:
        assert verify_shard(
            store_dir, rec.index, rec.n_records, rec.digest, manifest.schema,
            level="digest",
        )
    reloaded = Manifest.load(store_dir)
    assert reloaded.to_dict() == manifest.to_dict()


def test_refusing_to_overwrite_without_resume(store):
    spec, store_dir, _ = store
    with pytest.raises(DatasetError, match="resume=True"):
        build_dataset(spec, store_dir)


def test_fig6_stats_aggregate(store):
    _, _, manifest = store
    stats = manifest.stats
    assert stats["sequences"] == sum(e["n"] for e in manifest.batch_stats.values())
    hist = {int(k): v for k, v in stats["length_hist"].items()}
    assert sum(hist.values()) == stats["sequences"]
    assert stats["min_len"] >= 1
    assert stats["max_len"] >= stats["mode_len"] >= stats["min_len"]
    assert stats["records"]["train"] + stats["records"]["holdout"] == 240


# -- column-level bit-identity with the compose-by-hand path ------------


def test_columns_bit_identical_to_manual_composition(store):
    spec, store_dir, manifest = store
    reader = ShardReader(store_dir)
    task_ids = reader.task_ids()
    featurizer = fit_featurizer(spec)

    for plan in plan_batches(spec):
        task = plan.task
        schedules = SketchGenerator(SketchConfig(plan.target)).generate_many(
            task.subgraph,
            plan.n_candidates,
            stream(candidate_stream(spec, task, plan.target), spec.root_seed),
        )
        X_ref, mask_ref = featurizer.transform(schedules)
        static_ref = profile_many(task.subgraph, schedules, plan.target)
        for pi, platform_idx in enumerate(plan.platform_ids):
            rows = np.arange(plan.row_start + pi * plan.n_candidates,
                             plan.row_start + (pi + 1) * plan.n_candidates)
            record = reader.gather(rows, columns=COLUMN_NAMES)
            cols = dict(zip(COLUMN_NAMES, record))
            lat_ref = measure_many(
                task.subgraph, schedules, spec.platforms[platform_idx],
                root_seed=spec.root_seed,
            )
            assert cols["X"].tobytes() == X_ref.tobytes()
            assert cols["mask"].tobytes() == mask_ref.tobytes()
            assert cols["static"].tobytes() == static_ref.tobytes()
            assert cols["latency"].tobytes() == lat_ref.tobytes()
            label_ref = lat_ref.min() / lat_ref
            assert cols["label"].tobytes() == label_ref.astype(np.float32).tobytes()
            assert (cols["task_id"] == task.task_id).all()
            assert (cols["platform_id"] == platform_idx).all()
            assert (cols["candidate"] == np.arange(plan.n_candidates)).all()
            assert (
                cols["seed"]
                == seed_for(candidate_stream(spec, task, plan.target), spec.root_seed)
            ).all()
    assert task_ids.shape == (len(reader),)


def test_labels_normalize_per_task_platform(store):
    _, store_dir, _ = store
    reader = ShardReader(store_dir)
    lat, label, task_id, plat = (
        np.concatenate([np.asarray(reader._column(s, c)) for s in range(reader.n_shards)])
        for c in ("latency", "label", "task_id", "platform_id")
    )
    for t in np.unique(task_id):
        for p in np.unique(plat):
            sel = (task_id == t) & (plat == p)
            if not sel.any():
                continue
            assert label[sel].max() == np.float32(1.0)
            assert np.all(label[sel] > 0)
            # label is min/latency within exactly this (task, platform) group
            expect = (lat[sel].min() / lat[sel]).astype(np.float32)
            assert np.array_equal(label[sel], expect)


# -- reproducibility ----------------------------------------------------


def test_same_spec_same_bytes_different_seed_different_bytes(store, tmp_path):
    spec, _, manifest = store
    again = build_dataset(spec, tmp_path / "again")
    assert again.store_digest() == manifest.store_digest()
    assert again.to_dict() == manifest.to_dict()

    reseeded = build_dataset(
        small_spec(root_seed=1234), tmp_path / "reseeded"
    )
    assert reseeded.store_digest() != manifest.store_digest()


@settings(max_examples=4, deadline=None)
@given(
    candidates=st.integers(min_value=2, max_value=9),
    shard_size=st.integers(min_value=5, max_value=40),
    root_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_hypothesis_store_is_pure_function_of_spec_and_seed(
    tmp_path_factory, candidates, shard_size, root_seed
):
    """(manifest, root seed) => bit-identical shards, whatever the
    batch/shard geometry does to record packing."""
    spec = small_spec(
        name="t-hyp",
        networks=("bert_tiny",),
        platforms=("i7-10510u", "k80"),
        candidates_per_task=candidates,
        shard_size=shard_size,
        root_seed=root_seed,
    )
    root = tmp_path_factory.mktemp("hyp")
    a = build_dataset(spec, root / "a")
    b = build_dataset(spec, root / "b")
    assert a.store_digest() == b.store_digest()
    assert a.to_dict() == b.to_dict()
    ra, rb = ShardReader(root / "a"), ShardReader(root / "b")
    idx = np.arange(len(ra))
    for col_a, col_b in zip(ra.gather(idx, COLUMN_NAMES), rb.gather(idx, COLUMN_NAMES)):
        assert col_a.tobytes() == col_b.tobytes()


# -- featurizer fit determinism -----------------------------------------


def test_fit_featurizer_is_deterministic():
    spec = small_spec()
    a, b = fit_featurizer(spec), fit_featurizer(spec)
    assert a.vocab_ == b.vocab_
    assert a.raw_width_ == b.raw_width_


def test_tasks_table_matches_enumeration(store):
    spec, _, manifest = store
    tasks = enumerate_tasks(spec)
    assert len(manifest.tasks) == len(tasks)
    for entry, task in zip(manifest.tasks, tasks):
        assert entry["task_id"] == task.task_id
        assert entry["network"] == task.network
        assert entry["subgraph"] == task.subgraph.name
