"""Autograd core: op semantics, broadcasting, and gradient checks.

Finite-difference checks (the ``gradcheck`` marker, also run by ``make
gradcheck``) pin every differentiable op against central differences;
the unmarked tests pin forward semantics, dtype discipline, and the
tape's structural behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, assert_gradients_match, softmax
from repro.utils.rng import stream

_RNG = stream("test.nn.tensor")


def _t(shape, scale=1.0, offset=0.0):
    """A requires-grad tensor of smooth, kink-free values."""
    data = (_RNG.standard_normal(shape) * scale + offset).astype(np.float32)
    return Tensor(data, requires_grad=True)


# -- forward semantics -------------------------------------------------


def test_tensor_is_float32_everywhere():
    t = Tensor(np.arange(6).reshape(2, 3))
    assert t.data.dtype == np.float32
    out = (t * 2.5 + 1.0).exp().sum()
    assert out.data.dtype == np.float32
    out.backward()
    assert t.grad is None  # requires_grad defaults to False


def test_item_extracts_any_single_element_shape():
    # regression: item() on a [1, 1] tensor used to fail — it must
    # accept every single-element shape, like ndarray.item().
    assert Tensor([[3.0]]).item() == 3.0
    assert Tensor(3.0).item() == 3.0
    assert Tensor([3.0]).item() == 3.0
    assert isinstance(Tensor([[3.0]]).item(), float)
    with pytest.raises(ValueError):
        Tensor([1.0, 2.0]).item()


def test_backward_accumulates_and_zero_on_detached():
    x = _t((3,))
    y = x * np.float32(2.0) + x * np.float32(3.0)
    y.sum().backward()
    assert np.allclose(x.grad, 5.0)


def test_backward_requires_scalar():
    x = _t((2, 2))
    with pytest.raises(ValueError):
        (x * x).backward()


def test_as_tensor_passthrough_and_wrap():
    t = _t((2,))
    assert as_tensor(t) is t
    w = as_tensor([1.0, 2.0])
    assert isinstance(w, Tensor) and not w.requires_grad


def test_matmul_requires_2d():
    with pytest.raises(ValueError):
        _t((3,)) @ _t((3,))


def test_softmax_rows_sum_to_one_and_handle_large_logits():
    x = Tensor(np.array([[1e4, 0.0, -1e4], [3.0, 2.0, 1.0]], dtype=np.float32))
    p = softmax(x, axis=-1)
    assert np.allclose(p.data.sum(axis=-1), 1.0)
    assert np.isfinite(p.data).all()
    assert p.data[0, 0] == pytest.approx(1.0)


def test_sigmoid_is_overflow_free():
    x = Tensor(np.array([-100.0, 0.0, 100.0], dtype=np.float32))
    s = x.sigmoid()
    assert np.isfinite(s.data).all()
    assert s.data[0] == pytest.approx(0.0) and s.data[2] == pytest.approx(1.0)


def test_grad_tape_not_built_without_requires_grad():
    a = Tensor(np.ones((2, 2)))
    b = Tensor(np.ones((2, 2)))
    out = a @ b + a
    assert not out.requires_grad and out._parents == ()


# -- gradient checks ---------------------------------------------------


@pytest.mark.gradcheck
@pytest.mark.parametrize(
    "name, fn",
    [
        ("add_broadcast", lambda a, b: (a + b.reshape(1, 3)).sum()),
        ("sub", lambda a, b: (a - b.reshape(1, 3)).mean()),
        ("mul_broadcast", lambda a, b: (a * b.reshape(1, 3)).sum()),
        ("div", lambda a, b: (a / (b.reshape(1, 3) + np.float32(4.0))).sum()),
        ("pow", lambda a, b: ((a * a + np.float32(1.0)) ** 1.5).sum() + b.sum()),
        ("neg_rsub", lambda a, b: (np.float32(1.0) - (-a)).sum() + b.sum()),
    ],
)
def test_gradcheck_arithmetic(name, fn):
    a, b = _t((2, 3)), _t((3,))
    assert_gradients_match(lambda: fn(a, b), [a, b])


@pytest.mark.gradcheck
def test_gradcheck_matmul_batched():
    a, b = _t((2, 3, 4), scale=0.5), _t((4, 5), scale=0.5)
    assert_gradients_match(lambda: ((a @ b) ** 2).mean(), [a, b])


@pytest.mark.gradcheck
@pytest.mark.parametrize(
    "name, fn",
    [
        ("sum_axis", lambda x: (x.sum(axis=0) ** 2).sum()),
        ("mean_keepdims", lambda x: ((x - x.mean(axis=1, keepdims=True)) ** 2).sum()),
        ("reshape", lambda x: (x.reshape(6) * np.float32(2.0)).sum()),
        ("transpose", lambda x: (x.transpose((1, 0)) @ x).sum()),
        ("getitem", lambda x: (x[np.array([1, 0, 1])] ** 2).sum()),
    ],
)
def test_gradcheck_shape_ops(name, fn):
    x = _t((2, 3))
    assert_gradients_match(lambda: fn(x), [x])


@pytest.mark.gradcheck
@pytest.mark.parametrize(
    "name, fn, offset",
    [
        ("exp", lambda x: x.exp().sum(), 0.0),
        ("log", lambda x: x.log().sum(), 5.0),
        ("tanh", lambda x: x.tanh().sum(), 0.0),
        # relu gradcheck needs inputs away from the kink at 0.
        ("relu", lambda x: (x.relu() * np.float32(2.0)).sum(), 3.0),
        ("sigmoid", lambda x: x.sigmoid().sum(), 0.0),
        ("softplus", lambda x: x.softplus().sum(), 0.0),
    ],
)
def test_gradcheck_elementwise(name, fn, offset):
    x = _t((3, 2), scale=0.8, offset=offset)
    assert_gradients_match(lambda: fn(x), [x])


@pytest.mark.gradcheck
def test_gradcheck_softmax():
    x = _t((2, 4), scale=0.7)
    assert_gradients_match(lambda: (softmax(x, axis=-1) ** 2).sum(), [x])
