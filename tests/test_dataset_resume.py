"""Crash-resume: interrupted builds continue to bit-identical stores.

The contract under test is the store's durability discipline: completed
shards are an atomic, journaled prefix; everything else (a truncated
``*.tmp`` staging dir, a stale unjournaled shard, a corrupted completed
shard) is detected and recomputed, and the finished store — shard bytes
and manifest bytes — is indistinguishable from an uninterrupted build.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import DatasetSpec, Manifest, ShardReader, build_dataset
from repro.dataset.manifest import MANIFEST_FILENAME
from repro.dataset.pipeline import DatasetError
from repro.dataset.shards import COLUMN_NAMES, TMP_SUFFIX, shard_dir, shard_name


def spec(**kw) -> DatasetSpec:
    # >= 2 platforms of each target so resume restarts mid-batch fan-out.
    base = dict(
        name="t-resume",
        networks=("bert_tiny",),
        platforms=("platinum-8272", "e5-2673", "t4", "k80"),
        candidates_per_task=16,
        shard_size=48,  # shard boundaries never align with batch boundaries
        holdout_networks=(),
    )
    base.update(kw)
    return DatasetSpec(**base)


def assert_stores_identical(dir_a, dir_b) -> None:
    a, b = Manifest.load(dir_a), Manifest.load(dir_b)
    assert a.store_digest() == b.store_digest()
    assert a.to_dict() == b.to_dict()
    assert (dir_a / MANIFEST_FILENAME).read_bytes() == (
        dir_b / MANIFEST_FILENAME
    ).read_bytes()
    ra, rb = ShardReader(dir_a), ShardReader(dir_b)
    idx = np.arange(len(ra))
    for col_a, col_b in zip(ra.gather(idx, COLUMN_NAMES), rb.gather(idx, COLUMN_NAMES)):
        assert col_a.tobytes() == col_b.tobytes()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The uninterrupted build every resume scenario must reproduce."""
    s = spec()
    ref_dir = tmp_path_factory.mktemp("ref")
    manifest = build_dataset(s, ref_dir)
    assert manifest.complete
    assert len(manifest.shards) >= 4  # room to stop at interior boundaries
    return s, ref_dir, manifest


@pytest.mark.parametrize("stop_after", [1, 2, 3])
def test_resume_from_every_shard_boundary(reference, tmp_path, stop_after):
    s, ref_dir, _ = reference
    partial = build_dataset(s, tmp_path, stop_after_shards=stop_after)
    assert not partial.complete
    assert len(partial.shards) == stop_after
    assert partial.records_done() == stop_after * s.shard_size

    resumed = build_dataset(s, tmp_path, resume=True)
    assert resumed.complete
    assert_stores_identical(tmp_path, ref_dir)


def test_resume_discards_truncated_partial_shard(reference, tmp_path):
    """Simulate dying mid-shard: a half-written ``*.tmp`` staging dir on
    disk, manifest journaled only through the previous boundary."""
    s, ref_dir, _ = reference
    build_dataset(s, tmp_path, stop_after_shards=2)

    # Hand-craft the in-flight shard the crash left behind: a staging dir
    # with some columns missing and one truncated to half its rows.
    tmp_shard = tmp_path / (shard_name(2) + TMP_SUFFIX)
    tmp_shard.mkdir()
    intact = np.load(shard_dir(tmp_path, 1) / "latency.npy")
    np.save(tmp_shard / "latency.npy", intact[: len(intact) // 2])

    resumed = build_dataset(s, tmp_path, resume=True)
    assert resumed.complete
    assert not tmp_shard.exists()  # staging debris swept on resume
    assert_stores_identical(tmp_path, ref_dir)


def test_resume_deletes_unjournaled_shard_dirs(reference, tmp_path):
    """A shard dir fully renamed into place but never journaled (crash
    between rename and manifest save) must be recomputed, not trusted."""
    s, ref_dir, _ = reference
    build_dataset(s, tmp_path, stop_after_shards=2)

    rogue = shard_dir(tmp_path, 3)
    rogue.mkdir()
    np.save(rogue / "latency.npy", np.zeros(s.shard_size, dtype=np.float32))

    resumed = build_dataset(s, tmp_path, resume=True)
    assert resumed.complete
    assert_stores_identical(tmp_path, ref_dir)


def test_resume_with_digest_verify_recomputes_corrupt_prefix(reference, tmp_path):
    """Flip one byte inside a *journaled* shard: shape-level verify can't
    see it, digest-level verify truncates the trusted prefix there."""
    s, ref_dir, _ = reference
    build_dataset(s, tmp_path, stop_after_shards=3)

    path = shard_dir(tmp_path, 1) / "X.npy"
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF
    path.write_bytes(bytes(raw))

    resumed = build_dataset(s, tmp_path, resume=True, verify="digest")
    assert resumed.complete
    assert_stores_identical(tmp_path, ref_dir)


def test_resume_refuses_spec_and_vocab_drift(reference, tmp_path):
    s, _, _ = reference
    build_dataset(s, tmp_path, stop_after_shards=1)

    with pytest.raises(DatasetError, match="spec mismatch"):
        build_dataset(spec(root_seed=999), tmp_path, resume=True)
    with pytest.raises(DatasetError, match="spec mismatch"):
        build_dataset(
            spec(platforms=("platinum-8272", "t4")), tmp_path, resume=True
        )


def test_resuming_a_complete_store_is_a_cheap_noop(reference, tmp_path):
    s, ref_dir, _ = reference
    build_dataset(s, tmp_path)
    again = build_dataset(s, tmp_path, resume=True)
    assert again.complete
    assert_stores_identical(tmp_path, ref_dir)
