"""repro.analysis.diagnostics — taxonomy and record semantics."""

from __future__ import annotations

import pytest

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    InvalidScheduleError,
    Severity,
    errors,
    format_diagnostics,
    has_errors,
    make,
    severity_of,
    taxonomy_table,
)


def test_taxonomy_prefixes_map_to_severity():
    for code in CODES:
        expected = Severity.ERROR if code.startswith("E") else Severity.WARNING
        assert severity_of(code) is expected


def test_taxonomy_has_structural_dataflow_and_smell_tiers():
    assert any(c.startswith("E1") for c in CODES)
    assert any(c.startswith("E2") for c in CODES)
    assert any(c.startswith("W3") for c in CODES)
    # The acceptance bar: at least 6 distinct error codes exist to reject
    # distinct corruption classes.
    assert sum(1 for c in CODES if c.startswith("E")) >= 6


def test_unknown_code_rejected():
    with pytest.raises(ValueError):
        Diagnostic("E999", Severity.ERROR, 0, "nope")


def test_make_and_filters():
    e = make("E201", 3, "axis 'x' was never defined", axis="x")
    w = make("W301", 5, "pow2 extent")
    assert e.is_error and not w.is_error
    assert errors([e, w]) == [e]
    assert has_errors([w, e]) and not has_errors([w])
    assert "E201" in str(e) and "@3" in str(e)
    assert format_diagnostics([]) == "<clean>"


def test_taxonomy_table_lists_every_code():
    table = taxonomy_table()
    for code in CODES:
        assert code in table


def test_design_doc_taxonomy_in_sync():
    """DESIGN.md §8 must contain every taxonomy row verbatim."""
    from pathlib import Path

    design = (Path(__file__).resolve().parent.parent / "DESIGN.md").read_text()
    for line in taxonomy_table().splitlines()[2:]:  # skip header rows
        assert line in design, f"DESIGN.md is missing taxonomy row: {line}"


def test_invalid_schedule_error_carries_diagnostics():
    diags = [make("E103", 0, "padded too far")]
    err = InvalidScheduleError("bad schedule", diags)
    assert err.diagnostics == diags
    assert "E103" in str(err)
