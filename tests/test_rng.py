"""repro.utils.rng — named, hash-derived streams."""

from __future__ import annotations

from repro.utils.rng import seed_for, stream


def test_seed_is_deterministic_and_name_dependent():
    assert seed_for("dataset.cpu") == seed_for("dataset.cpu")
    assert seed_for("dataset.cpu") != seed_for("dataset.gpu")
    assert seed_for("dataset.cpu", root_seed=1) != seed_for("dataset.cpu", root_seed=0)


def test_streams_reproduce_bit_for_bit():
    a = stream("sampler.test").integers(0, 1 << 30, size=16)
    b = stream("sampler.test").integers(0, 1 << 30, size=16)
    assert (a == b).all()


def test_streams_are_independent():
    a = stream("stream.a").integers(0, 1 << 30, size=16)
    b = stream("stream.b").integers(0, 1 << 30, size=16)
    assert (a != b).any()
