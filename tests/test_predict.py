"""The tape-free fast path: ``no_grad`` and ``TLPModel.predict``.

The ISSUE 4 acceptance properties live here:

* ``no_grad()`` forward is bit-identical to the taped eval forward
  across random configs and batch shapes, and tensors produced under it
  refuse ``backward()`` with a clear error;
* ``predict`` is bit-identical to the taped eval forward for every
  config / batch shape / ``max_chunk`` (chunk rows are independent);
* steady-state ``predict`` allocates no large buffers — every scratch
  probe hits the arena;
* ``Module.save`` / ``Module.load`` round-trips weights bit-exactly,
  so a reloaded model predicts bit-identical scores.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.nn as nn
from repro.core import TLPModel, TLPModelConfig
from repro.nn import is_grad_enabled, no_grad
from repro.utils.rng import stream

_RNG = stream("test.predict")

_CONFIGS = (
    TLPModelConfig(emb=5, hidden=8, n_heads=2, n_res_blocks=0,
                   stream_name="test.predict.m0"),
    TLPModelConfig(emb=7, hidden=12, n_heads=4, n_res_blocks=1,
                   stream_name="test.predict.m1"),
    TLPModelConfig(emb=22, hidden=32, n_heads=2, n_res_blocks=2,
                   stream_name="test.predict.m2"),
)
_MODELS = {cfg: TLPModel(cfg).eval() for cfg in _CONFIGS}


def _batch(cfg, n, length):
    rng = stream(f"test.predict.batch.{n}.{length}.{cfg.emb}")
    X = rng.standard_normal((n, length, cfg.emb)).astype(np.float32)
    mask = (rng.random((n, length)) < 0.7).astype(np.float32)
    return X, mask


# -- no_grad -----------------------------------------------------------


def test_no_grad_toggles_and_restores():
    assert is_grad_enabled()
    with no_grad():
        assert not is_grad_enabled()
        with no_grad():  # reentrant
            assert not is_grad_enabled()
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_no_grad_restores_on_exception():
    with pytest.raises(RuntimeError):
        with no_grad():
            raise RuntimeError("boom")
    assert is_grad_enabled()


def test_no_grad_skips_the_tape():
    x = nn.Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    with no_grad():
        y = (x * np.float32(2.0)).sum()
    assert not y.requires_grad
    with pytest.raises(RuntimeError, match="no_grad"):
        y.backward()


def test_no_grad_refusal_propagates_to_derived_tensors():
    x = nn.Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    with no_grad():
        y = x * np.float32(2.0)
    z = y.sum()  # derived OUTSIDE the context, but its tape is broken
    with pytest.raises(RuntimeError, match="no_grad"):
        z.backward()
    # mixing with a live taped branch re-enters the tape: the no_grad
    # product is just a constant there, gradients flow to taped leaves
    w = (y * x).sum()
    w.backward()
    assert np.array_equal(x.grad, np.full(3, 2.0, dtype=np.float32))


def test_taped_ops_still_work_after_no_grad():
    x = nn.Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    with no_grad():
        (x * np.float32(2.0)).sum()
    loss = (x * np.float32(2.0)).sum()
    loss.backward()
    assert np.array_equal(x.grad, np.full(3, 2.0, dtype=np.float32))


@settings(max_examples=25, deadline=None)
@given(
    cfg=st.sampled_from(_CONFIGS),
    n=st.integers(1, 8),
    length=st.integers(1, 7),
)
def test_no_grad_forward_bit_identical_property(cfg, n, length):
    model = _MODELS[cfg]
    X, mask = _batch(cfg, n, length)
    taped = model(X, mask).data
    with no_grad():
        untaped = model(X, mask)
    assert not untaped.requires_grad
    assert np.array_equal(untaped.data, taped)


# -- predict bit-identity ----------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    cfg=st.sampled_from(_CONFIGS),
    n=st.integers(1, 9),
    length=st.integers(1, 7),
    max_chunk=st.integers(1, 12),
)
def test_predict_bit_identical_property(cfg, n, length, max_chunk):
    model = _MODELS[cfg]
    X, mask = _batch(cfg, n, length)
    taped = model(X, mask).data
    fast = model.predict(X, mask, max_chunk=max_chunk)
    assert fast.dtype == np.float32 and fast.shape == (n,)
    assert np.array_equal(fast, taped)


def test_predict_chunking_is_invisible():
    cfg = _CONFIGS[2]
    model = _MODELS[cfg]
    X, mask = _batch(cfg, 13, 6)
    full = model.predict(X, mask, max_chunk=13)
    for chunk in (1, 2, 5, 13, 64):
        assert np.array_equal(model.predict(X, mask, max_chunk=chunk), full)


def test_predict_tracks_weight_updates():
    """The plan is rebuilt per call: predict sees in-place weight edits."""
    cfg = _CONFIGS[0]
    model = TLPModel(cfg).eval()
    X, mask = _batch(cfg, 4, 3)
    before = model.predict(X, mask)
    model.head.bias.data += np.float32(1.0)
    after = model.predict(X, mask)
    assert np.array_equal(after, before + np.float32(1.0))
    assert np.array_equal(after, model(X, mask).data)


# -- steady-state allocation discipline --------------------------------


def test_predict_steady_state_is_allocation_free():
    cfg = _CONFIGS[2]
    model = TLPModel(cfg).eval()
    X, mask = _batch(cfg, 24, 6)
    model.predict(X, mask, max_chunk=8)   # cold: populate the arena
    model._arena.reset_counters()
    model.predict(X, mask, max_chunk=8)   # warm: must be all hits
    info = model.scratch_info()
    assert info["misses"] == 0, info
    assert info["hits"] > 0
    assert info["buffers"] > 0 and info["nbytes"] > 0


def test_predict_geometry_validation():
    cfg = _CONFIGS[0]
    model = _MODELS[cfg]
    X, mask = _batch(cfg, 3, 4)
    with pytest.raises(ValueError, match="expected features"):
        model.predict(X[:, :, :-1], mask)
    with pytest.raises(ValueError, match="mask shape"):
        model.predict(X, mask[:, :-1])
    with pytest.raises(ValueError, match="max_chunk"):
        model.predict(X, mask, max_chunk=0)
    # forward shares the same validation
    with pytest.raises(ValueError, match="mask shape"):
        model(X, mask[:2])


# -- checkpoint round-trip ---------------------------------------------


def test_save_load_round_trips_bit_exactly(tmp_path):
    cfg_a = _CONFIGS[1]
    saved = TLPModel(cfg_a).eval()
    path = saved.save(tmp_path / "tlp.npz")

    other = TLPModelConfig(emb=cfg_a.emb, hidden=cfg_a.hidden,
                           n_heads=cfg_a.n_heads,
                           n_res_blocks=cfg_a.n_res_blocks,
                           stream_name="test.predict.other")
    restored = TLPModel(other).eval()
    X, mask = _batch(cfg_a, 5, 4)
    assert not np.array_equal(restored.predict(X, mask),
                              saved.predict(X, mask))

    restored.load(path)
    for name, p in restored.named_parameters():
        assert np.array_equal(p.data, dict(saved.named_parameters())[name].data)
    assert np.array_equal(restored.predict(X, mask), saved.predict(X, mask))
    assert np.array_equal(restored(X, mask).data, saved(X, mask).data)


def test_load_rejects_architecture_mismatch(tmp_path):
    path = TLPModel(_CONFIGS[0]).save(tmp_path / "small.npz")
    with pytest.raises(ValueError):
        TLPModel(_CONFIGS[1]).load(path)
