"""repro.analysis.verifier — structural, dataflow, and smell rules."""

from __future__ import annotations

import pytest

from corruptions import CORRUPTIONS
from repro.analysis import InvalidScheduleError, assert_valid, has_errors, verify_schedule
from repro.analysis.verifier import VerifierConfig, verify_sequence
from repro.tensorir import Axis, Schedule, Subgraph, matmul_subgraph
from repro.tensorir import primitives as P


def codes(diags):
    return {d.code for d in diags}


def test_valid_schedule_is_clean(valid_schedule):
    diags = verify_schedule(valid_schedule)
    assert not has_errors(diags), [str(d) for d in diags]


def test_assert_valid_passes_and_fails(valid_schedule, matmul):
    assert_valid(valid_schedule)
    bad = Schedule(matmul, (P.rfactor("i"),))
    with pytest.raises(InvalidScheduleError) as exc:
        assert_valid(bad)
    assert any(d.code == "E204" for d in exc.value.diagnostics)


@pytest.mark.parametrize(
    "expected_code,name,mutator", CORRUPTIONS, ids=[c[1] for c in CORRUPTIONS]
)
def test_each_corruption_class_is_flagged(valid_schedule, expected_code, name, mutator):
    mutated = mutator(valid_schedule)
    assert mutated is not None, f"corruption {name} should apply to the canonical schedule"
    diags = verify_sequence(valid_schedule.subgraph, mutated, valid_schedule.target)
    assert expected_code in codes(diags), (
        f"{name}: expected {expected_code}, got {[str(d) for d in diags]}"
    )


def test_distinct_corruption_class_coverage():
    # Acceptance bar: the corruption table covers >= 6 distinct error codes.
    assert len({c for c, _, _ in CORRUPTIONS}) >= 6


def test_fsp_forward_reference_is_flagged(matmul):
    # The ISSUE 3 repro: an FSP referencing a *later* SP step used to verify
    # clean and apply without error.  It must be E107 now.
    prims = (P.follow_split("j", 128, 1), P.split("i", 128, (4,)))
    diags = verify_sequence(matmul, prims)
    assert "E107" in codes(diags), [str(d) for d in diags]


def test_fsp_self_reference_is_flagged(matmul):
    diags = verify_sequence(matmul, (P.follow_split("j", 128, 0),))
    assert "E107" in codes(diags)


def test_fsp_strictly_earlier_sp_still_verifies(matmul):
    prims = (P.split("i", 128, (4,)), P.follow_split("j", 128, 0))
    assert not has_errors(verify_sequence(matmul, prims))


def test_duplicate_definition_detected():
    # A subgraph axis named like a split result collides with the split (E203).
    sg = Subgraph("weird", (Axis("i", 16), Axis("i.0", 4)))
    diags = verify_sequence(sg, (P.split("i", 16, (4,)),))
    assert "E203" in codes(diags)


def test_diagnostics_anchor_to_primitive_index(valid_schedule):
    prims = (*valid_schedule.primitives, P.annotate("ghost", "unroll"))
    diags = verify_sequence(valid_schedule.subgraph, prims)
    (diag,) = [d for d in diags if d.code == "E201"]
    assert diag.primitive_index == len(prims) - 1
    assert diag.axis == "ghost"


def test_verifier_recovers_after_error(matmul):
    # One bad step must not mask an unrelated later one.
    prims = (
        P.annotate("ghost", "unroll"),  # E201
        P.rfactor("i"),  # E204
    )
    got = codes(verify_sequence(matmul, prims))
    assert {"E201", "E204"} <= got


def test_gpu_bind_rules(matmul):
    bind = (P.annotate("i", "bind.blockIdx.x"),)
    assert "E106" in codes(verify_sequence(matmul, bind, target="cpu"))
    assert not has_errors(verify_sequence(matmul, bind, target="gpu"))
    double = (P.annotate("i", "bind.blockIdx.x"), P.annotate("j", "bind.blockIdx.x"))
    assert "E205" in codes(verify_sequence(matmul, double, target="gpu"))


def test_padding_allowance_boundary():
    sg = Subgraph("pad", (Axis("i", 100),))
    # 100 -> ceil(100/3)*3 = 102 <= 125: fine.
    assert not has_errors(verify_sequence(sg, (P.split("i", 100, (3,)),)))
    # 100 -> ceil(100/64)*64 = 128 > 125: beyond the 25% allowance.
    assert "E103" in codes(verify_sequence(sg, (P.split("i", 100, (64,)),)))


def test_w301_pow2_middle_loop_smell(matmul):
    diags = verify_sequence(matmul, (P.split("i", 128, (64, 2)),))
    assert "W301" in codes(diags)
    assert not has_errors(diags)
    # The innermost factor is exempt: pow2 vector widths are normal.
    assert "W301" not in codes(verify_sequence(matmul, (P.split("i", 128, (2, 64)),)))


def test_w302_oversized_unroll(matmul):
    diags = verify_sequence(matmul, (P.pragma("i", "auto_unroll_max_step", 4096),))
    assert "W302" in codes(diags)
    assert not has_errors(diags)


def test_w303_degenerate_factor(matmul):
    diags = verify_sequence(matmul, (P.split("i", 128, (1,)),))
    assert "W303" in codes(diags)
    assert not has_errors(diags)


def test_verifier_config_thresholds(matmul):
    cfg = VerifierConfig(max_auto_unroll=8192)
    diags = verify_sequence(matmul, (P.pragma("i", "auto_unroll_max_step", 4096),), config=cfg)
    assert "W302" not in codes(diags)
