"""Shared fixtures: a canonical hand-written schedule and sampled pools."""

from __future__ import annotations

import pytest

from repro.tensorir import Schedule, matmul_subgraph
from repro.tensorir import primitives as P


@pytest.fixture()
def matmul():
    return matmul_subgraph(128, 128, 128)


@pytest.fixture()
def valid_schedule(matmul):
    """A hand-written valid CPU schedule containing SP, RE, FU, AN, PR.

    Tiling: i -> (4, 4, 8), j -> (4, 2, 16), k -> (4, 32); outer spatial
    tiles fused + parallel, j.2 vectorized, unroll pragma on the fused loop.
    """
    prims = (
        P.split("i", 128, (4, 8)),
        P.split("j", 128, (2, 16)),
        P.split("k", 128, (32,)),
        P.reorder(("i.0", "j.0", "i.1", "j.1", "k.0", "i.2", "j.2", "k.1")),
        P.fuse(("i.0", "j.0")),
        P.annotate("i.0@j.0", "parallel"),
        P.annotate("j.2", "vectorize"),
        P.pragma("i.0@j.0", "auto_unroll_max_step", 16),
    )
    return Schedule(matmul, prims, target="cpu")
