"""Batch verification (`verify_many`) agrees with the per-sequence path.

The batch mode is a pure hot-path optimization: one verifier instance,
precomputed dispatch, optional early exit.  These tests pin that it is
*observationally identical* to a Python loop of ``verify_sequence``
calls — on clean sampler output and on corrupted sequences — and that
``generate_many`` (which feeds it) equals ``n`` single ``generate``
calls on the same rng stream.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from corruptions import CORRUPTIONS
from repro.analysis import (
    InvalidScheduleError,
    assert_valid_many,
    has_errors,
    verify_many,
    verify_sequence,
)
from repro.tensorir import Schedule, SketchConfig, SketchGenerator, sample_subgraph_pool
from repro.utils.rng import stream

_POOL = sample_subgraph_pool()
_GEN = SketchGenerator(SketchConfig("cpu"))


def _schedules(sg, n, tag):
    return _GEN.generate_many(sg, n, stream(f"test.verify_many.{sg.name}.{tag}"))


@settings(max_examples=25, deadline=None)
@given(sg=st.sampled_from(_POOL), seed=st.integers(min_value=0, max_value=2**16))
def test_verify_many_equals_loop_on_valid(sg, seed):
    sequences = [s.primitives for s in _schedules(sg, 4, seed)]
    batch = verify_many(sg, sequences)
    loop = [verify_sequence(sg, seq) for seq in sequences]
    assert batch == loop
    assert all(not has_errors(diags) for diags in batch)


@settings(max_examples=60, deadline=None)
@given(
    sg=st.sampled_from(_POOL),
    seed=st.integers(min_value=0, max_value=2**16),
    corruption=st.sampled_from(CORRUPTIONS),
)
def test_verify_many_equals_loop_on_corrupted(sg, seed, corruption):
    expected_code, name, mutator = corruption
    schedule = _schedules(sg, 1, f"corrupt.{seed}")[0]
    mutated = mutator(schedule)
    if mutated is None:  # corruption not applicable to this schedule shape
        return
    sequences = [schedule.primitives, mutated]
    batch = verify_many(sg, sequences, schedule.target)
    loop = [verify_sequence(sg, seq, schedule.target) for seq in sequences]
    assert batch == loop, name
    assert expected_code in {d.code for d in batch[1]}, name


@settings(max_examples=40, deadline=None)
@given(
    sg=st.sampled_from(_POOL),
    seed=st.integers(min_value=0, max_value=2**16),
    corruption=st.sampled_from(CORRUPTIONS),
)
def test_stop_on_error_yields_prefix(sg, seed, corruption):
    _, name, mutator = corruption
    schedule = _schedules(sg, 1, f"prefix.{seed}")[0]
    mutated = mutator(schedule)
    if mutated is None:
        return
    [full] = verify_many(sg, [mutated], schedule.target)
    [stopped] = verify_many(sg, [mutated], schedule.target, stop_on_error=True)
    assert stopped == full[: len(stopped)], name
    if has_errors(full):
        assert has_errors(stopped), name


@settings(max_examples=15, deadline=None)
@given(sg=st.sampled_from(_POOL), seed=st.integers(min_value=0, max_value=2**16))
def test_generate_many_equals_repeated_generate(sg, seed):
    """One batch call consumes the rng stream exactly like n single calls."""
    batch = _GEN.generate_many(sg, 3, stream(f"test.genmany.{sg.name}.{seed}"))
    rng = stream(f"test.genmany.{sg.name}.{seed}")
    singles = [_GEN.generate(sg, rng) for _ in range(3)]
    assert [s.primitives for s in batch] == [s.primitives for s in singles]
    assert [s.target for s in batch] == [s.target for s in singles]


def test_assert_valid_many_raises_on_corruption():
    sg = _POOL[0]
    schedule = _schedules(sg, 1, "assert")[0]
    corrupted = None
    for _, _, mutator in CORRUPTIONS:
        corrupted = mutator(schedule)
        if corrupted is not None:
            break
    assert corrupted is not None
    bad = Schedule(schedule.subgraph, corrupted, schedule.target)
    with pytest.raises(InvalidScheduleError):
        assert_valid_many([schedule, bad])


def test_assert_valid_many_accepts_valid_batch():
    sg = _POOL[0]
    schedules = _schedules(sg, 6, "accept")
    all_diags = assert_valid_many(schedules)
    assert len(all_diags) == len(schedules)
    assert all(not has_errors(diags) for diags in all_diags)
