"""ShardReader: mmap gathers, splits, and BatchLoader integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import ShardReader, build_dataset
from repro.dataset.pipeline import smoke_spec
from repro.dataset.reader import Subset
from repro.dataset.shards import COLUMN_NAMES
from repro.nn.data import BatchLoader, RecordSource


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    spec = smoke_spec()
    store_dir = tmp_path_factory.mktemp("reader-store")
    manifest = build_dataset(spec, store_dir)
    assert len(manifest.shards) >= 3  # gathers below must cross boundaries
    return spec, store_dir, manifest


@pytest.fixture(scope="module")
def reader(store):
    _, store_dir, _ = store
    return ShardReader(store_dir)


def dense(reader: ShardReader, columns=("X", "mask", "label")):
    """Reference copy: every record via one big ordered gather."""
    return reader.gather(np.arange(len(reader)), columns=columns)


def test_len_and_default_columns(store, reader):
    _, _, manifest = store
    assert len(reader) == manifest.total_records
    X, mask, label = reader[np.asarray([0, 1])]
    assert X.shape[1:] == (manifest.schema.seq_len, manifest.schema.emb)
    assert mask.shape[1:] == (manifest.schema.seq_len,)
    assert label.shape == (2,)


def test_gather_crosses_shard_boundaries_in_request_order(store, reader):
    spec, _, _ = store
    X_all, mask_all, label_all = dense(reader)
    # Deliberately straddle every boundary, out of order, with repeats.
    boundaries = np.asarray(
        [spec.shard_size - 1, spec.shard_size, 2 * spec.shard_size - 1, 0]
    )
    indices = np.concatenate([boundaries, boundaries[::-1], [len(reader) - 1]])
    X, mask, label = reader[indices]
    assert np.array_equal(X, X_all[indices])
    assert np.array_equal(mask, mask_all[indices])
    assert np.array_equal(label, label_all[indices])


def test_gather_rejects_out_of_range(reader):
    with pytest.raises(IndexError):
        reader[np.asarray([len(reader)])]
    with pytest.raises(IndexError):
        reader[np.asarray([-1])]
    with pytest.raises(ValueError, match="unknown column"):
        ShardReader(reader.store_dir, columns=("X", "nope"))


def test_record_returns_every_column(reader):
    rec = reader.record(3)
    assert set(rec) == set(COLUMN_NAMES)
    assert rec["X"].ndim == 2
    assert rec["label"].shape == ()


def test_split_indices_partition_by_network(store, reader):
    spec, _, manifest = store
    train = reader.split_indices("train")
    holdout = reader.split_indices("holdout")
    assert len(train) + len(holdout) == len(reader)
    assert not np.intersect1d(train, holdout).size
    task_ids = reader.task_ids()
    for name, idx in (("train", train), ("holdout", holdout)):
        nets = {manifest.network_of_task(int(t)) for t in task_ids[idx]}
        for net in nets:
            assert (spec.split_of(net) == name)
    with pytest.raises(ValueError, match="unknown split"):
        reader.split_indices("test")


def test_subset_is_a_record_source_view(reader):
    holdout = reader.split_indices("holdout")
    view = reader.subset(holdout)
    assert isinstance(view, Subset)
    assert isinstance(view, RecordSource)
    assert len(view) == len(holdout)
    X, mask, label = view[np.asarray([0, len(view) - 1])]
    X_ref, mask_ref, label_ref = reader[holdout[[0, len(view) - 1]]]
    assert np.array_equal(X, X_ref)
    assert np.array_equal(mask, mask_ref)
    assert np.array_equal(label, label_ref)
    with pytest.raises(IndexError):
        reader.subset(np.asarray([len(reader)]))


def test_batchloader_over_reader_matches_in_memory_arrays(reader):
    """The satellite contract: a loader over the mmap store yields an
    epoch bit-identical to a loader over fully materialized arrays."""
    X_all, mask_all, label_all = dense(reader)
    lazy = BatchLoader(reader, batch_size=37, shuffle=True)
    eager = BatchLoader(
        X_all, mask=mask_all, labels=label_all, batch_size=37, shuffle=True
    )
    assert len(lazy) == len(eager)
    for (Xl, ml, yl), (Xe, me, ye) in zip(lazy, eager):
        assert Xl.tobytes() == Xe.tobytes()
        assert ml.tobytes() == me.tobytes()
        assert yl.tobytes() == ye.tobytes()


def test_batchloader_epochs_are_bit_reproducible(reader):
    a = [batch[2].tobytes() for batch in BatchLoader(reader, batch_size=64)]
    b = [batch[2].tobytes() for batch in BatchLoader(reader, batch_size=64)]
    assert a == b


def test_batchloader_over_subset_trains_on_one_split(reader):
    train = reader.split_indices("train")
    loader = BatchLoader(reader.subset(train), batch_size=50, shuffle=False)
    seen = 0
    task_ids = reader.task_ids()
    train_tasks = set(task_ids[train].tolist())
    for X, mask, label in loader:
        assert X.shape[0] == mask.shape[0] == label.shape[0]
        seen += X.shape[0]
    assert seen == len(train)
    assert train_tasks  # non-degenerate split


def test_narrow_columns_are_memoized_one_load_per_shard(store, monkeypatch):
    """Regression: task_ids() used to re-concatenate every shard's narrow
    column on each call, making repeated split_indices() O(store)."""
    import repro.dataset.reader as reader_mod

    _, store_dir, _ = store
    fresh = ShardReader(store_dir)
    calls: list[tuple[int, str]] = []
    real = reader_mod.load_shard_column

    def counting(sdir, shard, name):
        calls.append((shard, name))
        return real(sdir, shard, name)

    monkeypatch.setattr(reader_mod, "load_shard_column", counting)
    first = fresh.task_ids()
    n_shards = fresh.n_shards
    assert calls == [(s, "task_id") for s in range(n_shards)]
    for _ in range(3):  # repeated callers hit the memo, not the shards
        fresh.task_ids()
        fresh.split_indices("train")
        fresh.split_indices("holdout")
    assert len(calls) == n_shards
    assert np.array_equal(fresh.task_ids(), first)
    fresh.platform_ids()
    assert len(calls) == 2 * n_shards  # one more pass, platform_id only


def test_platform_ids_match_per_record_column(reader):
    pids = reader.platform_ids()
    assert pids.dtype == np.int16
    assert pids.shape == (len(reader),)
    (ref,) = reader.gather(np.arange(len(reader)), columns=("platform_id",))
    assert np.array_equal(pids, ref)
    n_plat = len(reader.manifest.spec.platforms)
    assert set(np.unique(pids)) <= set(range(n_plat))


def test_narrow_column_rejects_wide_columns(reader):
    with pytest.raises(ValueError, match="narrow"):
        reader._narrow_column("X")


def test_gather_into_preallocated_buffers(reader):
    idx = np.asarray([0, len(reader) // 2, len(reader) - 1])
    ref = reader.gather(idx)
    cols = reader.manifest.schema.columns()
    bufs = tuple(
        np.empty((3, *cols[name][1]), dtype=cols[name][0])
        for name in ("X", "mask", "label")
    )
    out = reader.gather(idx, out=bufs)
    for o, b, r in zip(out, bufs, ref):
        assert o is b  # filled in place, returned as-is
        assert np.array_equal(o, r)


def test_gather_out_validates_shape_dtype_and_arity(reader):
    idx = np.asarray([0, 1])
    cols = reader.manifest.schema.columns()
    good = tuple(
        np.empty((2, *cols[n][1]), dtype=cols[n][0]) for n in ("X", "mask", "label")
    )
    with pytest.raises(ValueError, match="buffers"):
        reader.gather(idx, out=good[:2])
    bad_shape = (np.empty((3, *cols["X"][1]), dtype=np.float32),) + good[1:]
    with pytest.raises(ValueError, match="out buffer"):
        reader.gather(idx, out=bad_shape)
    bad_dtype = (good[0].astype(np.float64),) + good[1:]
    with pytest.raises(ValueError, match="out buffer"):
        reader.gather(idx, out=bad_dtype)
