"""repro.analysis.lint — the pluggable rule framework.

The legacy rule behaviors (SC101–SC104) stay covered by
``test_selfcheck.py`` through the compatibility shim; this module covers
the framework itself (registry, path scoping, rule-scoped suppressions,
unused-suppression detection, JSON output) and the new rules SC105–SC107.
"""

from __future__ import annotations

import json

from repro.analysis import lint

# Built by concatenation so this test file never reads as carrying a
# (stale) suppression comment itself.
ALLOW = "# selfcheck: " + "allow"


def rules(violations):
    return {v.rule for v in violations}


# -- registry ----------------------------------------------------------------


def test_registry_covers_all_codes():
    assert set(lint.RULES) == {
        "SC100", "SC101", "SC102", "SC103", "SC104",
        "SC105", "SC106", "SC107", "SC199",
    }
    for rule in lint.RULE_REGISTRY:
        assert rule.id and rule.description


def test_path_scope_matching():
    compute = lint.PathScope(any_parts=frozenset({"nn", "simhw"}))
    assert compute.matches("src/repro/nn/layers.py")
    assert not compute.matches("src/repro/dataset/io.py")
    no_utils = lint.PathScope(
        any_parts=frozenset({"repro"}), not_parts=frozenset({"utils"})
    )
    assert no_utils.matches("src/repro/core/model.py")
    assert not no_utils.matches("src/repro/utils/rng.py")
    assert not no_utils.matches("benchmarks/bench_micro.py")
    exempt = lint.PathScope(skip_suffix="repro/utils/rng.py")
    assert not exempt.matches("src/repro/utils/rng.py")
    assert exempt.matches("src/repro/tensorir/sketch.py")


# -- SC105: set iteration ----------------------------------------------------


def test_sc105_flags_set_iteration_in_repro_paths():
    src = "for x in set(names):\n    print(x)\n"
    assert rules(lint.check_source(src, "repro/analysis/verifier.py")) == {"SC105"}
    comp = "out = [x for x in set(names)]\n"
    assert rules(lint.check_source(comp, "repro/core/model.py")) == {"SC105"}
    enum = "for i, x in enumerate({1, 2}):\n    print(i)\n"
    assert rules(lint.check_source(enum, "repro/core/model.py")) == {"SC105"}


def test_sc105_allows_ordered_iteration_and_utils():
    ordered = "for x in sorted(set(names)):\n    print(x)\n"
    assert lint.check_source(ordered, "repro/analysis/verifier.py") == []
    keys = "for x in dict.fromkeys(names):\n    print(x)\n"
    assert lint.check_source(keys, "repro/analysis/verifier.py") == []
    raw = "for x in set(names):\n    print(x)\n"
    assert lint.check_source(raw, "repro/utils/debug.py") == []
    assert lint.check_source(raw, "scripts/oneoff.py") == []


# -- SC106: exception swallowing ---------------------------------------------


def test_sc106_flags_bare_except_and_swallowing():
    bare = "try:\n    f()\nexcept:\n    handle()\n"
    assert rules(lint.check_source(bare, "repro/x.py")) == {"SC106"}
    swallow = "try:\n    f()\nexcept Exception:\n    pass\n"
    assert rules(lint.check_source(swallow, "repro/x.py")) == {"SC106"}


def test_sc106_allows_narrow_or_handled_excepts():
    narrow = "try:\n    f()\nexcept ValueError:\n    pass\n"
    assert lint.check_source(narrow, "repro/x.py") == []
    handled = "try:\n    f()\nexcept Exception as exc:\n    log(exc)\n    raise\n"
    assert lint.check_source(handled, "repro/x.py") == []


# -- SC107: ambient configuration --------------------------------------------


def test_sc107_flags_environ_reads_outside_utils():
    attr = "import os\nlevel = os.environ['LEVEL']\n"
    assert rules(lint.check_source(attr, "repro/core/model.py")) == {"SC107"}
    getenv = "import os\nlevel = os.getenv('LEVEL')\n"
    assert rules(lint.check_source(getenv, "repro/simhw/measure.py")) == {"SC107"}
    imported = "from os import environ\n"
    assert rules(lint.check_source(imported, "repro/core/model.py")) == {"SC107"}


def test_sc107_allows_utils_and_non_repro_paths():
    src = "import os\nlevel = os.environ.get('LEVEL')\n"
    assert lint.check_source(src, "repro/utils/config.py") == []
    assert lint.check_source(src, "benchmarks/conftest.py") == []
    path_use = "import os\np = os.path.join('a', 'b')\n"
    assert lint.check_source(path_use, "repro/core/model.py") == []


# -- suppressions ------------------------------------------------------------


def test_rule_scoped_suppression():
    src = f"import numpy as np\nx = np.random.rand(3)  {ALLOW}[SC101]\n"
    assert lint.check_source(src, "repro/x.py") == []


def test_mismatched_scope_keeps_violation_and_flags_suppression():
    src = f"import numpy as np\nx = np.random.rand(3)  {ALLOW}[SC103]\n"
    found = lint.check_source(src, "repro/x.py")
    assert rules(found) == {"SC101", "SC199"}


def test_unused_suppression_is_flagged():
    src = f"x = 1  {ALLOW}\n"
    found = lint.check_source(src, "repro/x.py")
    assert rules(found) == {"SC199"}
    assert found[0].line == 1


def test_used_unscoped_suppression_is_not_flagged():
    src = f"import numpy as np\nx = np.random.rand(3)  {ALLOW}\n"
    assert lint.check_source(src, "repro/x.py") == []


def test_token_inside_string_literal_is_not_a_suppression():
    token = lint.SUPPRESS_TOKEN
    # The token as a *string value* must neither suppress the violation
    # on its line nor count as an unused suppression.
    src = f"import numpy as np\nx = np.random.rand(3); t = {token!r}\n"
    assert rules(lint.check_source(src, "repro/x.py")) == {"SC101"}
    clean = f"t = {token!r}\n"
    assert lint.check_source(clean, "repro/x.py") == []


def test_scoped_suppression_list():
    src = (
        "import numpy as np\n"
        f"def f(x=[]): return np.random.rand(3)  {ALLOW}[SC101, SC102]\n"
    )
    assert lint.check_source(src, "repro/x.py") == []


# -- violations & CLI --------------------------------------------------------


def test_violation_str_and_json_shape():
    v = lint.LintViolation("repro/x.py", 7, "SC102", "in signature of f()")
    assert str(v) == "repro/x.py:7: SC102 in signature of f()"
    assert v.to_json() == {
        "path": "repro/x.py", "line": 7, "rule": "SC102",
        "message": "in signature of f()",
    }


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
    assert lint.main(["--format", "json", str(tmp_path)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["rules"] == lint.RULES
    assert [v["rule"] for v in report["violations"]] == ["SC102"]

    good = tmp_path / "ok"
    good.mkdir()
    (good / "mod.py").write_text("x = 1\n", encoding="utf-8")
    assert lint.main(["--format", "json", str(good)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["violations"] == []


def test_cli_rejects_unknown_format(tmp_path):
    assert lint.main(["--format", "yaml", str(tmp_path)]) == 2
    assert lint.main(["--format"]) == 2


def test_violations_sorted_and_deterministic(tmp_path):
    src = (
        "import numpy as np\n"
        "def g(y={}):\n"
        "    return np.random.rand(2)\n"
        "def f(x=[]):\n"
        "    return x\n"
    )
    first = lint.check_source(src, "repro/x.py")
    second = lint.check_source(src, "repro/x.py")
    assert first == second
    assert [v.line for v in first] == sorted(v.line for v in first)
    assert rules(first) == {"SC101", "SC102"}


def test_selfcheck_shim_reexports_lint():
    from repro.analysis import selfcheck

    assert selfcheck.check_source is lint.check_source
    assert selfcheck.LintViolation is lint.LintViolation
    assert selfcheck.RULES is lint.RULES
