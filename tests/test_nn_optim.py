"""Optimizers + LR schedules: convergence and state semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, CosineLR, Parameter, StepLR
from repro.nn.tensor import Tensor
from repro.utils.rng import stream


def _quadratic(p: Parameter, target: np.ndarray) -> Tensor:
    diff = p - target
    return (diff * diff).sum()


def _fit(opt_factory, steps=200):
    target = np.array([1.0, -2.0, 0.5], dtype=np.float32)
    p = Parameter(np.zeros(3, dtype=np.float32))
    opt = opt_factory([p])
    for _ in range(steps):
        opt.zero_grad()
        _quadratic(p, target).backward()
        opt.step()
    return p, target


def test_sgd_converges_on_quadratic():
    p, target = _fit(lambda ps: SGD(ps, lr=0.1))
    assert np.allclose(p.data, target, atol=1e-4)


def test_sgd_momentum_converges():
    p, target = _fit(lambda ps: SGD(ps, lr=0.05, momentum=0.9))
    assert np.allclose(p.data, target, atol=1e-3)


def test_adam_converges_on_quadratic():
    p, target = _fit(lambda ps: Adam(ps, lr=0.1))
    assert np.allclose(p.data, target, atol=1e-3)


def test_adam_first_step_size_is_lr():
    """With bias correction, step 1 moves by ~lr in the gradient direction."""
    p = Parameter(np.zeros(1, dtype=np.float32))
    opt = Adam([p], lr=0.01)
    p.grad = np.array([7.0], dtype=np.float32)
    opt.step()
    assert p.data[0] == pytest.approx(-0.01, rel=1e-3)


def test_adam_weight_decay_is_decoupled():
    """Decay scales with lr * wd and applies even with zero gradient signal."""
    p = Parameter(np.full(2, 10.0, dtype=np.float32))
    opt = Adam([p], lr=0.1, weight_decay=0.5)
    p.grad = np.zeros(2, dtype=np.float32)
    opt.step()
    assert np.allclose(p.data, 10.0 * (1.0 - 0.1 * 0.5))
    with pytest.raises(ValueError):
        Adam([p], lr=-1.0)


def test_skipped_grad_leaves_parameter_untouched():
    p = Parameter(np.ones(2, dtype=np.float32))
    opt = SGD([p], lr=0.5)
    opt.step()  # p.grad is None
    assert np.array_equal(p.data, np.ones(2, dtype=np.float32))


def test_optimizer_rejects_empty_params():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_step_lr_decays_by_gamma():
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=1.0)
    sched = StepLR(opt, step_size=2, gamma=0.1)
    lrs = [sched.step() for _ in range(4)]
    assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])


def test_cosine_lr_reaches_min_lr():
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=1.0)
    sched = CosineLR(opt, total_epochs=4, min_lr=0.1)
    lrs = [sched.step() for _ in range(5)]
    assert lrs[0] < 1.0
    assert lrs[3] == pytest.approx(0.1)
    assert lrs[4] == pytest.approx(0.1)  # clamps past the horizon
    assert all(b <= a for a, b in zip(lrs, lrs[1:]))


def test_cosine_lr_default_min_lr_keeps_final_epoch_stepping():
    """Regression: the old min_lr=0.0 default drove lr to exactly 0.0 on
    the final epoch, turning every last-epoch step into a silent no-op
    (and violating the optimizer's own lr > 0 contract)."""
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=1.0)
    sched = CosineLR(opt, total_epochs=3)
    for _ in range(3):
        sched.step()
    assert opt.lr == pytest.approx(0.01)  # 1% of base, not 0.0
    p.grad = np.ones(1, dtype=np.float32)
    before = p.data.copy()
    opt.step()
    assert not np.array_equal(p.data, before)  # final epoch still learns


def test_cosine_lr_rejects_nonpositive_or_oversized_min_lr():
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=0.5)
    with pytest.raises(ValueError, match="min_lr"):
        CosineLR(opt, total_epochs=4, min_lr=0.0)
    with pytest.raises(ValueError, match="min_lr"):
        CosineLR(opt, total_epochs=4, min_lr=-0.1)
    with pytest.raises(ValueError, match="min_lr"):
        CosineLR(opt, total_epochs=4, min_lr=0.6)  # > base_lr


def test_lr_invariant_enforced_on_assignment():
    """The lr > 0 contract holds everywhere, not just at construction —
    a schedule assigning a bad lr fails loudly instead of no-opping."""
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=0.1)
    with pytest.raises(ValueError, match="non-positive"):
        opt.lr = 0.0
    with pytest.raises(ValueError, match="non-positive"):
        SGD([p], lr=0.0)
    opt.lr = 0.2  # positive assignment still fine
    assert opt.lr == pytest.approx(0.2)


def test_step_lr_rejects_nonpositive_gamma():
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=0.1)
    with pytest.raises(ValueError, match="gamma"):
        StepLR(opt, step_size=2, gamma=0.0)


def test_all_optimizer_state_is_float32():
    p = Parameter(np.ones((3, 3), dtype=np.float32))
    opt = Adam([p], lr=0.01)
    p.grad = np.ones((3, 3), dtype=np.float32)
    opt.step()
    assert p.data.dtype == np.float32
    assert opt._m[0].dtype == np.float32 and opt._v[0].dtype == np.float32


def test_cosine_lr_stays_clamped_far_past_horizon():
    """Regression: unclamped, the raw cosine comes back *up* past
    ``total_epochs`` — training 3x longer than scheduled would silently
    raise the lr to the base value again.  It must sit exactly at
    ``min_lr`` for every post-horizon epoch."""
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=1.0)
    sched = CosineLR(opt, total_epochs=4, min_lr=0.05)
    lrs = [sched.step() for _ in range(12)]  # 3x the horizon
    assert all(lr == pytest.approx(0.05) for lr in lrs[3:])
    assert sched.epoch == 4  # the counter clamps too


def _train_steps(p, opt, grads):
    for g in grads:
        opt.zero_grad()
        p.grad = g.copy()
        opt.step()


@pytest.mark.parametrize("factory", [
    lambda ps: SGD(ps, lr=0.05, momentum=0.9),
    lambda ps: Adam(ps, lr=0.01, weight_decay=0.1),
])
def test_optimizer_state_roundtrip_resume_is_bit_identical(factory):
    """Resume from state_dict == never stopping, bit for bit.

    The optim.py docstring has always claimed model + optimizer state is
    fully capturable; before state_dict/load_state_dict existed, resuming
    silently reset SGD velocity and Adam moments/step count."""
    rng = stream("test.nn.optim.resume")
    grads = [rng.standard_normal(4).astype(np.float32) for _ in range(8)]

    p_full = Parameter(np.ones(4, dtype=np.float32))
    opt_full = factory([p_full])
    _train_steps(p_full, opt_full, grads)

    p_a = Parameter(np.ones(4, dtype=np.float32))
    opt_a = factory([p_a])
    _train_steps(p_a, opt_a, grads[:3])
    snapshot = opt_a.state_dict()
    weights = p_a.data.copy()

    # Fresh parameter + optimizer, as a new process would build them.
    p_b = Parameter(weights)
    opt_b = factory([p_b])
    opt_b.load_state_dict(snapshot)
    _train_steps(p_b, opt_b, grads[3:])
    assert np.array_equal(p_b.data, p_full.data)


def test_optimizer_state_dict_is_a_snapshot_not_a_view():
    p = Parameter(np.ones(2, dtype=np.float32))
    opt = SGD([p], lr=0.1, momentum=0.9)
    p.grad = np.ones(2, dtype=np.float32)
    opt.step()
    snap = opt.state_dict()
    before = snap["velocity.0"].copy()
    p.grad = np.full(2, 5.0, dtype=np.float32)
    opt.step()
    assert np.array_equal(snap["velocity.0"], before)  # later steps don't leak in


def test_optimizer_state_npz_roundtrip(tmp_path):
    """One np.savez holds optimizer state alongside Module.save weights."""
    p = Parameter(np.ones(3, dtype=np.float32))
    opt = Adam([p], lr=0.02)
    p.grad = np.arange(3, dtype=np.float32)
    opt.step()
    path = tmp_path / "optim.npz"
    np.savez(path, **opt.state_dict())
    with np.load(path) as z:
        restored = {k: z[k] for k in z.files}
    p2 = Parameter(np.ones(3, dtype=np.float32))
    opt2 = Adam([p2], lr=0.5)
    opt2.load_state_dict(restored)
    assert opt2.lr == pytest.approx(0.02)
    assert opt2._step_count == 1
    assert np.array_equal(opt2._m[0], opt._m[0])
    assert np.array_equal(opt2._v[0], opt._v[0])


def test_optimizer_load_state_dict_validates_keys_and_shapes():
    p = Parameter(np.ones(3, dtype=np.float32))
    opt = SGD([p], lr=0.1, momentum=0.9)
    state = opt.state_dict()
    with pytest.raises(KeyError, match="missing"):
        opt.load_state_dict({"lr": state["lr"]})
    bad = dict(state)
    bad["velocity.0"] = np.zeros(7, dtype=np.float32)
    with pytest.raises(ValueError, match="shape"):
        opt.load_state_dict(bad)
    # Adam state into SGD: wrong key set, must fail loudly.
    adam = Adam([Parameter(np.ones(3, dtype=np.float32))], lr=0.1)
    with pytest.raises(KeyError):
        opt.load_state_dict(adam.state_dict())


def test_scheduler_state_roundtrip():
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=1.0)
    sched = CosineLR(opt, total_epochs=6, min_lr=0.1)
    for _ in range(3):
        sched.step()
    snap = sched.state_dict()

    opt2 = SGD([Parameter(np.ones(1, dtype=np.float32))], lr=1.0)
    sched2 = CosineLR(opt2, total_epochs=6, min_lr=0.1)
    sched2.load_state_dict(snap)
    assert sched2.epoch == 3
    assert sched2.step() == pytest.approx(sched.step())
    with pytest.raises(ValueError, match="epoch"):
        sched2.load_state_dict({"epoch": np.int64(99)})
