"""Optimizers + LR schedules: convergence and state semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, CosineLR, Parameter, StepLR
from repro.nn.tensor import Tensor


def _quadratic(p: Parameter, target: np.ndarray) -> Tensor:
    diff = p - target
    return (diff * diff).sum()


def _fit(opt_factory, steps=200):
    target = np.array([1.0, -2.0, 0.5], dtype=np.float32)
    p = Parameter(np.zeros(3, dtype=np.float32))
    opt = opt_factory([p])
    for _ in range(steps):
        opt.zero_grad()
        _quadratic(p, target).backward()
        opt.step()
    return p, target


def test_sgd_converges_on_quadratic():
    p, target = _fit(lambda ps: SGD(ps, lr=0.1))
    assert np.allclose(p.data, target, atol=1e-4)


def test_sgd_momentum_converges():
    p, target = _fit(lambda ps: SGD(ps, lr=0.05, momentum=0.9))
    assert np.allclose(p.data, target, atol=1e-3)


def test_adam_converges_on_quadratic():
    p, target = _fit(lambda ps: Adam(ps, lr=0.1))
    assert np.allclose(p.data, target, atol=1e-3)


def test_adam_first_step_size_is_lr():
    """With bias correction, step 1 moves by ~lr in the gradient direction."""
    p = Parameter(np.zeros(1, dtype=np.float32))
    opt = Adam([p], lr=0.01)
    p.grad = np.array([7.0], dtype=np.float32)
    opt.step()
    assert p.data[0] == pytest.approx(-0.01, rel=1e-3)


def test_adam_weight_decay_is_decoupled():
    """Decay scales with lr * wd and applies even with zero gradient signal."""
    p = Parameter(np.full(2, 10.0, dtype=np.float32))
    opt = Adam([p], lr=0.1, weight_decay=0.5)
    p.grad = np.zeros(2, dtype=np.float32)
    opt.step()
    assert np.allclose(p.data, 10.0 * (1.0 - 0.1 * 0.5))
    with pytest.raises(ValueError):
        Adam([p], lr=-1.0)


def test_skipped_grad_leaves_parameter_untouched():
    p = Parameter(np.ones(2, dtype=np.float32))
    opt = SGD([p], lr=0.5)
    opt.step()  # p.grad is None
    assert np.array_equal(p.data, np.ones(2, dtype=np.float32))


def test_optimizer_rejects_empty_params():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_step_lr_decays_by_gamma():
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=1.0)
    sched = StepLR(opt, step_size=2, gamma=0.1)
    lrs = [sched.step() for _ in range(4)]
    assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])


def test_cosine_lr_reaches_min_lr():
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=1.0)
    sched = CosineLR(opt, total_epochs=4, min_lr=0.1)
    lrs = [sched.step() for _ in range(5)]
    assert lrs[0] < 1.0
    assert lrs[3] == pytest.approx(0.1)
    assert lrs[4] == pytest.approx(0.1)  # clamps past the horizon
    assert all(b <= a for a, b in zip(lrs, lrs[1:]))


def test_cosine_lr_default_min_lr_keeps_final_epoch_stepping():
    """Regression: the old min_lr=0.0 default drove lr to exactly 0.0 on
    the final epoch, turning every last-epoch step into a silent no-op
    (and violating the optimizer's own lr > 0 contract)."""
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=1.0)
    sched = CosineLR(opt, total_epochs=3)
    for _ in range(3):
        sched.step()
    assert opt.lr == pytest.approx(0.01)  # 1% of base, not 0.0
    p.grad = np.ones(1, dtype=np.float32)
    before = p.data.copy()
    opt.step()
    assert not np.array_equal(p.data, before)  # final epoch still learns


def test_cosine_lr_rejects_nonpositive_or_oversized_min_lr():
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=0.5)
    with pytest.raises(ValueError, match="min_lr"):
        CosineLR(opt, total_epochs=4, min_lr=0.0)
    with pytest.raises(ValueError, match="min_lr"):
        CosineLR(opt, total_epochs=4, min_lr=-0.1)
    with pytest.raises(ValueError, match="min_lr"):
        CosineLR(opt, total_epochs=4, min_lr=0.6)  # > base_lr


def test_lr_invariant_enforced_on_assignment():
    """The lr > 0 contract holds everywhere, not just at construction —
    a schedule assigning a bad lr fails loudly instead of no-opping."""
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=0.1)
    with pytest.raises(ValueError, match="non-positive"):
        opt.lr = 0.0
    with pytest.raises(ValueError, match="non-positive"):
        SGD([p], lr=0.0)
    opt.lr = 0.2  # positive assignment still fine
    assert opt.lr == pytest.approx(0.2)


def test_step_lr_rejects_nonpositive_gamma():
    p = Parameter(np.ones(1, dtype=np.float32))
    opt = SGD([p], lr=0.1)
    with pytest.raises(ValueError, match="gamma"):
        StepLR(opt, step_size=2, gamma=0.0)


def test_all_optimizer_state_is_float32():
    p = Parameter(np.ones((3, 3), dtype=np.float32))
    opt = Adam([p], lr=0.01)
    p.grad = np.ones((3, 3), dtype=np.float32)
    opt.step()
    assert p.data.dtype == np.float32
    assert opt._m[0].dtype == np.float32 and opt._v[0].dtype == np.float32
